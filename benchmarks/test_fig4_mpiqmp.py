"""Figure 4: MPI/QMP point-to-point latency and aggregated bandwidth."""

import math

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_fig4_mpiqmp(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("fig4", quick=quick))
    print()
    print(result.render())
    sizes = result.column("bytes")
    latencies = result.column("RTT/2 us")
    agg3 = result.column("3-D agg MB/s")

    # Small-message MPI/QMP latency ~18.5us (small implementation
    # overhead over raw M-VIA).
    small = sizes.index(4)
    assert abs(latencies[small] - 18.5) < 1.5

    # The eager -> RMA switch shows as a bandwidth jump at 16K:
    # compare the last eager-path row (<16K) to the first RMA row.
    rows = [
        (size, bandwidth)
        for size, bandwidth in zip(sizes, agg3)
        if not math.isnan(bandwidth)
    ]
    below = [bandwidth for size, bandwidth in rows if size < 16384]
    above = [bandwidth for size, bandwidth in rows if size >= 16384]
    assert above[0] > 1.3 * below[-1]

    # 3-D aggregated bandwidth reaches the paper's ~400 MB/s scale.
    assert max(above) > 350
