"""Batch event-pop microbenchmark: same-instant heap drains.

The fast scheduler loop pops every heap entry sharing one
``(time, priority)`` key in a single drain before dispatching
(``sim/core.py``).  Bursty workloads — NIC interrupt storms, barrier
fan-ins, the boundary-ingress batches the PDES engine injects — put
many events at identical instants, where batching skips the
re-compare of the three event sources per event.  This benchmark runs
a same-instant-heavy workload both ways and reports the delta; the
assertion only pins that batching never *loses* (the table stays
bit-identical and the batched run is not meaningfully slower), since
single-core CI timing is too noisy to pin a exact speedup.
"""

import time

from repro import fastpath
from repro.sim import Simulator
from repro.sim.events import Callback


def _burst_workload(sim: Simulator, instants: int, per_instant: int,
                    log: list) -> None:
    """Schedule ``per_instant`` same-time callbacks at each instant."""
    for step in range(instants):
        at = float(step + 1)
        for index in range(per_instant):
            Callback(sim, _append(log, (step, index)), at=at)


def _append(log: list, item) -> callable:
    def fire() -> None:
        log.append(item)
    return fire


def _run(enabled: bool, instants: int = 400, per_instant: int = 64):
    with fastpath.force(enabled):
        sim = Simulator()
        log: list = []
        _burst_workload(sim, instants, per_instant, log)
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
    return log, wall, sim.events_processed


def test_batch_pop_order_identical_and_not_slower(benchmark):
    reference_log, reference_wall, reference_events = _run(False)
    batched_log, batched_wall, batched_events = (None, None, None)

    def batched():
        nonlocal batched_log, batched_wall, batched_events
        batched_log, batched_wall, batched_events = _run(True)

    benchmark.pedantic(batched, rounds=1, iterations=1)

    assert batched_log == reference_log
    assert batched_events == reference_events
    print()
    print(f"reference (per-event pops): {reference_wall * 1000:.1f}ms, "
          f"batched (same-instant drains): {batched_wall * 1000:.1f}ms "
          f"for {batched_events} events "
          f"(x{reference_wall / batched_wall:.2f})")
    # Generous bound: batching must not regress the burst workload.
    # (Measured ~1.2-1.4x faster on one core; timing noise on shared
    # CI runners makes a tighter floor flaky.)
    assert batched_wall < reference_wall * 1.5
