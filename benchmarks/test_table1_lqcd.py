"""Table 1: LQCD Gflops/node and $/Mflops, GigE mesh vs Myrinet."""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_table1_lqcd(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("table1", quick=quick))
    print()
    print(result.render())
    myri_gf = result.column("Myrinet Gflops")
    gige_gf = result.column("GigE Gflops")
    myri_cost = result.column("Myrinet $/Mflops")
    gige_cost = result.column("GigE $/Mflops")

    # Myrinet performs a little better per node.  On the quick config
    # (8-node machines) the smallest lattice sits within noise of
    # parity, so allow 3%; the largest row must show the gap, and it
    # must stay "a little", not a blowout.
    for m, g in zip(myri_gf, gige_gf):
        assert m >= 0.97 * g
        assert m < 2 * g
    assert myri_gf[-1] >= gige_gf[-1]

    # GigE per-node performance rises with lattice size
    # (surface-to-volume effect).
    assert gige_gf == sorted(gige_gf)

    # GigE mesh wins $/Mflops at the production lattice sizes
    # (the larger rows).
    assert gige_cost[-1] < myri_cost[-1]
