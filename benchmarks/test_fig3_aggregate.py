"""Figure 3: aggregated multi-link bandwidth, 2-D vs 3-D mesh."""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_fig3_aggregate(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("fig3", quick=quick))
    print()
    print(result.render())
    via2 = result.column("via 2-D")
    via3 = result.column("via 3-D")
    tcp2 = result.column("tcp 2-D")
    tcp3 = result.column("tcp 3-D")

    # M-VIA far above TCP on every row.
    for index in range(len(via2)):
        assert via2[index] > 1.5 * tcp2[index]
        assert via3[index] > 1.5 * tcp3[index]

    # 2-D flattens around ~400 MB/s at large sizes.
    assert 380 <= via2[-1] <= 480

    # 3-D exceeds the 2-D plateau somewhere mid-size (the ~550 peak)
    # and ends at or below its own peak (the large-size falloff).
    assert max(via3) > max(via2)
    assert via3[-1] <= max(via3)
    assert 380 <= via3[-1] <= 560
