"""Figure 5: broadcast and global sum on the torus."""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_fig5_collectives(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("fig5", quick=quick))
    print()
    print(result.render())
    sizes = result.column("bytes")
    bcast = result.column("broadcast us")
    gsum = result.column("global sum us")

    if not quick:
        # Full run is the paper's 4x8x8: ~200us small-message
        # broadcast (10 steps x ~20us/step).
        assert 170 <= bcast[0] <= 260

    # Global sum ~2x broadcast ("takes roughly twice as many
    # communication steps").
    for b, s in zip(bcast, gsum):
        assert 1.4 <= s / b <= 3.0

    # Time grows monotonically with message size.
    assert bcast == sorted(bcast)
