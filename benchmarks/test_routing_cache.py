"""Routing-cache microbenchmark: hit rate on a fig6-style sweep.

The packet switch resolves the same (torus, src, dst) routing queries
once per frame per hop, so a scatter sweep (figure 6's workload — every
destination, multi-fragment messages, multi-hop SDF routes) is the
worst-case stress for the memoized routing layer.  This benchmark runs
the sweep, prints the cache hit rates, and asserts the caches actually
absorb the repeated queries.
"""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment
from repro.topology import routing


def test_routing_cache_hit_rate(benchmark, quick):
    routing.clear_caches()
    result = run_once(benchmark,
                      lambda: run_experiment("fig6", quick=quick))
    print()
    print(result.render())

    hits = routing.CACHE_STATS["hits"]
    misses = routing.CACHE_STATS["misses"]
    total = hits + misses
    assert total > 0, "sweep never consulted the routing caches"
    hit_rate = hits / total
    print(f"routing caches: {hits} hits / {misses} misses "
          f"({hit_rate:.1%} hit rate)")

    # A (8, 8) sweep has at most 64*64 distinct pairs per cache, but the
    # scatter pushes hundreds of frames across multi-hop routes: almost
    # every query after warmup must be a hit.
    assert hit_rate > 0.5

    # The per-torus displacement memo behind distance()/offset() should
    # be saturated as well; every experiment builds its own Torus, so
    # find one through the miss count being bounded by the pair count.
    assert misses <= 2 * 64 * 64
