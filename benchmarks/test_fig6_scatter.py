"""Figure 6: one-to-all personalized communication, SDF vs OPT."""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_fig6_scatter(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("fig6", quick=quick))
    print()
    print(result.render())
    ratios = result.column("SDF/OPT")
    sdf_steps = result.column("SDF steps")
    opt_steps = result.column("OPT steps")
    bounds = result.column("OPT bound")

    # OPT always wins, measurably (paper: ~4x on average; the DES
    # reproduces the ordering and a >=1.2x gap at every point).
    assert all(ratio > 1.2 for ratio in ratios)

    # The analytic model certifies OPT's optimality: steps == bound.
    for opt, bound in zip(opt_steps, bounds):
        assert opt == bound
    for sdf, opt in zip(sdf_steps, opt_steps):
        assert sdf > opt
