"""Non-nearest-neighbor routing latency: 18.5 + 12.5 (n-1) us."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_routing_latency(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("routing", quick=quick))
    print()
    print(result.render())
    measured = result.column("measured RTT/2")
    predicted = result.column("paper model")
    for got, want in zip(measured, predicted):
        assert got == pytest.approx(want, abs=0.8)
