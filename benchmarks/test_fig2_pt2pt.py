"""Figure 2: M-VIA vs TCP point-to-point latency and bandwidth."""

import math

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_fig2_pt2pt(benchmark, quick):
    result = run_once(benchmark,
                      lambda: run_experiment("fig2", quick=quick))
    print()
    print(result.render())
    sizes = result.column("bytes")
    via_lat = result.column("via RTT/2 us")
    tcp_lat = result.column("tcp RTT/2 us")
    via_simul = result.column("via simul MB/s")
    tcp_simul = result.column("tcp simul MB/s")
    via_pp = result.column("via pp MB/s")
    tcp_pp = result.column("tcp pp MB/s")

    # Small-message latency anchors.
    small = sizes.index(4)
    assert abs(via_lat[small] - 18.5) < 0.6
    assert tcp_lat[small] >= 1.3 * via_lat[small]

    # M-VIA beats TCP at every size, on every metric.
    for index in range(len(sizes)):
        if not math.isnan(via_lat[index]):
            assert via_lat[index] < tcp_lat[index]
        assert via_simul[index] > tcp_simul[index]
        if via_pp[index] > 0:
            assert via_pp[index] > tcp_pp[index]

    # Large-message simultaneous bandwidth: ~110 vs ~80 (37% gap).
    assert abs(via_simul[-1] - 110.0) < 5.0
    assert 1.2 < via_simul[-1] / tcp_simul[-1] < 1.55
