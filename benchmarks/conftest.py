"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one of the paper's tables/figures
(quick sweeps by default — set REPRO_BENCH_FULL=1 for the full axes),
times the regeneration with pytest-benchmark, prints the reproduced
table, and asserts the *shape* claims the paper makes about it.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic, so repeated rounds would
    only re-measure wall-clock noise of identical work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
