"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from benchmarks.conftest import run_once
from repro.bench.harness import run_experiment


def test_ablation_eager_threshold(benchmark, quick):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation-threshold", quick=quick),
    )
    print()
    print(result.render())
    sizes = result.column("bytes")
    low = result.column("thr=4096")
    high = result.column("thr=16384")
    # Between the two thresholds (e.g. 8KB messages), the smaller
    # threshold has already switched to rendezvous, paying its
    # synchronization: the larger threshold's eager path is faster
    # at small-but-not-tiny sizes.
    mid = sizes.index(8192)
    assert high[mid] != low[mid]


def test_ablation_interrupt_coalescing(benchmark, quick):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation-coalescing", quick=quick),
    )
    print()
    print(result.render())
    delays = result.column("delay us")
    latency = result.column("RTT/2 us")
    # Latency strictly grows with the coalescing delay: the tuning
    # knob trades latency for interrupt amortization.
    assert latency == sorted(latency)
    assert latency[-1] - latency[0] > 0.5 * (delays[-1] - delays[0])


def test_ablation_tokens(benchmark, quick):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation-tokens", quick=quick),
    )
    print()
    print(result.render())
    tokens = result.column("tokens")
    stream = result.column("stream MB/s")
    # Starving the channel of tokens stalls the eager pipeline.
    assert stream[-1] > stream[0]


def test_ablation_recv_copy(benchmark, quick):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation-overhead", quick=quick),
    )
    print()
    print(result.render())
    variants = result.column("variant")
    latency = result.column("RTT/2 us")
    aggregate = result.column("3-D agg MB/s")
    base = variants.index("baseline")
    nocopy = variants.index("no recv copy")
    # Removing M-VIA's receive copy (the paper's future work) never
    # hurts latency and buys real 6-link aggregated bandwidth.
    assert latency[nocopy] <= latency[base] + 0.01
    assert aggregate[nocopy] > aggregate[base]


def test_ablation_checksum(benchmark, quick):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation-checksum", quick=quick),
    )
    print()
    print(result.render())
    variants = result.column("checksum")
    bandwidth = result.column("simul MB/s")
    hw = variants.index("hardware")
    sw = variants.index("software")
    # Hardware checksum 'without degrading performance' (section 4):
    # software checksum costs real bandwidth.
    assert bandwidth[hw] > bandwidth[sw]
