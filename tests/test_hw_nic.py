"""Tests for the GigE port model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.link import Frame, Link
from repro.hw.nic import GigEPort
from repro.hw.node import Host
from repro.hw.params import GigEParams, HostParams
from repro.sim import Simulator


def _pair(sim, gige=None, host_params=None):
    gige = gige or GigEParams()
    h0, h1 = Host(sim, 0, host_params), Host(sim, 1, host_params)
    link = Link(sim, gige.wire_rate, gige.frame_overhead,
                gige.propagation, name="L")
    p0 = GigEPort(sim, h0, gige, name="p0")
    p1 = GigEPort(sim, h1, gige, name="p1")
    p0.attach_link(link, 0)
    p1.attach_link(link, 1)
    return p0, p1


def _null_driver(port):
    def driver(frame):
        port.post_rx_descriptors(1)
        yield port.sim.timeout(0)
    return driver


def _collector(port, sink):
    def driver(frame):
        sink.append((port.sim.now, frame))
        port.post_rx_descriptors(1)
        yield port.sim.timeout(0)
    return driver


def test_frame_travels_end_to_end(sim):
    p0, p1 = _pair(sim)
    arrivals = []
    p1.set_driver(_collector(p1, arrivals))
    p0.set_driver(_null_driver(p0))

    def send():
        yield from p0.enqueue_tx(Frame(100, 42))

    sim.spawn(send())
    sim.run(until=1000)
    assert len(arrivals) == 1
    assert arrivals[0][1].payload_bytes == 100


def test_frames_stay_ordered(sim):
    p0, p1 = _pair(sim)
    arrivals = []
    p1.set_driver(_collector(p1, arrivals))
    p0.set_driver(_null_driver(p0))

    def send():
        for index in range(20):
            yield from p0.enqueue_tx(Frame(1458, 42, payload=index))

    sim.spawn(send())
    sim.run(until=10000)
    assert [f.payload for _t, f in arrivals] == list(range(20))


def test_coalescing_count_trigger(sim):
    # With a huge delay, only the frame-count threshold fires.
    gige = GigEParams(coalesce_delay=100000.0, coalesce_frames=5)
    p0, p1 = _pair(sim, gige)
    arrivals = []
    p1.set_driver(_collector(p1, arrivals))
    p0.set_driver(_null_driver(p0))

    def send(count):
        for _ in range(count):
            yield from p0.enqueue_tx(Frame(100, 42))

    sim.spawn(send(5))
    sim.run(until=5000)
    assert len(arrivals) == 5
    assert p1.stats["interrupts"] == 1


def test_coalescing_delay_trigger(sim):
    gige = GigEParams(coalesce_delay=50.0, coalesce_frames=100)
    p0, p1 = _pair(sim, gige)
    arrivals = []
    p1.set_driver(_collector(p1, arrivals))
    p0.set_driver(_null_driver(p0))

    def send():
        yield from p0.enqueue_tx(Frame(100, 42))

    sim.spawn(send())
    sim.run(until=5000)
    assert len(arrivals) == 1
    # Delivery waits out the coalescing delay.
    assert arrivals[0][0] >= 50.0


def test_missing_driver_raises(sim):
    p0, p1 = _pair(sim)
    p0.set_driver(_null_driver(p0))

    def send():
        yield from p0.enqueue_tx(Frame(100, 42))

    sim.spawn(send())
    with pytest.raises(ConfigurationError):
        sim.run(until=5000)


def test_rx_credits_deplete_and_recover(sim):
    gige = GigEParams(rx_ring=4, coalesce_delay=1e9,
                      coalesce_frames=10**6)
    p0, p1 = _pair(sim, gige)
    p0.set_driver(_null_driver(p0))
    # No interrupts will fire (absurd coalescing), so credits are
    # consumed and never recycled: the 5th frame stalls the rx loop.
    received = []
    p1.set_driver(_collector(p1, received))

    def send():
        for _ in range(6):
            yield from p0.enqueue_tx(Frame(1458, 42))

    sim.spawn(send())
    sim.run(until=2000)
    assert p1.stats["rx_frames"] == 4
    assert len(p1.rx_credits) == 0


def test_on_fetched_called_after_dma(sim):
    p0, p1 = _pair(sim)
    p1.set_driver(_null_driver(p1))
    p0.set_driver(_null_driver(p0))
    fired = []
    frame = Frame(1458, 42, on_fetched=lambda: fired.append(sim.now))

    def send():
        yield from p0.enqueue_tx(frame)

    process = sim.spawn(send())
    sim.run_until_complete(process)
    sim.run(until=1000)
    assert len(fired) == 1
    # Fetched strictly before serialization could have finished.
    assert fired[0] < 1500 / 125.0 + 5


def test_try_enqueue_respects_ring_size(sim):
    gige = GigEParams(tx_ring=2)
    p0, _p1 = _pair(sim, gige)
    assert p0.try_enqueue_tx(Frame(10, 0))
    assert p0.try_enqueue_tx(Frame(10, 0))
    assert not p0.try_enqueue_tx(Frame(10, 0))


def test_double_attach_rejected(sim):
    gige = GigEParams()
    host = Host(sim, 0)
    port = GigEPort(sim, host, gige)
    link = Link(sim, gige.wire_rate, gige.frame_overhead,
                gige.propagation)
    port.attach_link(link, 0)
    link2 = Link(sim, gige.wire_rate, gige.frame_overhead,
                 gige.propagation)
    with pytest.raises(ConfigurationError):
        port.attach_link(link2, 0)


def test_software_checksum_costs_cpu(sim):
    fast = GigEParams(hw_checksum=True)
    slow = GigEParams(hw_checksum=False)

    def measure(gige):
        local = Simulator()
        p0, p1 = _pair(local, gige)
        p1.set_driver(_null_driver(p1))
        p0.set_driver(_null_driver(p0))
        done = []

        def send():
            for _ in range(10):
                yield from p0.enqueue_tx(Frame(1458, 42))
            done.append(local.now)

        process = local.spawn(send())
        local.run_until_complete(process)
        local.run(until=1e6)
        return p1.stats["rx_frames"], local.now

    frames_fast, _ = measure(fast)
    frames_slow, _ = measure(slow)
    assert frames_fast == frames_slow == 10
