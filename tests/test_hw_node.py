"""Tests for the host model: CPU priorities, copies, DMA, IRQ batching."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.node import (
    Host,
    PRIO_COMPUTE,
    PRIO_IRQ,
    PRIO_USER,
)
from repro.hw.params import HostParams
from repro.sim import Simulator
from tests.conftest import run


def test_validation(sim):
    with pytest.raises(ConfigurationError):
        Host(sim, 0, num_pci_buses=0)
    host = Host(sim, 0)

    def negative():
        yield from host.cpu_work(-1)

    with pytest.raises(ConfigurationError):
        run(sim, negative())


def test_cpu_priority_ordering(sim):
    host = Host(sim, 0)
    log = []

    def work(tag, priority):
        yield from host.cpu_work(10, priority)
        log.append(tag)

    def submit():
        request = host.cpu.request(PRIO_IRQ)
        yield request
        sim.spawn(work("compute", PRIO_COMPUTE))
        sim.spawn(work("irq", PRIO_IRQ))
        sim.spawn(work("user", PRIO_USER))
        yield sim.timeout(1)
        host.cpu.release(request)

    run(sim, submit())
    sim.run()
    assert log == ["irq", "user", "compute"]


def test_copy_occupies_cpu(sim):
    host = Host(sim, 0, HostParams(copy_rate=100.0))
    log = []

    def copier():
        yield from host.copy(1000, PRIO_USER)
        log.append(("copy", sim.now))

    def worker():
        yield sim.timeout(0.5)
        yield from host.cpu_work(1, PRIO_USER)
        log.append(("work", sim.now))

    sim.spawn(copier())
    sim.spawn(worker())
    sim.run()
    # Copy holds the CPU ~10us; the worker runs after.
    assert log[0][0] == "copy"
    assert log[1][1] > log[0][1]


def test_copy_rate_cap(sim):
    host = Host(sim, 0, HostParams(copy_rate=100.0, membus_rate=10000.0))

    def copier():
        yield from host.copy(1000)
        return sim.now

    # Rate capped at copy_rate, not the (faster) membus.
    assert run(sim, copier()) == pytest.approx(10.0, abs=0.1)


def test_dma_does_not_touch_cpu(sim):
    host = Host(sim, 0)
    log = []

    def dma():
        yield from host.dma(10000, 0)
        log.append(("dma", sim.now))

    def cpu_user():
        yield from host.cpu_work(1, PRIO_USER)
        log.append(("cpu", sim.now))

    sim.spawn(dma())
    sim.spawn(cpu_user())
    sim.run()
    # CPU work completes long before the DMA (no CPU involvement).
    assert log[0][0] == "cpu"


def test_dma_pci_index_validated(sim):
    host = Host(sim, 0, num_pci_buses=2)

    def bad():
        yield from host.dma(100, 5)

    with pytest.raises(ConfigurationError):
        run(sim, bad())


def test_dma_accounting(sim):
    host = Host(sim, 0, num_pci_buses=3)

    def proc():
        yield from host.dma(1000, 2)

    run(sim, proc())
    assert host.stats["dmas"] == 1
    assert host.stats["dma_bytes"] == 1000
    assert host.pci_bytes == [0.0, 0.0, 1000.0]


def test_irq_controller_batches_entry_cost(sim):
    params = HostParams(interrupt_cost=5.0, interrupt_per_frame=1.0)
    host = Host(sim, 0, params)
    handled = []

    def handler(frame):
        handled.append((frame, sim.now))
        yield sim.timeout(0)

    host.irq.raise_irq([(handler, "f1"), (handler, "f2"), (handler, "f3")])
    sim.run()
    assert [f for f, _t in handled] == ["f1", "f2", "f3"]
    # One entry cost (5) + 3 per-frame costs (1 each) = 8us total.
    assert handled[-1][1] == pytest.approx(8.0)
    assert host.irq.stats["entries"] == 1
    assert host.irq.stats["items"] == 3


def test_irq_work_raised_during_dispatch_joins_batch(sim):
    params = HostParams(interrupt_cost=5.0, interrupt_per_frame=1.0)
    host = Host(sim, 0, params)
    handled = []

    def handler(frame):
        handled.append((frame, sim.now))
        if frame == "first":
            # Arrives while the dispatcher is running.
            host.irq.raise_irq([(handler, "second")])
        yield sim.timeout(0)

    host.irq.raise_irq([(handler, "first")])
    sim.run()
    assert [f for f, _t in handled] == ["first", "second"]
    assert host.irq.stats["entries"] == 1  # same entry served both


def test_compute_runs_at_lowest_priority(sim):
    host = Host(sim, 0)
    log = []

    def background():
        yield from host.compute(100)
        log.append("compute")

    def urgent():
        yield sim.timeout(1)
        yield from host.cpu_work(1, PRIO_IRQ)
        log.append("irq")

    sim.spawn(background())
    sim.spawn(urgent())
    sim.run()
    # Our CPU model is non-preemptive: compute finishes, then irq.
    assert log == ["compute", "irq"]
