"""Tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout
from tests.conftest import run


def test_event_starts_pending(sim):
    event = sim.event("e")
    assert not event.triggered
    assert not event.processed
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_succeed_sets_value_and_processes(sim):
    event = sim.event()
    event.succeed(42)
    assert event.triggered
    assert not event.processed
    sim.run()
    assert event.processed
    assert event.ok
    assert event.value == 42


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("x"))


def test_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_fail_propagates_into_process(sim):
    event = sim.event()

    def proc():
        with pytest.raises(ValueError):
            yield event
        return "handled"

    process = sim.spawn(proc())
    event.fail(ValueError("boom"))
    assert run(sim, _wait(process)) == "handled"


def _wait(process):
    value = yield process
    return value


def test_timeout_fires_at_delay(sim):
    def proc():
        yield sim.timeout(5.5)
        return sim.now

    assert run(sim, proc()) == 5.5


def test_timeout_carries_value(sim):
    def proc():
        value = yield sim.timeout(1, value="payload")
        return value

    assert run(sim, proc()) == "payload"


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeouts_fire_in_order(sim):
    order = []

    def waiter(delay):
        yield sim.timeout(delay)
        order.append(delay)

    for delay in (3, 1, 2):
        sim.spawn(waiter(delay))
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fifo(sim):
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(waiter(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_anyof_fires_on_first(sim):
    def proc():
        t1 = sim.timeout(10, value="slow")
        t2 = sim.timeout(2, value="fast")
        result = yield (t1 | t2)
        return (sim.now, list(result.values()))

    now, values = run(sim, proc())
    assert now == 2
    assert values == ["fast"]


def test_allof_waits_for_all(sim):
    def proc():
        t1 = sim.timeout(10, value="slow")
        t2 = sim.timeout(2, value="fast")
        result = yield (t1 & t2)
        return (sim.now, sorted(result.values()))

    now, values = run(sim, proc())
    assert now == 10
    assert values == ["fast", "slow"]


def test_empty_condition_fires_immediately(sim):
    def proc():
        result = yield AllOf(sim, [])
        return result

    assert run(sim, proc()) == {}


def test_condition_failure_propagates(sim):
    bad = sim.event()

    def proc():
        with pytest.raises(RuntimeError):
            yield AllOf(sim, [sim.timeout(5), bad])
        return "ok"

    bad.fail(RuntimeError("inner"))
    assert run(sim, proc()) == "ok"


def test_condition_rejects_foreign_events(sim):
    other = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [sim.timeout(1), other.timeout(1)])


def test_condition_over_already_processed_event(sim):
    timeout = sim.timeout(1)
    sim.run()
    assert timeout.processed

    def proc():
        result = yield AllOf(sim, [timeout])
        return len(result)

    assert run(sim, proc()) == 1


def test_add_callback_after_processed_still_runs(sim):
    event = sim.event()
    event.succeed("v")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]
