"""Tests for the Table 1 benchmark harness."""

import pytest

from repro.analysis.costmodel import (
    GIGE_MESH_COSTS,
    MYRINET_COSTS,
    dollars_per_mflops,
)
from repro.errors import BenchmarkError, ConfigurationError
from repro.lqcd.benchmark import (
    DEFAULT_COMPUTE_GFLOPS,
    LqcdBenchmark,
    flops_per_iteration,
)
from repro.lqcd.lattice import LocalLattice


@pytest.fixture(scope="module")
def bench():
    return LqcdBenchmark(gige_dims=(2, 2, 2), myrinet_hosts=8,
                         myrinet_logical_dims=(2, 2, 2), iterations=3)


def test_flops_per_iteration():
    local = LocalLattice(4, 4, 4, 4)
    assert flops_per_iteration(local) == 256 * (2 * 570 + 120)


def test_gige_result_sane(bench):
    result = bench.run_gige(LocalLattice(6, 6, 6, 6))
    assert 0 < result.gflops_per_node < DEFAULT_COMPUTE_GFLOPS
    assert result.dollars_per_mflops > 0
    assert 0 < result.efficiency < 1


def test_myrinet_result_sane(bench):
    result = bench.run_myrinet(LocalLattice(6, 6, 6, 6))
    assert 0 < result.gflops_per_node < DEFAULT_COMPUTE_GFLOPS


def test_myrinet_faster_per_node(bench):
    """Paper: 'the LQCD benchmark code performs a little better in the
    switched Myrinet cluster'.  (At the smallest quick-config lattice
    the two are within noise of parity; the rendezvous-size lattices
    show the gap.)"""
    local = LocalLattice(8, 8, 8, 8)
    myri = bench.run_myrinet(local)
    gige = bench.run_gige(local)
    assert myri.gflops_per_node >= gige.gflops_per_node
    # ... but only "a little": within a factor 2.
    assert myri.gflops_per_node < 2 * gige.gflops_per_node


def test_gige_efficiency_rises_with_lattice_size(bench):
    """Paper: 'gradual increase of GigE performance with respect to
    the lattice size ... decreasing surface-to-volume effect'."""
    small = bench.run_gige(LocalLattice(6, 6, 6, 6))
    large = bench.run_gige(LocalLattice(10, 10, 10, 10))
    assert large.gflops_per_node > small.gflops_per_node


def test_gige_wins_dollars_per_mflops_at_production_size(bench):
    local = LocalLattice(8, 8, 8, 8)
    myri = bench.run_myrinet(local)
    gige = bench.run_gige(local)
    assert gige.dollars_per_mflops < myri.dollars_per_mflops


def test_table1_rows(bench):
    rows = bench.table1([LocalLattice(6, 6, 6, 6)])
    assert len(rows) == 1
    myri, gige = rows[0]
    assert myri.label.startswith("Myrinet")
    assert gige.label.startswith("GigE")


def test_cost_model_anchors():
    # Section 3's published prices.
    assert GIGE_MESH_COSTS.network_per_node == 420.0
    assert MYRINET_COSTS.network_per_node == 1000.0
    assert dollars_per_mflops(GIGE_MESH_COSTS, 1.0) == pytest.approx(
        (1400 + 420) / 1000
    )
    with pytest.raises(ConfigurationError):
        dollars_per_mflops(GIGE_MESH_COSTS, 0.0)


def test_mismatched_myrinet_dims_rejected():
    with pytest.raises(BenchmarkError):
        LqcdBenchmark(myrinet_hosts=100, myrinet_logical_dims=(4, 4, 8))
