"""Tests for SU(3) algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lqcd.su3 import (
    SU3_MULTIPLY_FLOPS,
    is_su3,
    random_su3,
    reunitarize,
    su3_dagger,
    su3_matvec,
    su3_multiply,
)


def test_random_matrices_are_su3():
    u = random_su3(50, rng=np.random.default_rng(1))
    assert is_su3(u)


def test_group_closure_under_multiplication():
    rng = np.random.default_rng(2)
    a = random_su3(20, rng=rng)
    b = random_su3(20, rng=rng)
    assert is_su3(su3_multiply(a, b), tol=1e-9)


def test_inverse_is_dagger():
    u = random_su3(10, rng=np.random.default_rng(3))
    product = su3_multiply(u, su3_dagger(u))
    assert np.allclose(product, np.eye(3)[None], atol=1e-10)


def test_determinant_is_one():
    u = random_su3(30, rng=np.random.default_rng(4))
    assert np.allclose(np.linalg.det(u), 1.0, atol=1e-10)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_reunitarize_idempotent_on_su3(seed):
    u = random_su3(5, rng=np.random.default_rng(seed))
    again = reunitarize(u)
    assert np.allclose(u, again, atol=1e-8)


def test_reunitarize_projects_perturbed_matrices():
    rng = np.random.default_rng(5)
    u = random_su3(10, rng=rng)
    noisy = u + 0.01 * (rng.normal(size=u.shape)
                        + 1j * rng.normal(size=u.shape))
    assert not is_su3(noisy, tol=1e-6)
    assert is_su3(reunitarize(noisy), tol=1e-9)


def test_matvec_matches_matrix_action():
    rng = np.random.default_rng(6)
    u = random_su3(4, rng=rng)
    v = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
    result = su3_matvec(u, v)
    for site in range(4):
        assert np.allclose(result[site], u[site] @ v[site])


def test_matvec_preserves_norm():
    rng = np.random.default_rng(7)
    u = random_su3(8, rng=rng)
    v = rng.normal(size=(8, 3)) + 1j * rng.normal(size=(8, 3))
    before = np.linalg.norm(v, axis=1)
    after = np.linalg.norm(su3_matvec(u, v), axis=1)
    assert np.allclose(before, after)


def test_flop_constant():
    # The standard count: 27 complex multiplies + 18 complex adds.
    assert SU3_MULTIPLY_FLOPS == 198
