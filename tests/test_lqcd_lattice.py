"""Tests for lattice decomposition and surface-to-volume accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.lqcd.lattice import (
    HALF_SPINOR_BYTES,
    LocalLattice,
    SubLatticeDecomposition,
    standard_local_lattices,
)
from repro.topology import Torus


def test_volume_and_dims():
    local = LocalLattice(4, 6, 8, 10)
    assert local.volume == 4 * 6 * 8 * 10
    assert local.dims == (4, 6, 8, 10)


def test_minimum_extent_enforced():
    with pytest.raises(ConfigurationError):
        LocalLattice(1, 4, 4, 4)


def test_surface_sites_per_axis():
    local = LocalLattice(4, 6, 8, 10)
    assert local.surface_sites(0) == 6 * 8 * 10
    assert local.surface_sites(1) == 4 * 8 * 10
    assert local.surface_sites(2) == 4 * 6 * 10
    with pytest.raises(ConfigurationError):
        local.surface_sites(3)  # t is never distributed


def test_total_surface_and_ratio():
    local = LocalLattice(4, 4, 4, 4)
    assert local.total_surface_sites() == 2 * 3 * 64
    assert local.surface_to_volume() == pytest.approx(384 / 256)


def test_surface_to_volume_decreases_with_size():
    ratios = [
        LocalLattice(L, L, L, L).surface_to_volume()
        for L in (4, 6, 8, 12)
    ]
    assert ratios == sorted(ratios, reverse=True)


def test_halo_bytes():
    local = LocalLattice(4, 4, 4, 4)
    assert local.halo_bytes(0) == 64 * HALF_SPINOR_BYTES


def test_decomposition_global_dims():
    deco = SubLatticeDecomposition(Torus((4, 8, 8)),
                                   LocalLattice(4, 4, 4, 16))
    assert deco.global_dims == (16, 32, 32, 16)
    assert deco.global_volume == 16 * 32 * 32 * 16


def test_decomposition_requires_3d_machine():
    with pytest.raises(ConfigurationError):
        SubLatticeDecomposition(Torus((8, 8)), LocalLattice(4, 4, 4, 4))


def test_node_origin():
    deco = SubLatticeDecomposition(Torus((2, 2, 2)),
                                   LocalLattice(4, 4, 4, 8))
    assert deco.node_origin(0) == (0, 0, 0, 0)
    last = deco.machine.size - 1
    assert deco.node_origin(last) == (4, 4, 4, 0)


def test_standard_sweep_monotone():
    locals_ = standard_local_lattices()
    volumes = [l.volume for l in locals_]
    assert volumes == sorted(volumes)
