"""Tests for MPI point-to-point semantics."""

import pytest

from repro.cluster import build_mesh, run_mpi
from repro.errors import MessagingError, MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG, DOUBLE
from repro.mpi.request import test as mpi_test, waitall


def test_blocking_send_recv():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=3, nbytes=32, data="payload")
            return "sent"
        request = yield from comm.recv(source=0, tag=3, nbytes=64)
        return request.received_data

    assert run_mpi(cluster, program) == ["sent", "payload"]


def test_count_datatype_sizing():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, count=10, datatype=DOUBLE)
            return None
        request = yield from comm.recv(source=0, tag=1, count=10,
                                       datatype=DOUBLE)
        return request.received_bytes

    assert run_mpi(cluster, program)[1] == 80


def test_nbytes_and_count_mutually_exclusive():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                comm.isend(1, nbytes=10, count=5)
            with pytest.raises(MpiError):
                comm.isend(1)
        yield comm.engine.sim.timeout(1)

    run_mpi(cluster, program)


def test_nonblocking_requests_and_test():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            request = comm.isend(1, tag=1, nbytes=100)
            yield from request.wait()
            assert mpi_test(request)
            return "ok"
        request = comm.irecv(0, tag=1, nbytes=100)
        assert not mpi_test(request)
        yield from request.wait()
        return "ok"

    assert run_mpi(cluster, program) == ["ok", "ok"]


def test_waitall():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            sends = [comm.isend(1, tag=i, nbytes=64) for i in range(4)]
            yield from waitall(sends)
            return all(s.complete for s in sends)
        recvs = [comm.irecv(0, tag=i, nbytes=64) for i in range(4)]
        yield from waitall(recvs)
        return all(r.complete for r in recvs)

    assert run_mpi(cluster, program) == [True, True]


def test_sendrecv_exchanges():
    cluster = build_mesh((2,), wrap=True)

    def program(comm):
        peer = 1 - comm.rank
        request = yield from comm.sendrecv(
            dest=peer, source=peer, send_nbytes=16, recv_nbytes=64,
            data=f"from{comm.rank}",
        )
        return request.received_data

    assert run_mpi(cluster, program) == ["from1", "from0"]


def test_wildcard_source_and_tag():
    cluster = build_mesh((3,), wrap=True)

    def program(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                request = yield from comm.recv(source=ANY_SOURCE,
                                               tag=ANY_TAG, nbytes=64)
                got.append((request.received_src, request.received_tag))
            return sorted(got)
        yield from comm.send(0, tag=10 + comm.rank, nbytes=8)
        return None

    results = run_mpi(cluster, program)
    assert results[0] == [(1, 11), (2, 12)]


def test_non_overtaking_same_pair():
    cluster = build_mesh((2,), wrap=False)
    count = 16

    def program(comm):
        if comm.rank == 0:
            for index in range(count):
                yield from comm.send(1, tag=5, nbytes=128, data=index)
            return None
        seen = []
        for _ in range(count):
            request = yield from comm.recv(source=0, tag=5, nbytes=256)
            seen.append(request.received_data)
        return seen

    assert run_mpi(cluster, program)[1] == list(range(count))


def test_tag_selectivity():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, nbytes=8, data="one")
            yield from comm.send(1, tag=2, nbytes=8, data="two")
            return None
        second = yield from comm.recv(source=0, tag=2, nbytes=64)
        first = yield from comm.recv(source=0, tag=1, nbytes=64)
        return (first.received_data, second.received_data)

    assert run_mpi(cluster, program)[1] == ("one", "two")


def test_truncation_fails_receive():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, nbytes=1000)
            return "sent"
        request = comm.irecv(0, tag=1, nbytes=10)
        with pytest.raises(MessagingError):
            yield from request.wait()
        return "failed"

    assert run_mpi(cluster, program) == ["sent", "failed"]


def test_distant_ranks_communicate():
    cluster = build_mesh((3, 3), wrap=True)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(8, tag=1, nbytes=64, data="corner")
        elif comm.rank == 8:
            request = yield from comm.recv(source=0, tag=1, nbytes=64)
            return request.received_data
        return None

    assert run_mpi(cluster, program)[8] == "corner"


def test_large_rendezvous_through_mpi():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, nbytes=500_000, data="big")
            return None
        request = yield from comm.recv(source=0, tag=1, nbytes=500_000)
        return (request.received_bytes, request.received_data)

    assert run_mpi(cluster, program)[1] == (500_000, "big")
