"""Collectives over the reliable VIA layer on a lossy 8-node torus.

The MPI collectives run over the messaging core, which runs over VIA
channels — so the go-back-N layer underneath must make every collective
produce *bit-identical* results at 1% frame loss, merely slower.  Also
pins the determinism guarantee: one fault seed, one event trace.
"""

import numpy as np
import pytest

from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_world, run_mpi
from repro.hw.faults import FaultParams
from repro.hw.params import GigEParams
from repro.sim import Simulator, Trace

DIMS = (2, 2, 2)  # the 8-node torus of the paper's small testbed
LOSS = 0.01


def _lossy_params(seed):
    return GigEParams(faults=FaultParams(seed=seed, loss_rate=LOSS))


def _build(seed=None, trace=None):
    sim = Simulator(trace=trace) if trace is not None else None
    gige = _lossy_params(seed) if seed is not None else None
    return build_mesh(DIMS, gige_params=gige, sim=sim)


def _collective_program(comm, results):
    """Every rank: broadcast, global sum, OPT scatter, allgather."""
    rank = comm.rank
    out = {}
    out["bcast"] = yield from comm.bcast(
        root=0, nbytes=2048, data=("payload", tuple(range(32))),
    )
    out["sum"] = yield from comm.allreduce(
        nbytes=8, data=np.float64(rank + 1),
    )
    scatter_data = (
        [("slice", i, i * 7) for i in range(comm.size)]
        if rank == 0 else None
    )
    out["scatter"] = yield from comm.scatter(
        root=0, nbytes=4096, data=scatter_data, algorithm="opt",
    )
    out["allgather"] = yield from comm.allgather(
        nbytes=512, data=("from", rank),
    )
    results[rank] = out


def _run_all(seed=None, trace=None):
    cluster = _build(seed=seed, trace=trace)
    results = [None] * cluster.size
    run_mpi(cluster, _collective_program, args=(results,))
    return cluster, results


@pytest.fixture(scope="module")
def lossless_results():
    _cluster, results = _run_all(seed=None)
    return results


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_collectives_bit_identical_under_loss(seed, lossless_results):
    cluster, results = _run_all(seed=seed)
    # Real losses occurred...
    dropped = sum(sum(link.stats["dropped"]) for link in cluster.links)
    assert dropped > 0, "1% loss injected nothing; test is vacuous"
    # ...and recovery was invisible to the application: every rank's
    # result of every collective is bit-identical to the lossless run.
    for rank in range(cluster.size):
        lossy, clean = results[rank], lossless_results[rank]
        assert repr(lossy) == repr(clean)
        # The global sum specifically (fig5's collective) stays the
        # exact IEEE-754 sum 1+2+...+8.
        assert lossy["sum"] == np.float64(36.0)
        assert repr(lossy["sum"]) == repr(clean["sum"])


def test_recovery_counters_visible():
    # Loss heavy enough that DATA frames are certainly among the
    # casualties (1% on this short workload can hit only ACKs).
    cluster = build_mesh(
        DIMS, gige_params=GigEParams(
            faults=FaultParams(seed=11, loss_rate=0.05)
        ),
    )
    results = [None] * cluster.size
    run_mpi(cluster, _collective_program, args=(results,))
    totals = cluster.reliability_stats()
    # The monitor counters expose the recovery work that happened.
    assert totals["retransmits"] > 0
    assert totals["timeouts"] > 0
    assert totals["acks_sent"] > 0
    assert totals["frames_dropped"] > 0
    from repro.sim.monitor import reliability_summary

    summary = reliability_summary(totals)
    assert "retransmits=" in summary and "timeouts=" in summary


def test_same_seed_identical_event_trace():
    """Acceptance: same fault seed => identical event trace (names and
    timestamps), run to run."""

    def traced_run():
        trace = Trace()
        cluster, results = _run_all(seed=777, trace=trace)
        return (
            [(r.time, r.name, r.kind) for r in trace.records],
            repr(results),
            cluster.reliability_stats(),
        )

    first = traced_run()
    second = traced_run()
    assert first[1] == second[1]
    assert first[2] == second[2]
    assert first[0] == second[0]


# -- NIC-resident tier under loss ----------------------------------------

def _nic_program(comm, results):
    """NIC-tier allreduce/bcast/barrier rounds (exact float64 values)."""
    comm.set_collective_tier("nic")
    rank = comm.rank
    out = {}
    for i in range(3):
        out[f"sum{i}"] = yield from comm.allreduce(
            nbytes=64, data=np.float64(rank + i + 1))
    out["bcast"] = yield from comm.bcast(
        root=0, nbytes=256,
        data=("nic", tuple(range(8))) if rank == 0 else None)
    yield from comm.barrier()
    results[rank] = out


def _run_nic(seed=None):
    cluster = _build(seed=seed)
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_nic_collectives()
    results = [None] * cluster.size
    run_mpi(cluster, _nic_program, args=(results,), comms=comms)
    return cluster, results


@pytest.fixture(scope="module")
def nic_lossless_results():
    _cluster, results = _run_nic(seed=None)
    return results


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_nic_collectives_bit_identical_under_loss(seed,
                                                  nic_lossless_results):
    """The NIC engine's own go-back-N makes 1% loss invisible: every
    rank's results are bit-identical to the lossless run."""
    cluster, results = _run_nic(seed=seed)
    dropped = sum(sum(link.stats["dropped"]) for link in cluster.links)
    assert dropped > 0, "1% loss injected nothing; test is vacuous"
    for rank in range(cluster.size):
        assert repr(results[rank]) == repr(nic_lossless_results[rank])
        assert results[rank]["sum0"] == np.float64(36.0)


def test_nic_arq_interops_with_kernel_gobackn():
    """NIC collectives and ordinary reliable VIA traffic share the
    lossy fabric: both recover, neither perturbs the other's result."""
    # 5% loss: heavy enough that this short mixed workload certainly
    # loses frames on both planes (1% can miss it entirely).
    cluster = build_mesh(DIMS, gige_params=GigEParams(
        faults=FaultParams(seed=42, loss_rate=0.05)))
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_nic_collectives()
    results = [None] * cluster.size

    def program(comm, results):
        rank = comm.rank
        peer = rank ^ 1
        out = {}
        # Kernel go-back-N traffic (point-to-point)...
        for i in range(2):
            if rank % 2 == 0:
                yield from comm.isend(peer, i, 2048).wait()
                req = comm.irecv(peer, i, 2048)
                yield from req.wait()
            else:
                req = comm.irecv(peer, i, 2048)
                yield from req.wait()
                yield from comm.isend(peer, i, 2048).wait()
        # ...interleaved with NIC-tier collectives.
        comm.set_collective_tier("nic")
        out["sum"] = yield from comm.allreduce(
            nbytes=64, data=np.float64(rank + 1))
        yield from comm.barrier()
        results[rank] = out

    run_mpi(cluster, program, args=(results,), comms=comms)
    assert all(r["sum"] == np.float64(36.0) for r in results)
    # Both reliability planes did real recovery work or at least saw
    # real losses on the shared fabric.
    dropped = sum(sum(link.stats["dropped"]) for link in cluster.links)
    assert dropped > 0
    nic_totals = {}
    for node in cluster.nodes:
        for key, value in node.via.nic_collective.stats.items():
            nic_totals[key] = nic_totals.get(key, 0) + value
    assert nic_totals["acks_sent"] > 0  # the NIC ARQ engaged


def test_nic_arq_stays_cold_without_loss():
    """On a lossless fabric the NIC engine never sequences frames or
    sends ACKs — default runs are identical to pre-ARQ behavior."""
    cluster, results = _run_nic(seed=None)
    for node in cluster.nodes:
        stats = node.via.nic_collective.stats
        assert stats["acks_sent"] == 0
        assert stats["acks_received"] == 0
        assert stats["retransmits"] == 0
    assert results[0]["sum0"] == np.float64(36.0)


def test_lossless_torus_stays_cold():
    cluster, results = _run_all(seed=None)
    totals = cluster.reliability_stats()
    assert all(value == 0 for value in totals.values()), totals
    assert results[0]["sum"] == np.float64(36.0)
