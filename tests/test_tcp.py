"""Tests for the TCP baseline stack."""

import pytest

from repro.cluster.builder import build_mesh
from repro.errors import TcpError
from repro.hw.params import TcpParams
from repro.tcpip.socket import SocketState


def _pair(tcp_params=None, dims=(2,)):
    cluster = build_mesh(dims, wrap=False, stack="tcp",
                         tcp_params=tcp_params)
    return cluster, [node.tcp for node in cluster.nodes]


def _connect(cluster, stacks, a=0, b=1, conn_id=7):
    sim = cluster.sim
    holder = {}

    def passive():
        holder["b"] = yield from stacks[b].listen(conn_id)

    def active():
        holder["a"] = yield from stacks[a].connect(b, conn_id)

    p1 = sim.spawn(passive())
    p2 = sim.spawn(active())
    sim.run_until_complete(p1)
    sim.run_until_complete(p2)
    return holder["a"], holder["b"]


def test_handshake_establishes_both_ends():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    assert sock_a.state is SocketState.ESTABLISHED
    assert sock_b.state is SocketState.ESTABLISHED
    assert sock_a.peer_node == 1
    assert sock_b.peer_node == 0


def test_connect_before_listen_works():
    cluster, stacks = _pair()
    sim = cluster.sim
    holder = {}

    def active():
        holder["a"] = yield from stacks[0].connect(1, 9)

    def passive():
        yield sim.timeout(100)  # SYN arrives before the listen
        holder["b"] = yield from stacks[1].listen(9)

    p1 = sim.spawn(active())
    p2 = sim.spawn(passive())
    sim.run_until_complete(p1)
    sim.run_until_complete(p2)
    assert holder["a"].state is SocketState.ESTABLISHED


def test_duplicate_conn_id_rejected():
    cluster, stacks = _pair()
    _connect(cluster, stacks)

    def again():
        yield from stacks[0].connect(1, 7)

    with pytest.raises(TcpError):
        cluster.sim.run_until_complete(cluster.sim.spawn(again()))


def test_send_recv_roundtrip_with_payload():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim
    result = {}

    def sender():
        yield from sock_a.send(5000, payload={"msg": 1})

    def receiver():
        result["payloads"] = yield from sock_b.recv(5000)

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    assert result["payloads"] == [{"msg": 1}]


def test_stream_semantics_concatenate():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim
    result = {}

    def sender():
        yield from sock_a.send(1000, payload="first")
        yield from sock_a.send(1000, payload="second")

    def receiver():
        # One recv spanning both messages returns both payloads.
        result["payloads"] = yield from sock_b.recv(2000)

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    assert result["payloads"] == ["first", "second"]


def test_segmentation_counts():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim
    mss = stacks[0].mss

    def sender():
        yield from sock_a.send(3 * mss + 1)

    def receiver():
        yield from sock_b.recv(3 * mss + 1)

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    assert stacks[1].stats["segments_in"] == 4


def test_acks_flow_back():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim

    def sender():
        yield from sock_a.send(100_000)

    def receiver():
        yield from sock_b.recv(100_000)

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 10_000)
    assert stacks[0].stats["acks"] > 0
    assert sock_a.in_flight == 0


def test_window_blocks_sender():
    params = TcpParams(window_bytes=8192)
    cluster, stacks = _pair(params)
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim
    progress = {}

    def sender():
        yield from sock_a.send(500_000)
        progress["send_done"] = sim.now

    def receiver():
        yield from sock_b.recv(500_000)
        progress["recv_done"] = sim.now

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    # With an 8KB window the transfer is ack-clocked: the sender
    # cannot finish much before the receiver.
    assert progress["send_done"] > 0
    assert sock_a.in_flight <= params.window_bytes


def test_send_on_closed_socket_rejected():
    cluster, stacks = _pair()
    sim = cluster.sim
    from repro.tcpip.socket import TcpSocket

    sock = TcpSocket(stacks[0], 99)

    def bad():
        yield from sock.send(10)

    with pytest.raises(TcpError):
        sim.run_until_complete(sim.spawn(bad()))


def test_ip_forwarding_multi_hop():
    cluster, stacks = _pair(dims=(3,))
    sock_a, sock_c = _connect(cluster, stacks, a=0, b=2)
    sim = cluster.sim
    result = {}

    def sender():
        yield from sock_a.send(10_000, payload="via-middle")

    def receiver():
        result["payloads"] = yield from sock_c.recv(10_000)

    sim.spawn(sender())
    process = sim.spawn(receiver())
    sim.run_until_complete(process)
    assert result["payloads"] == ["via-middle"]
    assert stacks[1].stats["forwarded"] > 0


def test_latency_at_least_30_percent_above_via():
    from repro.bench.microbench import tcp_latency, via_latency

    tcp = tcp_latency(4, repeats=5)
    via = via_latency(4, repeats=5)
    assert tcp >= 1.3 * via


def test_close_tears_down_both_ends():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim

    def closer():
        yield from sock_a.close()

    process = sim.spawn(closer())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 1000)
    assert sock_a.state is SocketState.CLOSED
    assert sock_b.state is SocketState.CLOSED


def test_close_fails_blocked_receiver():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim
    outcome = {}

    def receiver():
        try:
            yield from sock_b.recv(1000)
        except TcpError:
            outcome["error"] = True

    def closer():
        yield sim.timeout(50)
        yield from sock_a.close()

    process = sim.spawn(receiver())
    sim.spawn(closer())
    sim.run_until_complete(process)
    assert outcome.get("error")


def test_send_after_close_rejected():
    cluster, stacks = _pair()
    sock_a, sock_b = _connect(cluster, stacks)
    sim = cluster.sim

    def run():
        yield from sock_a.close()
        with pytest.raises(TcpError):
            yield from sock_a.send(10)

    sim.run_until_complete(sim.spawn(run()))
