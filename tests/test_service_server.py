"""JSON-lines socket server: transport framing, ops, graceful drain."""

import asyncio
import json

from repro.service import (
    Fleet,
    ResultCache,
    Router,
    RouterConfig,
    ServiceClient,
    ServiceServer,
)
from repro.service.protocol import JobSpec


def test_server_roundtrip_ops_and_shutdown():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        server = ServiceServer(router)
        await fleet.start()
        host, port = await server.start()
        client = await ServiceClient(host, port).connect()

        pong = await client.request({"op": "ping", "id": "p"})
        assert pong == {"id": "p", "status": "ok", "pong": True}

        spec = JobSpec.make("point", "via_latency", nbytes=4)
        first = await client.submit(spec.to_wire(), request_id="s1")
        assert first["status"] == "ok" and first["cache"] == "miss"
        second = await client.submit(spec.to_wire(), request_id="s2")
        assert second["status"] == "ok" and second["cache"] == "hit"
        assert second["result"] == first["result"]

        status = await client.request({"op": "status", "id": "st"})
        assert status["id"] == "st"
        assert status["counters"]["cache_hits"] == 1
        assert status["fleet"]["dispatches"] == 1

        bad = await client.request({"op": "no-such-op", "id": "b"})
        assert bad["status"] == "error" and bad["retriable"] is False

        down = await client.request({"op": "shutdown", "id": "d"})
        assert down["status"] == "ok" and down["draining"] is True
        await client.close()
        await asyncio.wait_for(server.serve_until_shutdown(), 30.0)

    asyncio.run(scenario())


def test_server_rejects_garbage_lines_with_structured_errors():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        server = ServiceServer(router)
        await fleet.start()
        try:
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            writer.write(b'["an array, not an object"]\n')
            await writer.drain()
            for _ in range(2):
                response = json.loads(await reader.readline())
                assert response["status"] == "error"
                assert response["error"] == "ProtocolError"
                assert response["retriable"] is False
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown(drain=False)

    asyncio.run(scenario())
