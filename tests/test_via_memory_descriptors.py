"""Tests for VIA memory registration and descriptors."""

import pytest

from repro.errors import ViaDescriptorError, ViaProtectionError
from repro.via.descriptors import (
    DescriptorStatus,
    RecvDescriptor,
    SendDescriptor,
)
from repro.via.memory import MemoryRegion, ProtectionTag, RegisteredSpace


def test_protection_tags_unique():
    assert ProtectionTag.create() != ProtectionTag.create()


def test_register_and_find():
    space = RegisteredSpace()
    tag = ProtectionTag.create()
    region = space.register(4096, tag)
    assert space.find(region.addr, 4096, tag) is region
    assert space.find(region.addr + 100, 100, tag) is region


def test_find_respects_bounds():
    space = RegisteredSpace()
    tag = ProtectionTag.create()
    region = space.register(4096, tag)
    with pytest.raises(ViaProtectionError):
        space.find(region.addr + 4000, 200, tag)
    with pytest.raises(ViaProtectionError):
        space.find(region.addr - 10, 20, tag)


def test_find_checks_tag():
    space = RegisteredSpace()
    tag, other = ProtectionTag.create(), ProtectionTag.create()
    region = space.register(4096, tag)
    with pytest.raises(ViaProtectionError):
        space.find(region.addr, 100, other)


def test_rma_write_requires_enablement():
    space = RegisteredSpace()
    tag = ProtectionTag.create()
    plain = space.register(4096, tag)
    enabled = space.register(4096, tag, rma_write=True)
    with pytest.raises(ViaProtectionError):
        space.find(plain.addr, 10, tag, for_rma_write=True)
    assert space.find(enabled.addr, 10, tag, for_rma_write=True) is enabled


def test_deregister():
    space = RegisteredSpace()
    tag = ProtectionTag.create()
    region = space.register(1024, tag)
    space.deregister(region)
    with pytest.raises(ViaProtectionError):
        space.find(region.addr, 10, tag)
    with pytest.raises(ViaProtectionError):
        space.deregister(region)


def test_register_cost_scales_with_pages():
    space = RegisteredSpace()
    small = space.register_cost(4096)
    large = space.register_cost(40 * 4096)
    assert large > small


def test_invalid_registration():
    space = RegisteredSpace()
    with pytest.raises(ViaProtectionError):
        space.register(0, ProtectionTag.create())


def test_regions_do_not_overlap():
    space = RegisteredSpace()
    tag = ProtectionTag.create()
    regions = [space.register(1000, tag) for _ in range(10)]
    spans = sorted((r.addr, r.end) for r in regions)
    for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start


def _region(nbytes=4096, **kwargs):
    return MemoryRegion(0x1000, nbytes, ProtectionTag.create(), **kwargs)


def test_descriptor_segment_validation():
    region = _region(100)
    with pytest.raises(ViaDescriptorError):
        SendDescriptor(region, 50, 100)  # runs past the end
    with pytest.raises(ViaDescriptorError):
        SendDescriptor(region, -1, 10)
    with pytest.raises(ViaDescriptorError):
        SendDescriptor(region, 0, -5)


def test_descriptor_addr():
    region = _region(1000)
    descriptor = SendDescriptor(region, 100, 50)
    assert descriptor.addr == region.addr + 100


def test_descriptor_completes_once():
    descriptor = RecvDescriptor(_region(), 0, 10)
    assert descriptor.status is DescriptorStatus.PENDING
    descriptor.mark_done(5.0)
    assert descriptor.status is DescriptorStatus.DONE
    assert descriptor.completed_at == 5.0
    with pytest.raises(ViaDescriptorError):
        descriptor.mark_done(6.0)


def test_descriptor_error_state():
    descriptor = SendDescriptor(_region(), 0, 10)
    descriptor.mark_error(3.0)
    assert descriptor.status is DescriptorStatus.ERROR
