"""Tests for unit helpers and constants."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_gige_wire_rate():
    assert units.GIGE_WIRE_RATE == 125.0  # 1 Gb/s in bytes/us


def test_ethernet_overhead_composition():
    assert units.ETHERNET_WIRE_OVERHEAD == 14 + 4 + 8 + 12


def test_frames_for_zero_is_one():
    assert units.frames_for(0) == 1


def test_frames_for_exact_multiple():
    assert units.frames_for(units.ETHERNET_MTU) == 1
    assert units.frames_for(units.ETHERNET_MTU + 1) == 2
    assert units.frames_for(3 * units.ETHERNET_MTU) == 3


@given(st.integers(min_value=1, max_value=10_000_000))
def test_frames_cover_payload(nbytes):
    frames = units.frames_for(nbytes)
    assert (frames - 1) * units.ETHERNET_MTU < nbytes
    assert frames * units.ETHERNET_MTU >= nbytes


def test_wire_bytes_includes_per_frame_costs():
    payload = 2 * 1458  # exactly two frames with a 42-byte header
    total = units.wire_bytes(payload, per_frame_header=42)
    assert total == payload + 2 * (units.ETHERNET_WIRE_OVERHEAD + 42)


def test_wire_bytes_header_too_big():
    with pytest.raises(ValueError):
        units.wire_bytes(100, per_frame_header=units.ETHERNET_MTU)


def test_serialization_time():
    assert units.serialization_time(125, 125.0) == 1.0


def test_bandwidth():
    assert units.bandwidth_mbps(1000, 10) == 100.0


def test_pretty_size():
    assert units.pretty_size(16384) == "16K"
    assert units.pretty_size(2_000_000) == "2M"
    assert units.pretty_size(100) == "100"


def test_pretty_time():
    assert units.pretty_time(3.14159) == "3.14us"
    assert units.pretty_time(2500) == "2.500ms"
    assert units.pretty_time(3_000_000) == "3.000s"
