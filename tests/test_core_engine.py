"""Tests for the messaging core: protocols, tokens, rendezvous."""

import pytest

from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_engines
from repro.core.message import ANY_SOURCE, ANY_TAG, CoreParams


def _engines(dims=(2,), wrap=False, params=None):
    cluster = build_mesh(dims, wrap=wrap)
    engines = build_engines(cluster, params=params)
    return cluster, engines


def test_eager_roundtrip():
    cluster, engines = _engines()
    sim = cluster.sim
    recv = engines[1].irecv(0, tag=5, context=1, nbytes=1024)
    send = engines[0].isend(1, tag=5, context=1, nbytes=100,
                            data="hello")
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_data == "hello"
    assert recv.received_bytes == 100
    assert recv.received_src == 0
    assert engines[0].stats["eager_sent"] == 1


def test_unexpected_message_queued_then_matched():
    cluster, engines = _engines()
    sim = cluster.sim
    send = engines[0].isend(1, tag=9, context=1, nbytes=64, data="early")
    sim.run_until_complete(send)
    sim.run(until=sim.now + 100)  # message arrives unmatched
    assert engines[1].stats["unexpected"] == 1
    recv = engines[1].irecv(0, tag=9, context=1, nbytes=64)
    sim.run_until_complete(recv)
    assert recv.received_data == "early"


def test_rendezvous_large_message():
    cluster, engines = _engines()
    sim = cluster.sim
    nbytes = 200_000
    recv = engines[1].irecv(0, tag=1, context=1, nbytes=nbytes)
    send = engines[0].isend(1, tag=1, context=1, nbytes=nbytes,
                            data="bulk")
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_data == "bulk"
    assert engines[0].stats["rma_sent"] == 1


def test_rendezvous_send_first_uses_rts():
    cluster, engines = _engines()
    sim = cluster.sim
    send = engines[0].isend(1, tag=2, context=1, nbytes=100_000)
    sim.run(until=sim.now + 500)
    assert not send.triggered  # waiting for the advert
    assert engines[0].stats["rts_sent"] == 1
    recv = engines[1].irecv(0, tag=2, context=1, nbytes=100_000)
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_bytes == 100_000


def test_rendezvous_any_source():
    cluster, engines = _engines()
    sim = cluster.sim
    recv = engines[1].irecv(ANY_SOURCE, tag=ANY_TAG, context=1,
                            nbytes=65536)
    send = engines[0].isend(1, tag=77, context=1, nbytes=65536,
                            data="whoever")
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_src == 0
    assert recv.received_tag == 77


def test_context_isolation():
    cluster, engines = _engines()
    sim = cluster.sim
    recv_wrong = engines[1].irecv(0, tag=1, context=2, nbytes=1024)
    send = engines[0].isend(1, tag=1, context=1, nbytes=10)
    sim.run_until_complete(send)
    sim.run(until=sim.now + 200)
    assert not recv_wrong.triggered
    recv_right = engines[1].irecv(0, tag=1, context=1, nbytes=1024)
    sim.run_until_complete(recv_right)


def test_token_stall_and_recovery():
    params = CoreParams(data_tokens=2, token_return_threshold=1)
    cluster, engines = _engines(params=params)
    sim = cluster.sim
    count = 12
    recvs = [
        engines[1].irecv(0, tag=1, context=1, nbytes=512)
        for _ in range(count)
    ]
    sends = [
        engines[0].isend(1, tag=1, context=1, nbytes=256, data=index)
        for index in range(count)
    ]
    for request in sends + recvs:
        sim.run_until_complete(request, limit=1e7)
    assert [r.received_data for r in recvs] == list(range(count))
    channel = engines[0].channels[1]
    assert channel.stats["token_stalls"] > 0


def test_mixed_eager_and_rma_ordering():
    cluster, engines = _engines()
    sim = cluster.sim
    sizes = [100, 50_000, 200, 80_000]
    recvs = [
        engines[1].irecv(0, tag=4, context=1, nbytes=max(s, 1024))
        for s in sizes
    ]
    for index, size in enumerate(sizes):
        engines[0].isend(1, tag=4, context=1, nbytes=size, data=index)
    for request in recvs:
        sim.run_until_complete(request, limit=1e7)
    assert [r.received_data for r in recvs] == [0, 1, 2, 3]


def test_lazy_channel_to_distant_rank():
    cluster, engines = _engines(dims=(4,), wrap=True)
    sim = cluster.sim
    recv = engines[2].irecv(0, tag=1, context=1, nbytes=256)
    send = engines[0].isend(2, tag=1, context=1, nbytes=128,
                            data="far")
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_data == "far"
    # The channel was created on demand on both ends.
    assert 2 in engines[0].channels
    assert 0 in engines[2].channels


def test_self_channel_rejected():
    cluster, engines = _engines()
    from repro.errors import MessagingError

    def bad():
        yield from engines[0].ensure_channel(0)

    with pytest.raises(MessagingError):
        cluster.sim.run_until_complete(cluster.sim.spawn(bad()))


def test_source_route_on_engine_send():
    from repro.topology.torus import Direction

    cluster, engines = _engines(dims=(3, 3), wrap=True)
    sim = cluster.sim
    route = (Direction(1, +1).port, Direction(0, +1).port)
    recv = engines[4].irecv(0, tag=1, context=1, nbytes=256)
    send = engines[0].isend(4, tag=1, context=1, nbytes=64,
                            data="routed", route=route)
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_data == "routed"
