"""Wire protocol and result-cache unit tests (no processes spawned)."""

import pytest

from repro.service.cache import CacheIntegrityError, ResultCache
from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    error_response,
    ok_response,
    overloaded_response,
)


# -- JobSpec ------------------------------------------------------------------
def test_make_sorts_args_so_order_never_matters():
    a = JobSpec.make("point", "via_latency", nbytes=64, repeats=5)
    b = JobSpec.make("point", "via_latency", repeats=5, nbytes=64)
    assert a == b
    assert a.cache_key() == b.cache_key()


def test_wire_roundtrip_preserves_identity():
    spec = JobSpec.make("figure", "fig2", quick=True, seed=3)
    assert JobSpec.from_wire(spec.to_wire()) == spec


def test_cache_key_covers_seed_and_args():
    base = JobSpec.make("point", "via_latency", nbytes=64)
    assert base.cache_key() != JobSpec.make(
        "point", "via_latency", nbytes=128).cache_key()
    assert base.cache_key() != JobSpec.make(
        "point", "via_latency", nbytes=64, seed=1).cache_key()
    assert base.cache_key() == JobSpec.make(
        "point", "via_latency", nbytes=64).cache_key()


def test_request_deadline_is_not_part_of_the_job_identity():
    # deadline_s is a *request* field; JobSpec has no slot for it, so
    # two clients asking for the same job with different patience
    # always share one cache entry.
    wire = JobSpec.make("point", "via_latency", nbytes=64).to_wire()
    assert "deadline_s" not in wire


@pytest.mark.parametrize("bad", [
    None,
    "not an object",
    {"kind": "warp-drive"},
    {"kind": "point", "name": 42},
    {"kind": "point", "name": "x", "seed": "zero"},
    {"kind": "point", "name": "x", "seed": True},
    {"kind": "point", "name": "x", "args": "not an object"},
    {"kind": "point", "name": "x", "args": {"v": [1, 2]}},
    {"kind": "point", "name": "x", "args": {1: "non-string key"}},
])
def test_from_wire_rejects_malformed_jobs(bad):
    with pytest.raises(ProtocolError):
        JobSpec.from_wire(bad)


def test_labels_and_arg_lookup():
    spec = JobSpec.make("point", "via_latency", nbytes=64)
    assert spec.label() == "point:via_latency"
    assert JobSpec.make("trace").label() == "trace"
    assert spec.arg("nbytes") == 64
    assert spec.arg("missing", "fallback") == "fallback"


# -- response shapes ----------------------------------------------------------
def test_response_builders_shapes():
    ok = ok_response("r1", "k" * 64, {"value": 1}, "hit", attempts=0,
                     elapsed_s=0.001)
    assert ok["status"] == "ok" and ok["cache"] == "hit"
    err = error_response("r2", "WorkerCrashed", "boom", retriable=True,
                         attempts=3, key="k" * 64)
    assert err["status"] == "error" and err["retriable"] is True
    shed = overloaded_response("r3", 0.05)
    assert shed["status"] == "overloaded" and shed["retriable"] is True
    assert shed["retry_after_s"] == 0.05


# -- ResultCache --------------------------------------------------------------
def test_cache_roundtrip_returns_fresh_decodes():
    cache = ResultCache()
    cache.put("k1", {"value": [1, 2, 3]})
    first = cache.get("k1")
    first["value"].append(99)  # mutating a result must not poison it
    assert cache.get("k1") == {"value": [1, 2, 3]}


def test_cache_put_is_idempotent_but_guards_integrity():
    cache = ResultCache()
    cache.put("k1", {"value": 1})
    cache.put("k1", {"value": 1})  # identical: fine
    assert len(cache) == 1
    with pytest.raises(CacheIntegrityError):
        cache.put("k1", {"value": 2})


def test_cache_lru_eviction():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # touch "a" so "b" is the LRU entry
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_cache_snapshot_counts_hits_and_misses():
    cache = ResultCache(capacity=8)
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    snap = cache.snapshot()
    assert snap["entries"] == 1
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert snap["capacity"] == 8
