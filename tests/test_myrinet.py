"""Tests for the Myrinet comparator: fabric, time model, MyriComm."""

import numpy as np
import pytest

from repro.cluster.myrinet_world import MyriWorld
from repro.errors import ConfigurationError
from repro.hw.myrinet import MyrinetFabric, MyrinetTimeModel
from repro.hw.params import MyrinetParams
from repro.sim import Simulator


def test_time_model_decomposition():
    model = MyrinetTimeModel()
    params = model.params
    assert model.time(0) == pytest.approx(
        params.host_overhead + model.latency(3)
    )
    # Bandwidth asymptotes to the link rate.
    assert model.bandwidth(10_000_000) == pytest.approx(
        params.bandwidth, rel=0.01
    )


def test_latency_grows_with_hops():
    model = MyrinetTimeModel()
    assert model.latency(3) > model.latency(1)


def test_fabric_delivers(sim):
    fabric = MyrinetFabric(sim, 8)
    received = []
    fabric.set_receiver(3, lambda src, payload, nbytes: received.append(
        (src, payload, nbytes)
    ))

    def send():
        yield from fabric.send(0, 3, 1000, payload="hello")

    sim.spawn(send())
    sim.run()
    assert received == [(0, "hello", 1000)]


def test_fabric_rejects_loopback(sim):
    fabric = MyrinetFabric(sim, 4)

    def send():
        yield from fabric.send(1, 1, 10)

    process = sim.spawn(send())
    with pytest.raises(ConfigurationError):
        sim.run_until_complete(process)


def test_fabric_latency_magnitude(sim):
    fabric = MyrinetFabric(sim, 8)
    times = []
    fabric.set_receiver(1, lambda *_: times.append(sim.now))

    def send():
        yield from fabric.send(0, 1, 4)

    sim.spawn(send())
    sim.run()
    # Small message: ~GM latency, far below GigE's 18.5us.
    assert 5 < times[0] < 15


def test_myricomm_pt2pt():
    sim = Simulator()
    world = MyriWorld(sim, 4)
    comms = world.comms
    recv = comms[2].irecv(0, tag=5, nbytes=100)
    send = comms[0].isend(2, tag=5, nbytes=100, data="gm")
    sim.run_until_complete(send)
    sim.run_until_complete(recv)
    assert recv.received_data == "gm"
    assert recv.received_src == 0


def test_myricomm_unexpected_then_matched():
    sim = Simulator()
    world = MyriWorld(sim, 2)
    send = world.comms[0].isend(1, tag=9, nbytes=50, data="early")
    sim.run_until_complete(send)
    sim.run(until=sim.now + 100)
    recv = world.comms[1].irecv(0, tag=9, nbytes=50)
    sim.run_until_complete(recv)
    assert recv.received_data == "early"


def test_myricomm_allreduce():
    sim = Simulator()
    world = MyriWorld(sim, 8)
    results = []

    def program(comm):
        value = yield from comm.allreduce(nbytes=8,
                                          data=np.float64(comm.rank))
        results.append(float(value))

    processes = [sim.spawn(program(c)) for c in world.comms]
    for process in processes:
        sim.run_until_complete(process)
    assert results == [28.0] * 8


def test_myricomm_barrier_and_compute():
    sim = Simulator()
    world = MyriWorld(sim, 4)
    after = []

    def program(comm):
        yield from comm.compute(100.0 * comm.rank)
        yield from comm.barrier()
        after.append(sim.now)

    processes = [sim.spawn(program(c)) for c in world.comms]
    for process in processes:
        sim.run_until_complete(process)
    assert min(after) >= 300.0
