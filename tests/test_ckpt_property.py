"""Property-style checkpoint sweeps: many seeds, many fault shapes.

Two populations, matching the two checkpoint grains:

* **PDES crash/replay** — sharded runs are fault-free by design (the
  builder rejects link faults under PDES), so the property here is
  seeded crash-at-a-seeded-window bit-identity, with both fast-path
  states covered (the session default keeps the fast path engaged).
* **Campaign resume** — the sequential engine owns fault injection, so
  item-level ``run_resumable`` is swept across loss, link-flap, and
  node-crash configurations: crash after item 0, resume, and the
  reassembled results must equal a straight uninterrupted run.

Plus the restore guards: a store written under a different config
hash, code version, topology, or with tampered digests must refuse to
resume rather than produce plausible-but-wrong state.
"""

import pickle
import zlib

import pytest

from repro import fastpath
from repro.ckpt import CheckpointStore, SimulatedCrash, run_resumable
from repro.errors import CheckpointMismatchError
from repro.hw import faults
from repro.pdes import CheckpointPolicy, run_sharded

SEEDS = list(range(10))


def _mix(*parts) -> int:
    salt = ":".join(str(p) for p in parts)
    return zlib.crc32(f"ckpt-property:{salt}".encode()) & 0x7FFFFFFF


# -- PDES crash/replay determinism --------------------------------------

DIMS = (2, 2, 2)


@pytest.fixture(scope="module")
def pdes_reference():
    return run_sharded(DIMS, workload="aggregate", nshards=2)


class TestPdesCrashReplaySweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_crash_is_bit_identical(self, pdes_reference, seed):
        ref = pdes_reference
        victim = _mix("victim", seed) % 2
        window = _mix("window", seed) % ref.windows
        result = run_sharded(
            DIMS, workload="aggregate", nshards=2,
            checkpoint=CheckpointPolicy(every=16,
                                        chaos_kill=(victim, window)),
        )
        assert result.recoveries == 1
        assert repr(result.table) == repr(ref.table)
        assert result.per_rank == ref.per_rank
        assert result.windows == ref.windows

    def test_crash_replay_with_fastpath_off(self):
        # The sweep above runs under the session default (fast path
        # on); pin the slow path once so both event-loop variants are
        # inside the replay-determinism contract.
        with fastpath.force(False):
            ref = run_sharded(DIMS, workload="aggregate", nshards=2)
            result = run_sharded(
                DIMS, workload="aggregate", nshards=2,
                checkpoint=CheckpointPolicy(
                    every=16, chaos_kill=(1, ref.windows // 2)),
            )
        assert result.recoveries == 1
        assert repr(result.table) == repr(ref.table)
        assert result.per_rank == ref.per_rank


# -- campaign resume under faults ---------------------------------------

def _campaign(seed: int):
    """(items, run_item) for this seed's fault flavor.

    Loss and flap exercise the sequential engine's fault injectors
    through the VIA latency microbench; crash runs a full chaos
    campaign (node death mid-collective) as one resumable item.
    """
    flavor = ("loss", "flap", "crash")[seed % 3]
    if flavor == "crash":
        from repro.bench.chaos import campaign_row, run_campaign

        scenario = ("pt2pt", "bcast")[seed % 2]

        def run_item(item, _index):
            faults.clear_registry()
            try:
                return campaign_row(run_campaign(item, seed,
                                                 scenario=scenario))
            finally:
                faults.clear_registry()

        return [0, 1], run_item

    from repro.bench.microbench import via_latency

    if flavor == "loss":
        params = faults.FaultParams(seed=seed,
                                    loss_rate=0.02 + 0.01 * (seed % 3))
    else:
        params = faults.FaultParams(seed=seed, flap_period=400.0,
                                    flap_down=40.0)

    def run_item(item, _index):
        faults.set_ambient(params)
        try:
            return via_latency(nbytes=item, repeats=3)
        finally:
            faults.set_ambient(None)
            faults.clear_registry()

    return [64, 1024, 16384], run_item


class TestCampaignResumeUnderFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_resume_equals_straight_run(self, seed, tmp_path):
        items, run_item = _campaign(seed)
        straight = [run_item(item, index)
                    for index, item in enumerate(items)]

        store = CheckpointStore(tmp_path)
        key = f"prop-{seed:02d}"
        with pytest.raises(SimulatedCrash):
            run_resumable(key, items, run_item, store, crash_after=0)

        resumed = run_resumable(key, items, run_item, store)
        assert resumed.results == straight
        assert resumed.loaded >= 1
        assert resumed.computed == len(items) - resumed.loaded


# -- restore guards -----------------------------------------------------

class TestRestoreGuards:
    def test_open_key_rejects_config_hash_drift(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_key("guarded", "item", config_hash="hash-a")
        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            store.open_key("guarded", "item", config_hash="hash-b")

    def test_open_key_rejects_code_version_drift(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_key("versioned", "item", config_hash="hash-a")
        with pytest.raises(CheckpointMismatchError,
                           match="code_version"):
            store.open_key("versioned", "item", config_hash="hash-a",
                           code_version="0.0.0+stale")

    def test_resume_rejects_different_topology_under_same_key(
            self, tmp_path):
        store = CheckpointStore(tmp_path)
        run_sharded((2, 2, 2), workload="aggregate", nshards=2,
                    checkpoint=CheckpointPolicy(every=16, store=store,
                                                key="pinned"))
        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            run_sharded((4, 2, 2), workload="aggregate", nshards=2,
                        checkpoint=CheckpointPolicy(
                            every=16, store=store, key="pinned",
                            resume=True))

    def test_resume_rejects_tampered_state_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        full = run_sharded((2, 2, 2), workload="aggregate", nshards=2,
                           checkpoint=CheckpointPolicy(every=16,
                                                       store=store))
        key = full.ckpt_key
        newest = store.windows(key)[-1]
        path = tmp_path / key / f"window-{newest:06d}.pkl"
        data = pickle.loads(path.read_bytes())
        data["digests"] = [(count, "0" * 64)
                           for count, _digest in data["digests"]]
        path.write_bytes(pickle.dumps(data, protocol=4))
        with pytest.raises(CheckpointMismatchError):
            run_sharded((2, 2, 2), workload="aggregate", nshards=2,
                        checkpoint=CheckpointPolicy(
                            every=16, store=store, resume=True))
