"""Tests for the collective spanning trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.tree import (
    binomial_children,
    binomial_parent,
    dimension_order_children,
    dimension_order_parent,
    tree_depth,
)
from repro.topology import Torus

DIMS = st.sampled_from([(4,), (8,), (3, 3), (4, 4), (2, 4, 4), (4, 8, 8)])


@given(DIMS, st.data())
@settings(max_examples=40, deadline=None)
def test_every_node_reaches_root(dims, data):
    torus = Torus(dims)
    root = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    for rank in torus.ranks():
        node = rank
        hops = 0
        while node != root:
            node = dimension_order_parent(torus, root, node)
            hops += 1
            assert hops <= torus.diameter()


@given(DIMS, st.data())
@settings(max_examples=40, deadline=None)
def test_children_inverse_of_parent(dims, data):
    torus = Torus(dims)
    root = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    for rank in torus.ranks():
        for child in dimension_order_children(torus, root, rank):
            assert dimension_order_parent(torus, root, child) == rank


@given(DIMS)
@settings(max_examples=20, deadline=None)
def test_tree_is_spanning(dims):
    torus = Torus(dims)
    root = 0
    covered = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in dimension_order_children(torus, root, node):
            assert child not in covered
            covered.add(child)
            frontier.append(child)
    assert covered == set(torus.ranks())


def test_depth_matches_paper_formula():
    # ceil(4/2) + ceil(8/2) + ceil(8/2) = 10 steps on the 4x8x8.
    assert tree_depth(Torus((4, 8, 8)), 0) == 10
    assert tree_depth(Torus((8, 8)), 0) == 8


def test_parent_axis_ordering():
    # The tree fills x first, then y, then z: a node differing only in
    # x hangs off the x line; differing in z receives along z.
    torus = Torus((4, 4, 4))
    x_node = torus.rank((1, 0, 0))
    z_node = torus.rank((2, 3, 1))
    assert dimension_order_parent(torus, 0, x_node) == torus.rank((0, 0, 0))
    assert dimension_order_parent(torus, 0, z_node) == torus.rank((2, 3, 0))


def test_binomial_roundtrip():
    size = 13
    for root in (0, 5):
        for rank in range(size):
            for child in binomial_children(size, root, rank):
                assert binomial_parent(size, root, child) == rank


def test_binomial_spanning():
    size, root = 16, 3
    covered = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in binomial_children(size, root, node):
            assert child not in covered
            covered.add(child)
            frontier.append(child)
    assert covered == set(range(size))


def test_binomial_root_has_log_children():
    assert len(binomial_children(16, 0, 0)) == 4
    assert binomial_parent(16, 0, 0) is None
