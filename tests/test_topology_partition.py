"""Tests for the OPT region partition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import Torus, partition_regions
from repro.topology.partition import region_send_order

DIMS = st.sampled_from([(4,), (8,), (3, 3), (8, 8), (2, 3, 4), (4, 4, 4)])


@given(DIMS, st.data())
@settings(max_examples=40, deadline=None)
def test_partition_valid_for_any_root(dims, data):
    torus = Torus(dims)
    root = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    partition = partition_regions(torus, root)
    partition.validate()  # raises on any violation
    covered = set()
    for members in partition.regions.values():
        covered.update(members)
    assert covered == set(torus.ranks()) - {root}


@given(DIMS)
@settings(max_examples=20, deadline=None)
def test_partition_roughly_balanced(dims):
    torus = Torus(dims)
    partition = partition_regions(torus, 0)
    # "partitioned into roughly equal-size regions" (section 5.2); the
    # greedy assignment gets within a couple of nodes on any torus.
    assert partition.imbalance() <= 2


def test_partition_exactly_balanced_on_paper_meshes():
    for dims in ((8, 8), (4, 8, 8)):
        partition = partition_regions(Torus(dims), 0)
        assert partition.imbalance() <= 1


def test_routes_start_on_region_link():
    torus = Torus((8, 8))
    partition = partition_regions(torus, 0)
    for direction, members in partition.regions.items():
        for rank in members:
            assert partition.routes[rank][0].direction == direction


def test_routes_are_minimal():
    torus = Torus((4, 8, 8))
    partition = partition_regions(torus, 0)
    for rank, route in partition.routes.items():
        assert len(route) == torus.distance(0, rank)


def test_region_send_order_is_furthest_first():
    torus = Torus((8, 8))
    partition = partition_regions(torus, 0)
    for members in region_send_order(partition).values():
        distances = [torus.distance(0, rank) for rank in members]
        assert distances == sorted(distances, reverse=True)


def test_paper_cluster_partition():
    torus = Torus((4, 8, 8))
    partition = partition_regions(torus, 0)
    assert partition.num_links == 6
    assert partition.max_region_size() == 43  # ceil(255/6)
    assert partition.min_region_size() == 42


def test_bad_root_rejected():
    with pytest.raises(TopologyError):
        partition_regions(Torus((4, 4)), 99)
