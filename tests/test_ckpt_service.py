"""Checkpoint/restart wired through the service layer.

Bottom-up: ``jobs.execute`` resumes pdes/chaos jobs from the process
default store with bit-identical payloads (telemetry stays out of
band in ``LAST_RUN_META``); malformed checkpoint knobs are rejected as
``ProtocolError``; a fleet worker SIGKILLed mid-campaign resumes on
retry without recomputing finished items; retry-exhausted router
errors name the newest durable checkpoint; and the hang surfaces
(``HangError``, ``hang_report``) quote it too.
"""

import asyncio
import signal

import pytest

from repro.ckpt import CheckpointStore, context as ckpt_context, \
    set_default_root
from repro.service.jobs import LAST_RUN_META, execute
from repro.service.protocol import JobSpec, ProtocolError

PDES = JobSpec.make("pdes", "aggregate", dims="2x2x2", nshards=2,
                    ckpt_every=8)
CHAOS = JobSpec.make("chaos", campaigns=2, seed=3)


@pytest.fixture
def default_root(tmp_path):
    set_default_root(tmp_path)
    try:
        yield tmp_path
    finally:
        set_default_root(None)


# -- jobs layer: resume with bit-identical payloads ---------------------

class TestJobResume:
    def test_pdes_job_resumes_from_window_store(self, default_root):
        first = execute(PDES)
        meta1 = dict(LAST_RUN_META)
        assert meta1["ckpt_resumed_from"] is None
        assert meta1["ckpt_windows_written"] >= 1

        second = execute(PDES)
        meta2 = dict(LAST_RUN_META)
        assert second == first, "resumed payload must be bit-identical"
        assert meta2["ckpt_resumed_from"] is not None
        # Resume starts at the newest barrier: at most one capture
        # interval of windows is recomputed.
        assert meta2["ckpt_new_windows"] <= 8

    def test_chaos_job_loads_completed_campaigns(self, default_root):
        first = execute(CHAOS)
        meta1 = dict(LAST_RUN_META)
        assert meta1 == {"ckpt_loaded": 0, "ckpt_computed": 2}

        second = execute(CHAOS)
        meta2 = dict(LAST_RUN_META)
        assert second == first
        assert meta2 == {"ckpt_loaded": 2, "ckpt_computed": 0}

    def test_without_store_jobs_run_plain(self):
        payload = execute(CHAOS)
        assert LAST_RUN_META == {"ckpt_loaded": 0, "ckpt_computed": 2}
        assert payload["kind"] == "chaos"


class TestSpecValidation:
    @pytest.mark.parametrize("spec", [
        JobSpec.make("pdes", "aggregate", dims="bogus"),
        JobSpec.make("pdes", "aggregate", dims="4x0x2"),
        JobSpec.make("pdes", "aggregate", nshards=0),
        JobSpec.make("pdes", "aggregate", ckpt_every=-1),
        JobSpec.make("pdes", "aggregate", ckpt_every=True),
        JobSpec.make("chaos", campaigns=0),
        JobSpec.make("chaos", campaigns=1, scenario="nonsense"),
    ])
    def test_malformed_checkpoint_knobs_rejected(self, spec):
        with pytest.raises(ProtocolError):
            execute(spec)


# -- fleet: a killed worker resumes, not recomputes ---------------------

class TestFleetCrashResume:
    def test_sigkilled_worker_resumes_campaign(self):
        from repro.service.cache import ResultCache
        from repro.service.fleet import Fleet
        from repro.service.router import Router, RouterConfig

        spec = JobSpec.make("chaos", campaigns=3, seed=3)

        async def scenario():
            killed = []

            def kill_once_after_first_item(fleet, handle, job):
                # Chaos hook: watch the worker's own store and SIGKILL
                # it the moment campaign item 0 persists — a crash at
                # a known point strictly inside the campaign.
                if killed:
                    return
                killed.append(handle.pid)
                store = CheckpointStore(fleet.ckpt_dir)
                key = job.cache_key()

                async def watch():
                    while True:
                        if store.get_item(key, 0) is not None:
                            fleet._signal(handle, signal.SIGKILL)
                            return
                        await asyncio.sleep(0.05)

                asyncio.get_running_loop().create_task(watch())

            fleet = Fleet(1, on_dispatch=kill_once_after_first_item)
            router = Router(fleet, ResultCache(),
                            RouterConfig(max_attempts=3,
                                         backoff_base_s=0.01))
            await fleet.start()
            try:
                response = await router.submit(
                    {"id": 1, "job": spec.to_wire()})
                assert response["status"] == "ok"
                assert response["attempts"] == 2
                assert fleet.counters["crashes"] >= 1
                # The retry loaded the persisted item instead of
                # recomputing it — crash recovery became resume.
                assert fleet.counters["ckpt_loaded"] >= 1
                assert fleet.counters["ckpt_resumes"] >= 1
                total = (fleet.counters["ckpt_loaded"]
                         + fleet.counters["ckpt_computed"])
                assert total >= 3 + fleet.counters["ckpt_loaded"] - 1
            finally:
                await fleet.stop()

        asyncio.run(scenario())

    def test_retry_exhausted_error_names_latest_checkpoint(self):
        from repro.service.cache import ResultCache
        from repro.service.fleet import Fleet
        from repro.service.router import Router, RouterConfig

        chaos = JobSpec.make("chaos", campaigns=3, seed=5)
        point = JobSpec.make("point", "via_latency", nbytes=4)

        async def scenario():
            def kill_after_first_item(fleet, handle, job):
                store = CheckpointStore(fleet.ckpt_dir)
                key = job.cache_key()

                async def watch():
                    while True:
                        if job.kind != "chaos" \
                                or store.get_item(key, 0) is not None:
                            fleet._signal(handle, signal.SIGKILL)
                            return
                        await asyncio.sleep(0.05)

                asyncio.get_running_loop().create_task(watch())

            fleet = Fleet(1, on_dispatch=kill_after_first_item)
            router = Router(fleet, ResultCache(),
                            RouterConfig(max_attempts=2,
                                         backoff_base_s=0.01))
            await fleet.start()
            try:
                response = await router.submit(
                    {"id": 1, "job": chaos.to_wire()})
                assert response["status"] == "error"
                assert response["retriable"] is True
                # The structured error points the client at the
                # durable progress a resubmit would resume from.
                checkpoint = response["checkpoint"]
                assert checkpoint is not None
                assert checkpoint["kind"] == "item"
                assert checkpoint["index"] >= 0
                assert checkpoint["id"].endswith(
                    f"item-{checkpoint['index']:06d}")

                bare = await router.submit(
                    {"id": 2, "job": point.to_wire()})
                assert bare["status"] == "error"
                # A point op never checkpoints: nothing to advertise
                # (the wire field is omitted entirely).
                assert bare.get("checkpoint") is None
            finally:
                await fleet.stop()

        asyncio.run(scenario())


# -- hang surfaces quote the newest checkpoint --------------------------

class TestHangSurfaces:
    def test_hang_report_names_latest_checkpoint(self):
        from repro.cluster.builder import build_mesh

        cluster = build_mesh((2, 2))
        ckpt_context.note("a" * 64, "window", 12)
        try:
            report = cluster.hang_report()
        finally:
            ckpt_context.clear()
        assert f"latest checkpoint: {'a' * 16}/window-000012" in report
        assert "resume picks up after window 12" in report
        assert "latest checkpoint" not in cluster.hang_report()

    def test_hang_error_carries_checkpoint_fields(self):
        from repro.cluster.builder import build_mesh
        from repro.cluster.process_api import build_world, run_mpi
        from repro.errors import HangError
        from repro.hw.faults import NodeFaultSpec

        cluster = build_mesh(
            (2, 2), stack="via",
            node_faults=[NodeFaultSpec(rank=1, crash_at=10_000_000.0)])
        comms = build_world(cluster)

        def program(comm):
            if comm.rank == 0:
                yield from comm.irecv(1, 99, 64).wait()  # never sent
            return "done"

        ckpt_context.note("b" * 64, "item", 4)
        try:
            with pytest.raises(HangError) as excinfo:
                run_mpi(cluster, program, comms=comms,
                        limit=10_000_000.0)
        finally:
            ckpt_context.clear()
        assert excinfo.value.checkpoint_id == f"{'b' * 16}/item-000004"
        assert excinfo.value.checkpoint_index == 4
        assert "latest checkpoint:" in str(excinfo.value)


# -- bench profile plumbing ---------------------------------------------

class TestOverheadProfile:
    def test_profile_section_shape(self):
        from repro.bench.ckpt import overhead_profile, render_profile

        section = overhead_profile(every=64, repeats=2,
                                   configs=(((2, 2, 2), 2),))
        assert section["every"] == 64
        (row,) = section["configs"]
        assert row["dims"] == [2, 2, 2] and row["nshards"] == 2
        assert row["tables_identical"] is True
        assert section["all_tables_identical"] is True
        assert isinstance(section["worst_overhead_pct"], float)
        rendered = render_profile(section)
        assert "worst overhead" in rendered
        assert "budget <5%" in rendered
