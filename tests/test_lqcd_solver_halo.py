"""Tests for the CG solver and the parallel halo exchange."""

import numpy as np
import pytest

from repro.cluster import build_mesh, run_mpi
from repro.lqcd.dslash import WilsonDslash
from repro.lqcd.halo import (
    HaloExchanger,
    field_planes,
    install_planes,
)
from repro.lqcd.lattice import LocalLattice
from repro.lqcd.solver import cg_solve


def test_cg_converges_and_solution_verifies():
    dslash = WilsonDslash(LocalLattice(4, 4, 4, 4), mass=0.8,
                          rng=np.random.default_rng(21))
    b = dslash.random_field(np.random.default_rng(22))
    result = cg_solve(dslash, b, tol=1e-9, max_iters=400)
    assert result.converged
    # Verify D^dagger D x == b directly.
    residual = dslash.normal_op(result.solution)
    own = (slice(1, -1),) * 3
    rel = (np.linalg.norm(residual[own] - b[own])
           / np.linalg.norm(b[own]))
    assert rel < 1e-7


def test_cg_zero_rhs_trivial():
    dslash = WilsonDslash(LocalLattice(2, 2, 2, 2))
    result = cg_solve(dslash, dslash.zeros_field())
    assert result.converged
    assert result.iterations == 0


def test_cg_iterations_bounded_by_heavier_mass():
    rng = np.random.default_rng(23)
    light = WilsonDslash(LocalLattice(4, 4, 4, 4), mass=0.3, rng=rng)
    heavy = WilsonDslash(LocalLattice(4, 4, 4, 4), mass=2.0, rng=rng)
    b = light.random_field(np.random.default_rng(24))
    light_result = cg_solve(light, b, tol=1e-8)
    heavy_result = cg_solve(heavy, b, tol=1e-8)
    # Better conditioned (heavier mass) converges faster.
    assert heavy_result.iterations < light_result.iterations


def test_field_planes_roundtrip_locally():
    """Sending planes to yourself reproduces the periodic fill."""
    dslash = WilsonDslash(LocalLattice(4, 4, 4, 4),
                          rng=np.random.default_rng(25))
    field = dslash.random_field(np.random.default_rng(26))
    reference = field.copy()
    dslash.fill_halo_periodic(reference)
    planes = field_planes(dslash, field)
    # On a 1-node periodic machine the plane sent toward +x comes back
    # into our own -x halo... i.e. received[(axis, -1)] is the peer's
    # +1-face = our own +1-face.
    received = {
        (axis, -sign): planes[(axis, sign)]
        for axis in range(3) for sign in (+1, -1)
    }
    install_planes(dslash, field, received)
    assert np.allclose(field, reference)


def test_parallel_halo_exchange_two_nodes():
    """Two nodes on a ring exchange x-boundary planes correctly."""
    cluster = build_mesh((2,), wrap=True)
    local = LocalLattice(4, 4, 4, 4)
    fields = {}
    dslashes = {}

    def program(comm):
        dslash = WilsonDslash(local, rng=np.random.default_rng(30))
        field = dslash.random_field(
            np.random.default_rng(100 + comm.rank)
        )
        dslashes[comm.rank] = dslash
        fields[comm.rank] = field
        torus = comm.torus
        from repro.topology.torus import Direction

        # Only axis 0 is distributed on a (2,) machine; for the other
        # axes exchange with ourselves is not possible, so restrict the
        # exchanger to axis 0 and wrap the rest locally.
        neighbors = {
            (0, +1): torus.neighbor(comm.rank, Direction(0, +1)),
            (0, -1): torus.neighbor(comm.rank, Direction(0, -1)),
        }
        exchanger = HaloExchanger(comm, neighbors, local)
        planes = {
            key: field_planes(dslash, field)[key]
            for key in neighbors
        }
        received = yield from exchanger.exchange(planes)
        install_planes(dslash, field, received)
        return None

    run_mpi(cluster, program)
    # Node 0's +x halo shell must equal node 1's -x boundary face.
    d0, d1 = dslashes[0], dslashes[1]
    f0, f1 = fields[0], fields[1]
    assert np.allclose(
        f0[d0.halo_slice(0, +1)], f1[d1.boundary_slice(0, -1)]
    )
    assert np.allclose(
        f1[d1.halo_slice(0, -1)], f0[d0.boundary_slice(0, +1)]
    )


def test_halo_timing_mode_counts_bytes():
    cluster = build_mesh((2, 2, 2))
    stats = {}

    def program(comm):
        from repro.topology.torus import Direction

        local = LocalLattice(4, 4, 4, 4)
        torus = comm.torus
        neighbors = {
            (axis, sign): torus.neighbor(comm.rank,
                                         Direction(axis, sign))
            for axis in range(3) for sign in (+1, -1)
        }
        exchanger = HaloExchanger(comm, neighbors, local)
        yield from exchanger.exchange(None)
        stats[comm.rank] = exchanger.stats
        return None

    run_mpi(cluster, program)
    local = LocalLattice(4, 4, 4, 4)
    expected = sum(
        local.surface_sites(axis) * 48 for axis in range(3)
    ) * 2
    assert stats[0]["bytes"] == expected
