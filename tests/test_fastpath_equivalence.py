"""The fast path must be invisible in every reproduced number.

The simulator carries two execution strategies (see
:mod:`repro.fastpath`): the per-event reference path and the fast path
(zero-delay queue bypass, callback-fused transfers, and the frame-train
bulk transmit of :mod:`repro.hw.fastpath`).  These tests pin the
contract that both produce *bit-identical* experiment tables — ``repr``
equality of every cell, not approximate agreement — and that the fast
path is deterministic run-to-run.

Figure 2 exercises the point-to-point latency/bandwidth paths where
frame trains engage; figure 3 the aggregated-bandwidth runs where the
engagement guard must refuse and fall back; figure 5 the multi-hop
collectives mixing both regimes.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.bench.harness import run_experiment


def _table(name: str, fast: bool):
    with fastpath.force(fast):
        result = run_experiment(name, quick=True)
    return [[repr(cell) for cell in row] for row in result.rows]


@pytest.mark.parametrize("name", ["fig2", "fig3", "fig5"])
def test_tables_bit_identical(name):
    reference = _table(name, fast=False)
    fast = _table(name, fast=True)
    assert fast == reference


def test_fastpath_deterministic():
    first = _table("fig2", fast=True)
    second = _table("fig2", fast=True)
    assert first == second
