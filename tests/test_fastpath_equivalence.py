"""The fast path must be invisible in every reproduced number.

The simulator carries two execution strategies (see
:mod:`repro.fastpath`): the per-event reference path and the fast path
(zero-delay queue bypass, callback-fused transfers, and the frame-train
bulk transmit of :mod:`repro.hw.fastpath`).  These tests pin the
contract that both produce *bit-identical* experiment tables — ``repr``
equality of every cell, not approximate agreement — and that the fast
path is deterministic run-to-run.

Figure 2 exercises the point-to-point latency/bandwidth paths where
frame trains engage; figure 3 the aggregated-bandwidth runs where the
engagement guard must refuse and fall back; figure 5 the multi-hop
collectives mixing both regimes.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.bench.harness import run_experiment


def _table(name: str, fast: bool):
    with fastpath.force(fast):
        result = run_experiment(name, quick=True)
    return [[repr(cell) for cell in row] for row in result.rows]


@pytest.mark.parametrize("name", ["fig2", "fig3", "fig5"])
def test_tables_bit_identical(name):
    reference = _table(name, fast=False)
    fast = _table(name, fast=True)
    assert fast == reference


def test_fastpath_deterministic():
    first = _table("fig2", fast=True)
    second = _table("fig2", fast=True)
    assert first == second


def _stream(gige_params, nbytes=200_000):
    """One-way bulk stream over a 2-node pair; returns the cluster."""
    from repro.hw.params import GigEParams
    from repro.via.descriptors import RecvDescriptor, SendDescriptor
    from tests.conftest import make_via_pair

    cluster, (vi0, r0), (vi1, r1) = make_via_pair(
        gige_params=gige_params
    )
    sim = cluster.sim

    def receiver():
        for _ in range(8):
            vi1.post_recv(RecvDescriptor(r1, 0, nbytes))
        for _ in range(8):
            yield from vi1.recv_wait()

    def sender():
        for _ in range(8):
            yield from vi0.post_send(SendDescriptor(r0, 0, nbytes))
            yield from vi0.send_wait()

    sim.spawn(receiver())
    process = sim.spawn(sender())
    sim.run_until_complete(process)
    sim.run()
    return cluster


def _total_trains(cluster):
    return sum(
        port.stats["trains"]
        for node in cluster.nodes for port in node.ports.values()
    )


@pytest.mark.parametrize("fault_kwargs", [
    {"loss_rate": 0.01},
    {"flap_period": 500.0, "flap_down": 50.0},
    {"corrupt_rate": 0.02},
], ids=["loss", "flap", "corrupt"])
def test_trains_disengage_on_fault_capable_links(fault_kwargs):
    """Any fault knob makes links fault-capable; the frame-train plan
    schedules arrivals unconditionally, so it must refuse them."""
    from repro.hw.faults import FaultParams
    from repro.hw.params import GigEParams

    with fastpath.force(True):
        cluster = _stream(GigEParams(
            faults=FaultParams(seed=3, **fault_kwargs)
        ))
    assert _total_trains(cluster) == 0


def test_trains_engage_on_healthy_links():
    """Control: the same workload on a clean wire does use trains, so
    the disengagement test above is not vacuously passing."""
    from repro.hw.params import GigEParams

    with fastpath.force(True):
        cluster = _stream(GigEParams())
    assert _total_trains(cluster) > 0
