"""Tests for Store and FilterStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import FilterStore, Store
from tests.conftest import run


def test_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_put_get_roundtrip(sim):
    store = Store(sim)

    def proc():
        yield store.put("item")
        value = yield store.get()
        return value

    assert run(sim, proc()) == "item"


def test_get_blocks_until_put(sim):
    store = Store(sim)
    log = []

    def consumer():
        value = yield store.get()
        log.append((value, sim.now))

    def producer():
        yield sim.timeout(5)
        yield store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert log == [("late", 5)]


def test_put_blocks_at_capacity(sim):
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(10)
        yield store.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert log == [("put1", 0), ("put2", 10)]


def test_fifo_ordering(sim):
    store = Store(sim)

    def proc():
        for index in range(5):
            yield store.put(index)
        out = []
        for _ in range(5):
            out.append((yield store.get()))
        return out

    assert run(sim, proc()) == [0, 1, 2, 3, 4]


def test_try_get(sim):
    store = Store(sim)
    assert store.try_get() is None
    store.items.append("x")
    assert store.try_get() == "x"


def test_try_get_with_waiters_rejected(sim):
    store = Store(sim)
    store.get()  # a queued getter
    with pytest.raises(SimulationError):
        store.try_get()


def test_level_and_stats(sim):
    store = Store(sim)

    def proc():
        yield store.put("a")
        yield store.put("b")
        yield store.get()
        return store.level

    assert run(sim, proc()) == 1
    assert store.stats["puts"] == 2
    assert store.stats["gets"] == 1
    assert store.stats["max_level"] == 2


def test_filter_store_selects_matching(sim):
    store = FilterStore(sim)

    def proc():
        yield store.put(("b", 2))
        yield store.put(("a", 1))
        value = yield store.get(lambda item: item[0] == "a")
        return value

    assert run(sim, proc()) == ("a", 1)


def test_filter_store_blocked_getter_does_not_stall_others(sim):
    store = FilterStore(sim)
    log = []

    def picky():
        value = yield store.get(lambda item: item == "rare")
        log.append(("picky", value, sim.now))

    def easy():
        value = yield store.get()
        log.append(("easy", value, sim.now))

    def producer():
        yield sim.timeout(1)
        yield store.put("common")
        yield sim.timeout(1)
        yield store.put("rare")

    sim.spawn(picky())
    sim.spawn(easy())
    sim.spawn(producer())
    sim.run()
    assert ("easy", "common", 1) in log
    assert ("picky", "rare", 2) in log


def test_filter_store_plain_get_is_fifo(sim):
    store = FilterStore(sim)

    def proc():
        yield store.put(1)
        yield store.put(2)
        first = yield store.get()
        second = yield store.get()
        return (first, second)

    assert run(sim, proc()) == (1, 2)
