"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.builder import build_mesh
from repro.sim import Simulator
from repro.via.descriptors import RecvDescriptor, SendDescriptor


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Module-level fault state must never leak between tests.

    The injector registry and the ambient fault default are process
    globals (the bench CLI's convenience); a test that builds a faulty
    cluster or sets an ambient schedule and then fails would otherwise
    poison every later test's clusters.
    """
    from repro.hw import faults

    faults.clear_registry()
    faults.set_ambient(None)
    yield
    faults.clear_registry()
    faults.set_ambient(None)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """The telemetry plane is a process global (``telemetry.ACTIVE``);
    a test that enables it must not leave it on for later tests — the
    instrumented code paths would silently start recording."""
    from repro import telemetry

    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture
def sim():
    return Simulator()


def run(sim, generator, limit=None):
    """Spawn + run a process to completion, returning its value."""
    process = sim.spawn(generator)
    return sim.run_until_complete(process, limit=limit)


@pytest.fixture
def via_pair():
    """A connected VIA pair on a 2-node mesh.

    Returns (cluster, (vi0, region0), (vi1, region1)).
    """
    return make_via_pair()


def make_via_pair(hops: int = 1, size_hint: int = 1 << 21,
                  **cluster_kwargs):
    cluster = build_mesh((hops + 1,), wrap=False, stack="via",
                         **cluster_kwargs)
    sim = cluster.sim
    d0, d1 = cluster.nodes[0].via, cluster.nodes[hops].via
    t0, t1 = d0.create_protection_tag(), d1.create_protection_tag()
    vi0, vi1 = d0.create_vi(t0), d1.create_vi(t1)
    r0 = d0.register_memory_now(size_hint, t0)
    r1 = d1.register_memory_now(size_hint, t1)
    a = sim.spawn(d0.agent.connect_request(vi0, hops, "pair"))
    b = sim.spawn(d1.agent.connect_wait(vi1, "pair"))
    sim.run_until_complete(a)
    sim.run_until_complete(b)
    return cluster, (vi0, r0), (vi1, r1)


def via_pingpong_rtt2(cluster, end0, end1, nbytes=4, repeats=10):
    """Half round-trip time between two connected VIs."""
    (vi0, r0), (vi1, r1) = end0, end1
    sim = cluster.sim
    out = {}

    def ponger():
        for _ in range(repeats):
            vi1.post_recv(RecvDescriptor(r1, 0, max(nbytes, 4096)))
            yield from vi1.recv_wait()
            yield from vi1.post_send(SendDescriptor(r1, 0, nbytes))

    def pinger():
        start = sim.now
        for _ in range(repeats):
            vi0.post_recv(RecvDescriptor(r0, 0, max(nbytes, 4096)))
            yield from vi0.post_send(SendDescriptor(r0, 0, nbytes))
            yield from vi0.recv_wait()
        out["rtt2"] = (sim.now - start) / repeats / 2

    sim.spawn(ponger())
    process = sim.spawn(pinger())
    sim.run_until_complete(process)
    return out["rtt2"]
