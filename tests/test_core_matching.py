"""Tests for MPI-style matching."""

from hypothesis import given, settings, strategies as st

from repro.core.matching import MatchQueue, match
from repro.core.message import ANY_SOURCE, ANY_TAG


def test_exact_match():
    assert match(3, 7, 1, 3, 7, 1)
    assert not match(3, 7, 1, 4, 7, 1)
    assert not match(3, 7, 1, 3, 8, 1)
    assert not match(3, 7, 1, 3, 7, 2)


def test_wildcards():
    assert match(ANY_SOURCE, 7, 1, 99, 7, 1)
    assert match(3, ANY_TAG, 1, 3, 42, 1)
    assert match(ANY_SOURCE, ANY_TAG, 1, 5, 5, 1)
    # Context never wildcards.
    assert not match(ANY_SOURCE, ANY_TAG, 1, 5, 5, 2)


@given(st.integers(0, 5), st.integers(0, 5), st.integers(0, 2))
@settings(max_examples=50)
def test_wildcard_is_superset_of_exact(src, tag, context):
    if match(src, tag, context, src, tag, context):
        assert match(ANY_SOURCE, tag, context, src, tag, context)
        assert match(src, ANY_TAG, context, src, tag, context)


def test_pop_first_match_fifo():
    queue = MatchQueue()
    queue.append("a", 1, 7, 0)
    queue.append("b", 1, 7, 0)
    assert queue.pop_first_match(1, 7, 0) == "a"
    assert queue.pop_first_match(1, 7, 0) == "b"
    assert queue.pop_first_match(1, 7, 0) is None


def test_pop_first_match_with_stored_wildcards():
    queue = MatchQueue()
    queue.append("wild", ANY_SOURCE, ANY_TAG, 0)
    assert queue.pop_first_match(9, 9, 0) == "wild"


def test_pop_by_probe_with_probe_wildcards():
    queue = MatchQueue()
    queue.append("m1", 2, 5, 0)
    queue.append("m2", 3, 5, 0)
    assert queue.pop_first_match_by_probe(ANY_SOURCE, 5, 0) == "m1"
    assert queue.pop_first_match_by_probe(3, ANY_TAG, 0) == "m2"


def test_non_matching_entries_skipped():
    queue = MatchQueue()
    queue.append("wrong-tag", 1, 8, 0)
    queue.append("right", 1, 7, 0)
    assert queue.pop_first_match(1, 7, 0) == "right"
    assert len(queue) == 1


def test_peek_does_not_remove():
    queue = MatchQueue()
    queue.append("x", 1, 1, 0)
    assert queue.peek_first_match(1, 1, 0) == "x"
    assert len(queue) == 1


def test_remove_specific_entry():
    queue = MatchQueue()
    queue.append("a", 1, 1, 0)
    queue.append("b", 1, 1, 0)
    assert queue.remove("b")
    assert not queue.remove("b")
    assert queue.entries() == ["a"]


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=1, max_size=20))
@settings(max_examples=50)
def test_fifo_order_preserved_per_key(pairs):
    """Entries with the same key pop in insertion order."""
    queue = MatchQueue()
    for index, (src, tag) in enumerate(pairs):
        queue.append((index, src, tag), src, tag, 0)
    popped = []
    while True:
        entry = queue.pop_first_match_by_probe(ANY_SOURCE, ANY_TAG, 0)
        if entry is None:
            break
        popped.append(entry[0])
    assert popped == sorted(popped)
