"""Fleet + router integration: real worker processes, full failure
matrix (crash / hang / deadline / deterministic failure / overload /
drain) and the exactly-once cache contract.

Worker processes use the "spawn" start method (about a second of boot
each), so tests share one fleet per scenario group instead of one per
assertion.
"""

import asyncio
import signal

from repro.service.cache import ResultCache
from repro.service.fleet import Fleet, FleetStopped
from repro.service.protocol import JobSpec
from repro.service.router import Router, RouterConfig

FAST = JobSpec.make("point", "via_latency", nbytes=4)
SLOW = JobSpec.make("figure", "fig2", quick=True)


def run(coro):
    return asyncio.run(coro)


# -- happy path: cache, coalescing, exactly-once ------------------------------
def test_cache_hit_serves_without_engine_dispatch():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        await fleet.start()
        try:
            first = await router.submit({"id": 1, "job": FAST.to_wire()})
            assert first["status"] == "ok" and first["cache"] == "miss"
            assert fleet.dispatches == 1

            second = await router.submit({"id": 2, "job": FAST.to_wire()})
            assert second["status"] == "ok" and second["cache"] == "hit"
            assert second["result"] == first["result"]
            assert second["attempts"] == 0
            # The load-bearing assertion: a cache hit never reaches
            # the fleet.
            assert fleet.dispatches == 1
            assert router.counters["cache_hits"] == 1
        finally:
            await fleet.stop()

    run(scenario())


def test_concurrent_identical_requests_coalesce_to_one_run():
    async def scenario():
        fleet = Fleet(2)
        router = Router(fleet, ResultCache(), RouterConfig())
        await fleet.start()
        try:
            responses = await asyncio.gather(*(
                router.submit({"id": i, "job": FAST.to_wire()})
                for i in range(6)
            ))
            assert all(r["status"] == "ok" for r in responses)
            assert fleet.dispatches == 1
            kinds = sorted(r["cache"] for r in responses)
            assert kinds == ["coalesced"] * 5 + ["miss"]
            # Coalesced responses carry the leader's payload verbatim.
            payloads = {str(r["result"]) for r in responses}
            assert len(payloads) == 1
        finally:
            await fleet.stop()

    run(scenario())


# -- failure matrix -----------------------------------------------------------
def test_worker_crash_is_retried_on_a_fresh_worker():
    killed = []

    def kill_first_dispatch(fleet, handle, spec):
        if not killed:
            killed.append(handle.pid)
            fleet._signal(handle, signal.SIGKILL)

    async def scenario():
        fleet = Fleet(1, on_dispatch=kill_first_dispatch)
        router = Router(fleet, ResultCache(), RouterConfig(
            max_attempts=3, backoff_base_s=0.01))
        await fleet.start()
        try:
            response = await router.submit({"id": 1, "job": FAST.to_wire()})
            assert response["status"] == "ok"
            assert response["attempts"] == 2
            assert fleet.counters["crashes"] >= 1
            assert fleet.counters["restarts"] >= 1
            assert router.counters["retries"] == 1
        finally:
            await fleet.stop()

    run(scenario())


def test_hung_worker_is_detected_and_killed():
    stalled = []

    def stall_first_dispatch(fleet, handle, spec):
        if not stalled:
            stalled.append(handle.pid)
            fleet._signal(handle, signal.SIGSTOP)

    async def scenario():
        fleet = Fleet(1, heartbeat_interval=0.05, hang_timeout=0.5,
                      on_dispatch=stall_first_dispatch)
        router = Router(fleet, ResultCache(), RouterConfig(
            max_attempts=3, backoff_base_s=0.01))
        await fleet.start()
        try:
            response = await router.submit({"id": 1, "job": SLOW.to_wire()})
            assert response["status"] == "ok"
            assert fleet.counters["hangs"] >= 1
            assert fleet.counters["crashes"] >= 1  # kill folds into crash
        finally:
            await fleet.stop()

    run(scenario())


def test_deadline_exceeded_kills_the_attempt():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig(
            max_attempts=1, deadline_s=120.0))
        await fleet.start()
        try:
            response = await router.submit({
                "id": 1, "job": SLOW.to_wire(), "deadline_s": 0.05})
            assert response["status"] == "error"
            assert response["retriable"] is True
            assert response["error"] == "DeadlineExceeded"
            assert fleet.counters["deadline_kills"] == 1
            # The fleet replaces the killed worker and stays usable.
            ok = await router.submit({"id": 2, "job": FAST.to_wire()})
            assert ok["status"] == "ok"
        finally:
            await fleet.stop()

    run(scenario())


def test_deterministic_job_failure_is_not_retried():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig(max_attempts=3))
        await fleet.start()
        try:
            bad_op = JobSpec.make("point", "no_such_op")
            response = await router.submit({"id": 1, "job": bad_op.to_wire()})
            assert response["status"] == "error"
            assert response["retriable"] is False
            assert response["attempts"] == 1  # no retry budget spent
            assert router.counters["job_failures"] == 1
            assert fleet.dispatches == 1
        finally:
            await fleet.stop()

    run(scenario())


def test_malformed_request_is_rejected_before_the_fleet():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        await fleet.start()
        try:
            response = await router.submit({
                "id": 1, "job": {"kind": "warp-drive"}})
            assert response["status"] == "error"
            assert response["error"] == "ProtocolError"
            assert response["retriable"] is False
            assert fleet.dispatches == 0
        finally:
            await fleet.stop()

    run(scenario())


def test_admission_control_sheds_when_pending_is_full():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig(
            max_pending=1, retry_after_s=0.02))
        await fleet.start()
        try:
            jobs = [JobSpec.make("point", "via_latency",
                                 nbytes=4, repeats=10 + i)
                    for i in range(4)]
            responses = await asyncio.gather(*(
                router.submit({"id": i, "job": spec.to_wire()})
                for i, spec in enumerate(jobs)
            ))
            statuses = sorted(r["status"] for r in responses)
            assert "overloaded" in statuses
            assert "ok" in statuses
            shed = [r for r in responses if r["status"] == "overloaded"]
            assert all(r["retriable"] and r["retry_after_s"] > 0
                       for r in shed)
            assert router.counters["shed"] == len(shed)
        finally:
            await fleet.stop()

    run(scenario())


def test_drain_finishes_inflight_and_rejects_new_work():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        await fleet.start()
        try:
            inflight = asyncio.ensure_future(
                router.submit({"id": 1, "job": SLOW.to_wire()}))
            await asyncio.sleep(0.3)  # let it reach a worker
            drained = await router.drain()
            assert drained is True
            assert (await inflight)["status"] == "ok"
            rejected = await router.submit({"id": 2, "job": FAST.to_wire()})
            assert rejected["status"] == "error"
            assert rejected["error"] == "ShuttingDown"
            assert rejected["retriable"] is True
        finally:
            await fleet.stop()

    run(scenario())


def test_stopped_fleet_gives_structured_errors_not_hangs():
    async def scenario():
        fleet = Fleet(1)
        router = Router(fleet, ResultCache(), RouterConfig())
        await fleet.start()
        await fleet.stop()
        response = await asyncio.wait_for(
            router.submit({"id": 1, "job": FAST.to_wire()}), 10.0)
        assert response["status"] == "error"
        assert response["error"] == "FleetStopped"
        assert response["retriable"] is True

    run(scenario())
