"""Tests for VIA wire packets and checksums."""

from repro.via.packet import PacketKind, ViaPacket


def _packet(**overrides):
    fields = dict(
        kind=PacketKind.DATA, src_node=1, dst_node=2, dst_vi=3,
        src_vi=4, msg_id=5, frag_index=0, num_frags=2,
        payload_bytes=100, msg_offset=0, msg_bytes=200,
    )
    fields.update(overrides)
    return ViaPacket(**fields)


def test_seal_and_verify():
    packet = _packet().seal()
    assert packet.verify()


def test_unsealed_fails_verification():
    assert not _packet().verify()


def test_tamper_detected():
    packet = _packet().seal()
    packet.dst_node = 99
    assert not packet.verify()


def test_checksum_covers_identity_fields():
    a = _packet(msg_id=1).seal()
    b = _packet(msg_id=2).seal()
    assert a.checksum != b.checksum


def test_route_excluded_from_checksum():
    packet = _packet(route=(0, 1, 2)).seal()
    packet.route = (1, 2)  # hop consumed by the switch
    assert packet.verify()


def test_msg_ids_monotone():
    assert ViaPacket.next_msg_id() < ViaPacket.next_msg_id()
