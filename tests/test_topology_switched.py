"""Tests for the Clos fabric abstraction."""

import pytest

from repro.errors import TopologyError
from repro.topology import ClosFabric


def test_basic_properties():
    fabric = ClosFabric(128)
    assert fabric.size == 128
    assert fabric.is_full_bisection()
    assert fabric.num_leaves == 16  # 8 hosts per 16-port leaf


def test_hop_counts():
    fabric = ClosFabric(128)
    assert fabric.switch_hops(0, 0) == 0
    assert fabric.switch_hops(0, 1) == 1      # same leaf
    assert fabric.switch_hops(0, 127) == 3    # leaf-spine-leaf
    assert fabric.all_pairs_max_hops() == 3


def test_single_leaf_cluster():
    fabric = ClosFabric(8)
    assert fabric.num_leaves == 1
    assert fabric.all_pairs_max_hops() == 1


def test_leaf_assignment_contiguous():
    fabric = ClosFabric(32)
    ports = fabric.ports()
    assert ports[0] == (0, 0)
    assert ports[8] == (8, 1)
    assert len(ports) == 32


def test_validation():
    with pytest.raises(TopologyError):
        ClosFabric(0)
    with pytest.raises(TopologyError):
        ClosFabric(8, radix=1)
    with pytest.raises(TopologyError):
        ClosFabric(8).leaf_of(99)
