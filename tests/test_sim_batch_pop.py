"""Same-instant batch heap drains must be invisible.

``Simulator.run``'s fast loop pops every heap entry sharing one
``(time, priority)`` key in a single drain (a step toward the
structured-array queue ROADMAP names).  These tests pin the edge cases
against the per-event reference path: dispatch order, urgent
preemption mid-batch, crash mid-batch, window bounds, and
``run_until_complete`` stopping mid-batch.
"""

import pytest

from repro import fastpath
from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.events import Callback


def _logger(log, item):
    def fire() -> None:
        log.append(item)
    return fire


def _run_both(build):
    """Run ``build(sim, log)`` under both scheduler modes."""
    outcomes = {}
    for mode in (False, True):
        with fastpath.force(mode):
            sim = Simulator()
            log = []
            build(sim, log)
            sim.run()
            outcomes[mode] = (log, sim.events_processed, sim.now)
    return outcomes[False], outcomes[True]


class TestBatchOrder:
    def test_same_instant_callbacks_fire_in_schedule_order(self):
        def build(sim, log):
            for i in range(50):
                Callback(sim, _logger(log, i), at=5.0)

        reference, batched = _run_both(build)
        assert batched == reference
        assert batched[0] == list(range(50))

    def test_batches_at_multiple_instants(self):
        def build(sim, log):
            for step in range(10):
                for i in range(8):
                    Callback(sim, _logger(log, (step, i)),
                             at=float(step + 1))

        reference, batched = _run_both(build)
        assert batched == reference

    def test_callback_scheduling_future_batch_member(self):
        # An event at t=1 adds a new member to the t=2 batch after the
        # t=2 entries already exist; the drain at t=2 must include it
        # in sequence order.
        def build(sim, log):
            for i in range(3):
                Callback(sim, _logger(log, ("first", i)), at=2.0)
            def add_late():
                log.append("adder")
                Callback(sim, _logger(log, "late"), at=2.0)
            Callback(sim, add_late, at=1.0)

        reference, batched = _run_both(build)
        assert batched == reference
        assert batched[0] == ["adder", ("first", 0), ("first", 1),
                              ("first", 2), "late"]


class TestBatchPreemption:
    def test_zero_delay_urgent_preempts_rest_of_batch(self):
        # Batch member 1 schedules an urgent zero-delay event; the
        # reference path runs it before batch members 2..4, so the
        # batched path must break the drain to match.
        def build(sim, log):
            def spawn_urgent():
                log.append("spawner")
                Callback(sim, _logger(log, "urgent"), delay=0.0,
                         priority=0)
            Callback(sim, spawn_urgent, at=3.0)
            for i in range(3):
                Callback(sim, _logger(log, ("tail", i)), at=3.0)

        reference, batched = _run_both(build)
        assert batched == reference
        assert batched[0].index("urgent") < batched[0].index(("tail", 0))


class TestBatchCrash:
    def test_crash_mid_batch_raises_and_keeps_tail(self):
        # Scheduling order puts the crashing process's resume between
        # the two callbacks in the t=1.0 batch (global sequence
        # numbers: the callback scheduled at t=0.5 sorts last).
        def crasher(sim):
            yield sim.timeout(1.0)
            raise ValueError("mid-batch crash")

        for mode in (False, True):
            with fastpath.force(mode):
                sim = Simulator()
                log = []
                Callback(sim, _logger(log, 0), at=1.0)
                sim.spawn(crasher(sim), name="crasher")
                def add_tail():
                    Callback(sim, _logger(log, 2), at=1.0)
                Callback(sim, add_tail, at=0.5)
                with pytest.raises(ValueError, match="mid-batch crash"):
                    sim.run()
                # The event before the crash ran; the one after did not
                # and is still queued at the crash instant.
                assert log == [0]
                assert sim.peek() == 1.0


class TestWindowBound:
    def test_until_splits_batches_exactly(self):
        with fastpath.force(True):
            sim = Simulator()
            log = []
            for i in range(4):
                Callback(sim, _logger(log, ("a", i)), at=1.0)
            for i in range(4):
                Callback(sim, _logger(log, ("b", i)), at=2.0)
            sim.run(until=1.5)
            assert log == [("a", i) for i in range(4)]
            assert sim.now == 1.5
            sim.run(until=2.0)
            assert log[-4:] == [("b", i) for i in range(4)]
            assert sim.now == 2.0

    def test_until_bound_matches_reference(self):
        def build_and_run(mode):
            with fastpath.force(mode):
                sim = Simulator()
                log = []
                for step in range(6):
                    for i in range(5):
                        Callback(sim, _logger(log, (step, i)),
                                 at=float(step))
                sim.run(until=2.0)
                first = list(log)
                sim.run()
                return first, log, sim.events_processed

        assert build_and_run(True) == build_and_run(False)


class TestRunUntilComplete:
    def test_stop_mid_batch_when_process_finishes(self):
        # The watched process finishes as part of a same-instant batch;
        # events after it in the batch must stay runnable and fire on
        # the next run(), exactly as the reference path leaves them.
        def finisher(sim, log):
            yield sim.timeout(1.0)
            log.append("proc")
            return "done"

        results = {}
        for mode in (False, True):
            with fastpath.force(mode):
                sim = Simulator()
                log = []
                Callback(sim, _logger(log, "before"), at=1.0)
                proc = sim.spawn(finisher(sim, log), name="finisher")
                def add_after():
                    Callback(sim, _logger(log, "after"), at=1.0)
                Callback(sim, add_after, at=0.5)
                value = sim.run_until_complete(proc)
                during = list(log)
                sim.run()
                results[mode] = (value, during, log,
                                 sim.events_processed)
        assert results[True] == results[False]
        assert results[True][0] == "done"
        assert results[True][2] == ["before", "proc", "after"]
