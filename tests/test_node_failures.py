"""Node-failure tolerance: detection, ULFM recovery, watchdog, chaos."""

import pytest

from repro.bench import chaos
from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_world, run_mpi
from repro.errors import (
    HangError,
    MessagingError,
    MpiError,
    MpiProcFailed,
    MpiRevoked,
    ViaError,
)
from repro.hw.faults import NodeFaultSpec
from repro.sim.monitor import reliability_summary
from repro.via.descriptors import DescriptorStatus
from repro.via.vi import ViState

FAILURES = (MpiError, ViaError, MessagingError)


def _faulty_mesh(victim=3, crash_at=300.0, dims=(2, 2, 2)):
    return build_mesh(dims, stack="via",
                      node_faults=[NodeFaultSpec(rank=victim,
                                                 crash_at=crash_at)])


def test_node_fault_spec_validation():
    with pytest.raises(Exception):
        NodeFaultSpec(rank=-1)
    with pytest.raises(Exception):
        NodeFaultSpec(rank=0, crash_at=-5.0)
    with pytest.raises(Exception):
        NodeFaultSpec(rank=0, nic_down=((10.0, 5.0),))
    assert not NodeFaultSpec(rank=0).active()
    assert NodeFaultSpec(rank=0, crash_at=1.0).active()


def test_victim_sees_own_crash_and_survivors_detect():
    """The victim's operations raise at the crash instant; every
    survivor learns of the death within the keepalive timeout."""
    cluster = _faulty_mesh(victim=3, crash_at=300.0)
    comms = build_world(cluster)

    def program(comm):
        sim = comm.engine.sim
        try:
            for i in range(50):
                yield from comm.bcast(root=0, nbytes=2048)
            what, when = "finished", sim.now
        except FAILURES as exc:
            what, when = type(exc).__name__, sim.now
        if cluster.node_alive(comm.engine.rank):
            # Idle long enough for detection + gossip to settle even on
            # ranks that outran the failure.
            yield sim.sleep_until(8_000.0)
        return (what, when)

    results = run_mpi(cluster, program, comms=comms, limit=100_000.0)
    assert results[3][0] == "MpiProcFailed"
    assert results[3][1] == pytest.approx(300.0)
    for rank, (what, when) in enumerate(results):
        if rank == 3:
            continue
        # A survivor either outran the failure or caught it promptly
        # (fd_timeout=1000us + detection slack), never hung.
        assert what in ("finished", "MpiProcFailed", "MpiRevoked",
                        "ViaError")
        assert when < 5_000.0
    # Mesh-wide state: everyone but the victim knows the victim died.
    assert cluster.alive_ranks() == [0, 1, 2, 4, 5, 6, 7]
    assert cluster.death_log[0][:2] == (3, 300.0)
    for comm in comms:
        if comm.engine.rank != 3:
            assert 3 in comm.engine._dead_peers


def test_collectives_raise_instead_of_hanging():
    """A collective stalled on live peers still aborts when any group
    member dies (the ULFM collective guarantee) — schedule-time checks
    plus group-tagged request dooming."""
    cluster = _faulty_mesh(victim=1, crash_at=250.0)
    comms = build_world(cluster)

    def program(comm):
        try:
            for _ in range(40):
                yield from comm.allgather(nbytes=1024)
            return "finished"
        except FAILURES as exc:
            return type(exc).__name__

    results = run_mpi(cluster, program, comms=comms, limit=100_000.0)
    assert results[1] == "MpiProcFailed"
    for rank, what in enumerate(results):
        if rank != 1:
            assert what in ("MpiProcFailed", "MpiRevoked")


def test_nic_collective_crash_raises_everywhere():
    """A node dying mid-NIC-collective surfaces as ``MpiProcFailed``
    on every group member — the NIC state machine aborts its waiters
    through the ULFM path instead of wedging."""
    cluster = _faulty_mesh(victim=2, crash_at=200.0)
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_nic_collectives()

    def program(comm):
        comm.set_collective_tier("nic")
        try:
            for i in range(60):
                yield from comm.allreduce(nbytes=64,
                                          data=float(comm.rank + 1))
                if i % 4 == 0:
                    yield from comm.barrier()
            return "finished"
        except FAILURES as exc:
            return type(exc).__name__

    results = run_mpi(cluster, program, comms=comms, limit=100_000.0)
    assert results[2] == "MpiProcFailed"
    for rank, what in enumerate(results):
        if rank != 2:
            # ULFM contract: the death is visible as a process-failure
            # error on every member, never a hang (run_mpi returning
            # within the limit proves no rank wedged).
            assert what == "MpiProcFailed", (rank, what)
    # The engines hold no leaked in-flight state after the abort.
    for rank, node in enumerate(cluster.nodes):
        if cluster.node_alive(rank):
            assert node.via.nic_collective._ops == {}


def test_nic_collective_chaos_scenario_recovers():
    """The nic-collective chaos scenario drives the full ULFM cycle
    (crash -> abort -> revoke -> agree -> shrink -> verify) over
    NIC-tier traffic, deterministically."""
    outcome = chaos.run_campaign(0, fault_seed=5,
                                 scenario="nic-collective")
    assert outcome.deterministic
    if outcome.crash_landed:
        assert outcome.survivors == 7


def test_revoke_poisons_all_ranks():
    cluster = _faulty_mesh(victim=7, crash_at=200.0)
    comms = build_world(cluster)

    def program(comm):
        sim = comm.engine.sim
        try:
            for _ in range(40):
                yield from comm.bcast(root=0, nbytes=1024)
        except FAILURES:
            pass
        if not cluster.node_alive(comm.engine.rank):
            return "dead"
        yield sim.sleep_until(5_000.0)
        if comm.rank == 0:
            comm.revoke()  # propagates out-of-band, instantly
        yield sim.sleep_until(6_000.0)
        # Every operation on a revoked communicator raises at entry.
        try:
            yield from comm.bcast(root=0, nbytes=16)
        except MpiRevoked:
            return "revoked"
        return "leaked"

    results = run_mpi(cluster, program, comms=comms, limit=100_000.0)
    assert results[7] == "dead"
    assert all(r == "revoked" for i, r in enumerate(results) if i != 7)
    assert all(comm.revoked for comm in comms)


def test_shrink_and_continue():
    """The canonical recovery: revoke -> agree -> shrink -> keep going
    on the survivors, with every survivor counted exactly once."""
    cluster = _faulty_mesh(victim=5, crash_at=350.0)
    comms = build_world(cluster)

    def program(comm):
        failed = None
        try:
            for _ in range(40):
                yield from comm.allreduce(nbytes=512)
        except FAILURES as exc:
            failed = exc
            if cluster.node_alive(comm.engine.rank):
                comm.revoke()
        if not cluster.node_alive(comm.engine.rank):
            return "dead"
        ok = yield from comm.agree(failed is None)
        assert ok is False  # at least one survivor saw the failure
        shrunk = yield from comm.shrink()
        assert shrunk.epoch == comm.epoch + 1
        assert shrunk.group.ranks() == (0, 1, 2, 3, 4, 6, 7)
        count = yield from shrunk.allreduce(nbytes=8, data=1)
        return ("recovered", shrunk.size, int(count))

    results = run_mpi(cluster, program, comms=comms, limit=100_000.0)
    assert results[5] == "dead"
    assert all(r == ("recovered", 7, 7)
               for i, r in enumerate(results) if i != 5)


def test_descriptors_drained_with_error_status():
    """Posted receive descriptors on a VI to the dead peer complete
    with ``DescriptorStatus.ERROR`` and carry the failure, so a
    blocked ``recv_wait`` returns instead of hanging."""
    from repro.via.descriptors import RecvDescriptor
    from tests.conftest import make_via_pair

    cluster, (vi0, r0), (_vi1, _r1) = make_via_pair(
        node_faults=[NodeFaultSpec(rank=1, crash_at=100.0)]
    )
    sim = cluster.sim
    vi0.post_recv(RecvDescriptor(r0, 0, 4096))

    def waiter():
        descriptor = yield from vi0.recv_wait()
        return descriptor

    process = sim.spawn(waiter())
    descriptor = sim.run_until_complete(process, limit=100_000.0)
    assert descriptor.status is DescriptorStatus.ERROR
    assert descriptor.error is not None
    assert "peer node 1" in str(descriptor.error)
    assert vi0.state is ViState.ERROR
    assert cluster.nodes[0].via.agent.stats["recv_drained"] >= 1
    # Detection happened on the keepalive timescale, not a retry storm.
    assert sim.now < 3_000.0


def test_watchdog_raises_hang_error():
    """With node faults armed, a distributed hang (a receive nothing
    will ever match) trips the watchdog instead of spinning forever —
    keepalive timers keep the event queue busy, so the kernel's
    deadlock detector can never fire."""
    cluster = _faulty_mesh(victim=1, crash_at=10_000_000.0)
    comms = build_world(cluster)
    assert cluster.watchdog is not None

    def program(comm):
        if comm.rank == 0:
            yield from comm.irecv(1, 99, 64).wait()  # never sent
        return "done"

    with pytest.raises(HangError) as excinfo:
        run_mpi(cluster, program, comms=comms, limit=10_000_000.0)
    assert "hang watchdog" in str(excinfo.value)
    assert "rank 0" in str(excinfo.value)
    assert cluster.watchdog.counters["hangs_detected"] == 1
    totals = cluster.reliability_stats()
    assert totals["hangs_detected"] == 1
    assert "hangs_detected=1" in reliability_summary(totals)


def test_failure_detector_counters_reported():
    cluster = _faulty_mesh(victim=2, crash_at=200.0)
    comms = build_world(cluster)

    def program(comm):
        try:
            for _ in range(30):
                yield from comm.bcast(root=0, nbytes=1024)
        except FAILURES:
            pass
        # Idle long enough for gossip to settle everywhere.
        yield comm.engine.sim.timeout(3_000.0)
        return None

    run_mpi(cluster, program, comms=comms, limit=100_000.0)
    totals = cluster.reliability_stats()
    assert totals["keepalives_sent"] > 0
    assert totals["peers_declared_dead"] >= 7
    assert totals["dead_notices_sent"] > 0
    summary = reliability_summary(totals)
    assert "keepalives_sent" in summary
    assert "peers_declared_dead" in summary


def test_chaos_campaign_deterministic_per_seed():
    """One full chaos campaign per scenario family: no hang, correct
    survivor accounting, and a bit-identical trace on the rerun (the
    campaign itself runs twice and raises otherwise)."""
    outcome = chaos.run_campaign(0, fault_seed=11, scenario="pt2pt")
    assert outcome.deterministic
    assert outcome.finish_us < chaos.LIMIT_US
    # Identical parameters re-derived from the same seed.
    again = chaos.run_campaign(0, fault_seed=11, scenario="pt2pt")
    assert (again.victim, again.crash_at) == (outcome.victim,
                                              outcome.crash_at)
    assert again.trace_events == outcome.trace_events
    # A different seed draws a different schedule (overwhelmingly).
    other = chaos.run_campaign(0, fault_seed=12, scenario="pt2pt")
    assert (other.victim, other.crash_at) != (outcome.victim,
                                              outcome.crash_at)


def test_chaos_harness_covers_collectives_and_solver():
    for scenario in ("bcast", "lqcd-cg"):
        outcome = chaos.run_campaign(1, fault_seed=3, scenario=scenario)
        assert outcome.scenario == scenario
        assert outcome.deterministic
        if outcome.crash_landed:
            assert outcome.survivors == 7


def test_fault_free_runs_unaffected():
    """No node faults: no detector, no watchdog, no FT overhead in the
    engine hot path, and timing identical to an untouched cluster."""
    finishes = []
    for _ in range(2):
        cluster = build_mesh((2, 2, 2), stack="via")
        comms = build_world(cluster)
        assert cluster.watchdog is None
        assert all(not c.engine._ft for c in comms)

        def program(comm):
            for _ in range(5):
                yield from comm.allreduce(nbytes=4096)
            return comm.engine.sim.now

        results = run_mpi(cluster, program, comms=comms)
        finishes.append(tuple(results))
    # Bit-identical timing across whole runs (per-rank times differ —
    # ranks finish the last combine at their own instants).
    assert finishes[0] == finishes[1]
