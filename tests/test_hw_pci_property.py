"""Property tests for the fluid bus: conservation and fairness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.pci import BandwidthBus
from repro.sim import Simulator

TRANSFERS = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=50_000.0),   # bytes
        st.floats(min_value=0.0, max_value=50.0),       # start delay
    ),
    min_size=1,
    max_size=8,
)


@given(TRANSFERS, st.floats(min_value=10.0, max_value=2000.0))
@settings(max_examples=40, deadline=None)
def test_total_time_bounded_by_serial_and_capacity(transfers, rate):
    """All transfers complete; the makespan is at least the
    work-conservation bound (total bytes / rate from the last start
    cannot beat capacity) and at most the serial bound."""
    sim = Simulator()
    bus = BandwidthBus(sim, rate=rate)
    finished = []

    def run(nbytes, delay):
        yield sim.timeout(delay)
        yield from bus.transfer(nbytes)
        finished.append(sim.now)

    for nbytes, delay in transfers:
        sim.spawn(run(nbytes, delay))
    sim.run()
    assert len(finished) == len(transfers)
    total_bytes = sum(b for b, _d in transfers)
    last_start = max(d for _b, d in transfers)
    makespan = max(finished)
    # Work conservation: the bus cannot move bytes faster than rate.
    assert makespan >= total_bytes / rate - 1e-6
    # And never slower than fully-serial execution after the last
    # arrival.
    assert makespan <= last_start + total_bytes / rate + 1e-6


@given(st.integers(min_value=2, max_value=6))
@settings(max_examples=10, deadline=None)
def test_equal_flows_finish_together(n):
    sim = Simulator()
    bus = BandwidthBus(sim, rate=100.0)
    finished = []

    def run():
        yield from bus.transfer(1000.0)
        finished.append(sim.now)

    for _ in range(n):
        sim.spawn(run())
    sim.run()
    assert max(finished) - min(finished) < 1e-6
    assert max(finished) == pytest.approx(n * 10.0)


@given(st.floats(min_value=1.0, max_value=99.0))
@settings(max_examples=20, deadline=None)
def test_cap_never_exceeded(cap):
    """A capped flow alone on the bus finishes exactly at bytes/cap."""
    sim = Simulator()
    bus = BandwidthBus(sim, rate=100.0)
    done = {}

    def run():
        yield from bus.transfer(500.0, rate_cap=cap)
        done["t"] = sim.now

    sim.spawn(run())
    sim.run()
    assert done["t"] == pytest.approx(500.0 / cap)
