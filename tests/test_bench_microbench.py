"""Self-consistency tests for the micro-benchmark drivers."""

import pytest

from repro.bench import microbench as mb


def test_latency_increases_with_size():
    small = mb.via_latency(4, repeats=5)
    large = mb.via_latency(4096, repeats=5)
    assert large > small


def test_pingpong_bandwidth_increases_with_size():
    small = mb.via_pingpong_bandwidth(8192, repeats=3)
    large = mb.via_pingpong_bandwidth(524288, repeats=3)
    assert large > small


def test_pingpong_below_simultaneous_is_false_for_via():
    """Pingpong alternates directions; simultaneous streams both.  Per
    direction the sustained rates converge at large sizes."""
    pingpong = mb.via_pingpong_bandwidth(1_000_000, repeats=3)
    simultaneous = mb.via_simultaneous_bandwidth(1_000_000)
    assert pingpong == pytest.approx(simultaneous, rel=0.15)


def test_aggregate_scales_with_link_count():
    two_d = mb.via_aggregate_bandwidth((3, 3), 262144,
                                       total_bytes=1_000_000)
    three_d = mb.via_aggregate_bandwidth((3, 3, 3), 262144,
                                         total_bytes=1_000_000)
    # 6 links beat 4 links (not proportionally: shared host).
    assert three_d > two_d


def test_tcp_drivers_consistent():
    lat = mb.tcp_latency(4, repeats=5)
    assert 25 < lat < 45
    bw = mb.tcp_simultaneous_bandwidth(1_000_000)
    assert 60 < bw < 100


def test_mpi_latency_reasonable():
    assert 17 < mb.mpi_latency(4, repeats=5) < 21
