"""Tests for frames and links."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.link import Frame, Link
from repro.sim import Simulator
from repro.units import ETHERNET_WIRE_OVERHEAD


class _StubPort:
    def __init__(self):
        self.arrivals = []

    def frame_arrived(self, frame):
        self.arrivals.append(frame)


def _link(sim, **kwargs):
    defaults = dict(wire_rate=125.0, frame_overhead=ETHERNET_WIRE_OVERHEAD,
                    propagation=0.3, name="L")
    defaults.update(kwargs)
    return Link(sim, **defaults)


def test_frame_wire_bytes():
    frame = Frame(payload_bytes=1458, header_bytes=42)
    assert frame.wire_bytes(ETHERNET_WIRE_OVERHEAD) == 1500 + 38


def test_small_frame_padded_to_minimum():
    frame = Frame(payload_bytes=1, header_bytes=0)
    # 64-byte minimum includes 14 header + 4 FCS -> 46-byte body floor.
    assert frame.wire_bytes(ETHERNET_WIRE_OVERHEAD) == 46 + 38


def test_frame_ids_unique():
    a, b = Frame(1, 0), Frame(1, 0)
    assert a.frame_id != b.frame_id


def test_attach_validation(sim):
    link = _link(sim)
    port = _StubPort()
    link.attach(0, port)
    with pytest.raises(ConfigurationError):
        link.attach(0, _StubPort())
    with pytest.raises(ConfigurationError):
        link.attach(2, _StubPort())
    with pytest.raises(ConfigurationError):
        link.peer(0)  # asks for side 1, which is unattached


def test_transmit_timing(sim):
    link = _link(sim)
    a, b = _StubPort(), _StubPort()
    link.attach(0, a)
    link.attach(1, b)
    frame = Frame(payload_bytes=1462, header_bytes=0)  # 1500 wire bytes

    def send():
        yield from link.transmit(0, frame)
        return sim.now

    process = sim.spawn(send())
    serialization_done = sim.run_until_complete(process)
    assert serialization_done == pytest.approx(1500 / 125.0)
    sim.run()
    assert b.arrivals == [frame]
    # Arrival includes propagation delay after serialization.
    assert sim.now == pytest.approx(1500 / 125.0 + 0.3)


def test_directions_independent(sim):
    link = _link(sim)
    a, b = _StubPort(), _StubPort()
    link.attach(0, a)
    link.attach(1, b)
    done = []

    def send(side):
        yield from link.transmit(side, Frame(1462, 0))
        done.append((side, sim.now))

    sim.spawn(send(0))
    sim.spawn(send(1))
    sim.run()
    # Full duplex: both serializations take one frame time, in parallel.
    assert done[0][1] == pytest.approx(done[1][1])


def test_same_direction_serializes(sim):
    link = _link(sim)
    a, b = _StubPort(), _StubPort()
    link.attach(0, a)
    link.attach(1, b)
    done = []

    def send():
        yield from link.transmit(0, Frame(1462, 0))
        done.append(sim.now)

    sim.spawn(send())
    sim.spawn(send())
    sim.run()
    assert done[1] == pytest.approx(2 * 1500 / 125.0)


def test_stats_track_payload(sim):
    link = _link(sim)
    a, b = _StubPort(), _StubPort()
    link.attach(0, a)
    link.attach(1, b)

    def send():
        yield from link.transmit(0, Frame(100, 10))

    process = sim.spawn(send())
    sim.run_until_complete(process)
    assert link.stats["frames"][0] == 1
    assert link.stats["bytes"][0] == 100


def test_bad_wire_rate(sim):
    with pytest.raises(ConfigurationError):
        _link(sim, wire_rate=0)
