"""Physics tests for the hopping operator."""

import numpy as np
import pytest

from repro.lqcd.dslash import DSLASH_FLOPS_PER_SITE, WilsonDslash
from repro.lqcd.lattice import LocalLattice


@pytest.fixture(scope="module")
def dslash():
    return WilsonDslash(LocalLattice(4, 4, 4, 4), mass=0.5,
                        rng=np.random.default_rng(11))


def _rand_field(dslash, seed):
    return dslash.random_field(np.random.default_rng(seed))


def _dot(dslash, a, b):
    return complex(np.sum(np.conj(dslash.interior(a))
                          * dslash.interior(b)))


def test_linearity(dslash):
    a = _rand_field(dslash, 1)
    b = _rand_field(dslash, 2)
    combined = dslash.zeros_field()
    own = (slice(1, -1),) * 3
    combined[own] = 2.0 * a[own] + 3.0j * b[own]
    lhs = dslash.apply(combined)
    rhs_a = dslash.apply(a)
    rhs_b = dslash.apply(b)
    assert np.allclose(
        dslash.interior(lhs),
        2.0 * dslash.interior(rhs_a) + 3.0j * dslash.interior(rhs_b),
        atol=1e-10,
    )


def test_dagger_is_adjoint(dslash):
    """<a, D b> == <D^dagger a, b> site-summed."""
    a = _rand_field(dslash, 3)
    b = _rand_field(dslash, 4)
    lhs = _dot(dslash, a, dslash.apply(b))
    rhs = _dot(dslash, dslash.apply_dagger(a), b)
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_hopping_part_antihermitian(dslash):
    """With the mass removed, <a, H b> == -conj(<b, H a>)."""
    a = _rand_field(dslash, 5)
    b = _rand_field(dslash, 6)

    def hop(field):
        full = dslash.apply(field)
        out = dslash.zeros_field()
        own = (slice(1, -1),) * 3
        out[own] = full[own] - dslash.mass * field[own]
        return out

    lhs = _dot(dslash, a, hop(b))
    rhs = _dot(dslash, b, hop(a))
    assert lhs == pytest.approx(-np.conj(rhs), rel=1e-9)


def test_normal_op_positive_definite(dslash):
    field = _rand_field(dslash, 7)
    value = _dot(dslash, field, dslash.normal_op(field))
    assert abs(value.imag) < 1e-8 * abs(value.real)
    assert value.real > 0


def test_mass_term_only_for_constant_gauge():
    """On a unit-gauge lattice, D applied to a constant field has a
    known action: the hopping part cancels pairwise."""
    local = LocalLattice(4, 4, 4, 4)
    dslash = WilsonDslash(local, mass=0.7,
                          rng=np.random.default_rng(12))
    dslash.U[:] = np.eye(3)[None, None, None, None, None]
    field = dslash.zeros_field()
    field[1:-1, 1:-1, 1:-1] = 1.0
    result = dslash.apply(field)
    own = dslash.interior(result)
    # With eta phases the hops do not cancel exactly site-by-site, but
    # U=1 and constant psi make the x-forward and x-backward terms
    # equal, so hop contribution = 0 for mu=0... verify numerically
    # against a direct reimplementation instead: D psi = m psi when
    # all neighbors equal psi and U = 1 (forward minus backward
    # cancels).
    assert np.allclose(own, 0.7 * np.ones_like(own), atol=1e-12)


def test_flop_constant():
    assert DSLASH_FLOPS_PER_SITE == 570


def test_flops_per_application_scales_with_volume():
    small = WilsonDslash(LocalLattice(2, 2, 2, 2))
    large = WilsonDslash(LocalLattice(4, 4, 4, 4))
    assert large.flops_per_application() == (
        16 * small.flops_per_application()
    )


def test_boundary_and_halo_slices_are_disjoint(dslash):
    field = dslash.zeros_field()
    for axis in range(3):
        for side in (+1, -1):
            boundary = field[dslash.boundary_slice(axis, side)]
            halo = field[dslash.halo_slice(axis, side)]
            assert boundary.shape == halo.shape


def test_periodic_halo_fill_wraps(dslash):
    field = dslash.random_field(np.random.default_rng(13))
    dslash.fill_halo_periodic(field)
    for axis in range(3):
        assert np.allclose(
            field[dslash.halo_slice(axis, +1)],
            field[dslash.boundary_slice(axis, -1)],
        )
        assert np.allclose(
            field[dslash.halo_slice(axis, -1)],
            field[dslash.boundary_slice(axis, +1)],
        )
