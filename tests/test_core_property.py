"""Property-based tests of the messaging core's delivery guarantees.

Random workloads of mixed-size, mixed-tag traffic must always deliver
every message exactly once with correct metadata — across the eager
path, the rendezvous path, token stalls, and unexpected-message
queueing.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import build_mesh, build_engines
from repro.core.message import CoreParams

# Tags deliberately collide across messages; sizes straddle the 16K
# eager/rendezvous threshold.
MESSAGES = st.lists(
    st.tuples(
        st.sampled_from([0, 1, 2]),                  # tag
        st.sampled_from([0, 64, 4000, 20_000, 60_000]),  # nbytes
    ),
    min_size=1,
    max_size=12,
)


@given(MESSAGES, st.booleans())
@settings(max_examples=25, deadline=None)
def test_every_message_delivered_once(messages, prepost):
    cluster = build_mesh((2,), wrap=False)
    engines = build_engines(cluster)
    sim = cluster.sim

    def recv_key(index, tag):
        # Receives match per-tag in FIFO order; expected payload is
        # the per-tag sequence number.
        return tag

    # Expected per-tag ordering of payloads.
    expected = {}
    for index, (tag, _nbytes) in enumerate(messages):
        expected.setdefault(tag, []).append(index)

    recvs = []
    if prepost:
        for tag, nbytes in messages:
            recvs.append(
                engines[1].irecv(0, tag, 1, max(nbytes, 64))
            )
    sends = [
        engines[0].isend(1, tag, 1, nbytes, data=index)
        for index, (tag, nbytes) in enumerate(messages)
    ]
    if not prepost:
        sim.run(until=sim.now + 300)  # let traffic land unexpected
        for tag, nbytes in messages:
            recvs.append(
                engines[1].irecv(0, tag, 1, max(nbytes, 64))
            )
    for request in sends + recvs:
        sim.run_until_complete(request, limit=5e7)

    got = {}
    for request, (tag, _nbytes) in zip(recvs, messages):
        got.setdefault(tag, []).append(request.received_data)
    assert got == expected


@given(st.integers(min_value=1, max_value=8),
       st.sampled_from([1, 2, 4]))
@settings(max_examples=10, deadline=None)
def test_tiny_token_pools_never_deadlock(message_count, tokens):
    params = CoreParams(data_tokens=tokens, ctrl_tokens=max(tokens, 4),
                        token_return_threshold=1)
    cluster = build_mesh((2,), wrap=False)
    engines = build_engines(cluster, params=params)
    sim = cluster.sim
    recvs = [
        engines[1].irecv(0, 1, 1, 2048) for _ in range(message_count)
    ]
    sends = [
        engines[0].isend(1, 1, 1, 1024, data=index)
        for index in range(message_count)
    ]
    for request in sends + recvs:
        sim.run_until_complete(request, limit=5e7)
    assert [r.received_data for r in recvs] == list(range(message_count))


@given(MESSAGES)
@settings(max_examples=15, deadline=None)
def test_bidirectional_mixed_traffic(messages):
    """Both nodes send the same workload to each other concurrently."""
    cluster = build_mesh((2,), wrap=False)
    engines = build_engines(cluster)
    sim = cluster.sim
    all_requests = []
    for me, peer in ((0, 1), (1, 0)):
        for index, (tag, nbytes) in enumerate(messages):
            all_requests.append(
                engines[me].irecv(peer, tag, 1, max(nbytes, 64))
            )
            all_requests.append(
                engines[me].isend(peer, tag, 1, nbytes,
                                  data=(me, index))
            )
    for request in all_requests:
        sim.run_until_complete(request, limit=5e7)
