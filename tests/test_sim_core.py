"""Tests for the simulator event loop."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_run_until_advances_clock_without_events(sim):
    assert sim.run(until=123.0) == 123.0
    assert sim.now == 123.0


def test_run_until_does_not_process_later_events(sim):
    hits = []

    def proc():
        yield sim.timeout(10)
        hits.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5)
    assert hits == []
    assert sim.now == 5
    sim.run()
    assert hits == [10]


def test_run_until_past_rejected(sim):
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_step_on_empty_queue_raises(sim):
    with pytest.raises(DeadlockError):
        sim.step()


def test_peek(sim):
    assert sim.peek() == float("inf")
    sim.timeout(7)
    assert sim.peek() == 0.0 or sim.peek() == 7.0  # init event first
    sim.run()
    assert sim.peek() == float("inf")


def test_schedule_into_past_rejected(sim):
    event = sim.event()
    with pytest.raises(SimulationError):
        sim.schedule(event, delay=-1)


def test_determinism_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(tag, delay):
            for _ in range(5):
                yield sim.timeout(delay)
                log.append((tag, sim.now))

        for tag, delay in (("a", 1.5), ("b", 2.0), ("c", 0.7)):
            sim.spawn(worker(tag, delay))
        sim.run()
        return log

    assert build() == build()


def test_queue_length(sim):
    sim.timeout(1)
    sim.timeout(2)
    assert sim.queue_length == 2
    sim.run()
    assert sim.queue_length == 0


def test_active_process_visible_during_resume(sim):
    seen = []

    def proc():
        seen.append(sim.active_process)
        yield sim.timeout(1)
        seen.append(sim.active_process)

    process = sim.spawn(proc())
    sim.run()
    assert seen == [process, process]
    assert sim.active_process is None
