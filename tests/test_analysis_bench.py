"""Tests for analysis helpers and the bench harness plumbing."""

import pytest

from repro.analysis import geometric_mean, linear_fit, percentile
from repro.bench.harness import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.bench.report import render_table, to_csv
from repro.errors import BenchmarkError


def test_geometric_mean():
    assert geometric_mean([1, 10, 100]) == pytest.approx(10.0)
    with pytest.raises(BenchmarkError):
        geometric_mean([])
    with pytest.raises(BenchmarkError):
        geometric_mean([1, -1])


def test_percentile():
    assert percentile(range(101), 50) == 50
    with pytest.raises(BenchmarkError):
        percentile([], 50)


def test_linear_fit_recovers_line():
    xs = [1, 2, 3, 4]
    ys = [2.5 * x + 1.0 for x in xs]
    slope, intercept = linear_fit(xs, ys)
    assert slope == pytest.approx(2.5)
    assert intercept == pytest.approx(1.0)
    with pytest.raises(BenchmarkError):
        linear_fit([1], [2])


def test_render_table_layout():
    text = render_table("Title", ["a", "bb"], [[1, 2.5], [10, 0.25]],
                        notes=["a note"])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "note: a note" in text


def test_to_csv():
    csv = to_csv(["x", "y"], [[1, 2.0]])
    assert csv == "x,y\n1,2.00\n"


def test_experiment_result_column():
    result = ExperimentResult("t", "T", ["a", "b"], [[1, 2], [3, 4]])
    assert result.column("b") == [2, 4]
    with pytest.raises(BenchmarkError):
        result.column("zz")
    assert "T" in result.render()
    assert result.csv().startswith("a,b")


def test_unknown_experiment_rejected():
    with pytest.raises(BenchmarkError):
        run_experiment("fig99")


def test_registry_complete():
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "table1",
                 "routing", "cluster-b", "ablation-threshold",
                 "ablation-coalescing", "ablation-tokens",
                 "ablation-overhead", "ablation-checksum",
                 "ablation-kernel-reduce", "ablation-napi"):
        assert name in EXPERIMENTS


def test_routing_experiment_quick():
    """The cheapest full experiment: checks the 18.5 + 12.5(n-1) law."""
    result = run_experiment("routing", quick=True)
    measured = result.column("measured RTT/2")
    predicted = result.column("paper model")
    for got, want in zip(measured, predicted):
        assert got == pytest.approx(want, abs=0.8)


def test_to_markdown():
    from repro.bench.report import to_markdown

    md = to_markdown(["a", "b"], [[1, 2.5]])
    lines = md.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2.50 |"


def test_conformance_claims_well_formed():
    from repro.bench.conformance import CLAIMS

    assert len(CLAIMS) >= 12
    for claim in CLAIMS:
        assert claim.experiment in EXPERIMENTS
        assert claim.claim and claim.source
        assert callable(claim.check)
