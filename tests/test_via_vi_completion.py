"""Tests for VI queue mechanics and completion queues."""

import pytest

from repro.cluster.builder import build_mesh
from repro.errors import ViaDescriptorError
from repro.via.completion import RECV_QUEUE, SEND_QUEUE
from repro.via.descriptors import RecvDescriptor, SendDescriptor
from tests.conftest import make_via_pair


def test_post_recv_type_checked(via_pair):
    _cluster, (vi0, r0), _end1 = via_pair
    with pytest.raises(ViaDescriptorError):
        vi0.post_recv(SendDescriptor(r0, 0, 10))  # type: ignore[arg-type]


def test_post_recv_tag_checked():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    tag_a = device.create_protection_tag()
    tag_b = device.create_protection_tag()
    vi = device.create_vi(tag_a)
    region_b = device.register_memory_now(4096, tag_b)
    with pytest.raises(ViaDescriptorError):
        vi.post_recv(RecvDescriptor(region_b, 0, 64))


def test_post_send_type_checked(via_pair):
    cluster, (vi0, r0), _end1 = via_pair

    def bad():
        yield from vi0.post_send(RecvDescriptor(r0, 0, 10))

    with pytest.raises(ViaDescriptorError):
        cluster.sim.run_until_complete(cluster.sim.spawn(bad()))


def test_completion_queue_aggregates_vis():
    cluster = build_mesh((2,), wrap=False, stack="via")
    sim = cluster.sim
    d0, d1 = cluster.nodes[0].via, cluster.nodes[1].via
    t0, t1 = d0.create_protection_tag(), d1.create_protection_tag()
    cq = d1.create_cq("test-cq")
    vi0a, vi0b = d0.create_vi(t0), d0.create_vi(t0)
    vi1a = d1.create_vi(t1, recv_cq=cq)
    vi1b = d1.create_vi(t1, recv_cq=cq)
    r0 = d0.register_memory_now(8192, t0)
    r1 = d1.register_memory_now(8192, t1)
    for vi_out, vi_in, disc in ((vi0a, vi1a, "a"), (vi0b, vi1b, "b")):
        pa = sim.spawn(d0.agent.connect_request(vi_out, 1, disc))
        pb = sim.spawn(d1.agent.connect_wait(vi_in, disc))
        sim.run_until_complete(pa)
        sim.run_until_complete(pb)
    vi1a.post_recv(RecvDescriptor(r1, 0, 4096))
    vi1b.post_recv(RecvDescriptor(r1, 4096, 4096))

    def send_both():
        yield from vi0a.post_send(SendDescriptor(r0, 0, 16, payload="A"))
        yield from vi0b.post_send(SendDescriptor(r0, 0, 16, payload="B"))

    def reap():
        seen = []
        for _ in range(2):
            vi, queue, descriptor = yield from cq.wait()
            seen.append((queue, descriptor.received_payload))
        return seen

    sim.spawn(send_both())
    process = sim.spawn(reap())
    seen = sim.run_until_complete(process)
    assert sorted(payload for _q, payload in seen) == ["A", "B"]
    assert all(queue == RECV_QUEUE for queue, _p in seen)


def test_cq_poll_nonblocking():
    cluster = build_mesh((2,), wrap=False, stack="via")
    cq = cluster.nodes[0].via.create_cq()
    assert cq.poll() is None
    assert len(cq) == 0


def test_recv_wait_with_cq_rejected():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    tag = device.create_protection_tag()
    cq = device.create_cq()
    vi = device.create_vi(tag, recv_cq=cq, send_cq=cq)

    def bad_recv():
        yield from vi.recv_wait()

    def bad_send():
        yield from vi.send_wait()

    with pytest.raises(ViaDescriptorError):
        cluster.sim.run_until_complete(cluster.sim.spawn(bad_recv()))
    with pytest.raises(ViaDescriptorError):
        cluster.sim.run_until_complete(cluster.sim.spawn(bad_send()))


def test_stats_track_traffic(via_pair):
    cluster, (vi0, r0), (vi1, r1) = via_pair
    sim = cluster.sim
    vi1.post_recv(RecvDescriptor(r1, 0, 4096))

    def roundtrip():
        yield from vi0.post_send(SendDescriptor(r0, 0, 1000))
        yield from vi0.send_wait()

    def receive():
        yield from vi1.recv_wait()

    sim.spawn(roundtrip())
    process = sim.spawn(receive())
    sim.run_until_complete(process)
    assert vi0.stats["sends"] == 1
    assert vi0.stats["send_bytes"] == 1000
    assert vi1.stats["recvs"] == 1
    assert vi1.stats["recv_bytes"] == 1000


def test_vipl_facade_roundtrip():
    from repro.via import vipl

    cluster = build_mesh((2,), wrap=False, stack="via")
    sim = cluster.sim
    nic0, nic1 = cluster.nodes[0].via, cluster.nodes[1].via
    ptag0, ptag1 = vipl.VipCreatePtag(nic0), vipl.VipCreatePtag(nic1)
    vi0 = vipl.VipCreateVi(nic0, ptag0)
    vi1 = vipl.VipCreateVi(nic1, ptag1)
    state = {}

    def setup():
        state["m0"] = yield from vipl.VipRegisterMem(nic0, 65536, ptag0)
        state["m1"] = yield from vipl.VipRegisterMem(nic1, 65536, ptag1)
        sim.spawn(vipl.VipConnectWait(vi1, "facade"))
        yield from vipl.VipConnectRequest(vi0, 1, "facade")

    sim.run_until_complete(sim.spawn(setup()))

    def receiver():
        vipl.VipPostRecv(vi1, RecvDescriptor(state["m1"], 0, 4096))
        descriptor = yield from vipl.VipRecvWait(vi1)
        return descriptor.received_payload

    def sender():
        yield from vipl.VipPostSend(
            vi0, SendDescriptor(state["m0"], 0, 256, payload="vipl")
        )
        yield from vipl.VipSendWait(vi0)

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    assert sim.run_until_complete(receive) == "vipl"
    vipl.VipDeregisterMem(nic0, state["m0"])
