"""Tests for scan, reduce_scatter, persistent requests, and the
analytic collective cost model."""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.collectives.analysis import (
    barrier_prediction,
    broadcast_prediction,
    global_combine_prediction,
    scatter_opt_prediction,
    validate_against,
)
from repro.mpi import SUM
from repro.topology import Torus


def test_scan_prefix_sums():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        result = yield from comm.scan(nbytes=8,
                                      data=np.float64(comm.rank + 1))
        return float(result)

    # Inclusive prefixes of 1,2,3,4.
    assert run_mpi(cluster, program, comms=comms) == [1.0, 3.0, 6.0, 10.0]


def test_reduce_scatter():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        data = [np.float64(comm.rank * 10 + slot)
                for slot in range(comm.size)]
        result = yield from comm.reduce_scatter(nbytes=8, op=SUM,
                                                data=data)
        return float(result)

    results = run_mpi(cluster, program, comms=comms)
    # Slice r = sum over ranks of (rank*10 + r) = 60 + 4r.
    assert results == [60.0, 64.0, 68.0, 72.0]


def test_persistent_send_recv():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            persistent = comm.send_init(1, tag=4, nbytes=256)
            for _ in range(3):
                persistent.start()
                yield from persistent.wait()
            return "sent"
        persistent = comm.recv_init(source=0, tag=4, nbytes=512)
        got = 0
        for _ in range(3):
            persistent.start()
            yield from persistent.wait()
            got += persistent.request.received_bytes
        return got

    assert run_mpi(cluster, program) == ["sent", 3 * 256]


def test_persistent_restart_guard():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            persistent = comm.send_init(1, tag=1, nbytes=8)
            persistent.start()
            with pytest.raises(RuntimeError):
                persistent.start()
            yield from persistent.wait()
            return None
        yield from comm.recv(source=0, tag=1, nbytes=64)
        return None

    run_mpi(cluster, program)


def test_persistent_wait_before_start_guard():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        persistent = comm.recv_init(source=0, tag=1, nbytes=8)
        with pytest.raises(RuntimeError):
            yield from persistent.wait()
        yield comm.engine.sim.timeout(0)
        return True

    assert all(run_mpi(cluster, program))


# ---------------------------------------------------------------------------
# Analytic cost model.
# ---------------------------------------------------------------------------

def test_broadcast_prediction_matches_paper_arithmetic():
    torus = Torus((4, 8, 8))
    prediction = broadcast_prediction(torus, nbytes=4)
    assert prediction.steps == 10
    # "about 200us for 10 communication steps, i.e., 20us per step".
    assert 180 <= prediction.time_us <= 220


def test_combine_twice_broadcast():
    torus = Torus((4, 8, 8))
    combine = global_combine_prediction(torus, nbytes=4)
    single = broadcast_prediction(torus, nbytes=4)
    assert combine.time_us == pytest.approx(2 * single.time_us)
    assert barrier_prediction(torus).steps == combine.steps


def test_scatter_opt_prediction():
    torus = Torus((4, 8, 8))
    prediction = scatter_opt_prediction(torus, nbytes=64)
    assert prediction.steps == 43  # ceil(255/6)
    assert prediction.time_us > 43 * 12.5


def test_model_validates_simulation():
    """Close the loop: the analytic model agrees with the DES."""
    dims = (2, 4, 4)
    cluster = build_mesh(dims)
    comms = build_world(cluster)
    times = {}

    def program(comm):
        sim = comm.engine.sim
        yield from comm.barrier()
        start = sim.now
        yield from comm.bcast(root=0, nbytes=4)
        times.setdefault("b0", start)
        times["b1"] = max(times.get("b1", 0.0), sim.now)
        yield from comm.barrier()
        start = sim.now
        yield from comm.allreduce(nbytes=8, data=np.float64(1))
        times.setdefault("s0", start)
        times["s1"] = max(times.get("s1", 0.0), sim.now)
        return None

    run_mpi(cluster, program, comms=comms)
    # The paper's step arithmetic is a first-order model: on small
    # meshes the reduction's fan-in serialization pushes the combine
    # above the clean 2x, so validate with a loose band here (the
    # fig5 bench checks the 4x8x8 where the arithmetic is tight).
    assert validate_against(
        Torus(dims),
        measured_broadcast_us=times["b1"] - times["b0"],
        measured_combine_us=times["s1"] - times["s0"],
        tolerance=0.65,
    )
