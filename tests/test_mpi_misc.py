"""Tests for MPI datatypes, ops, groups, and communicator validation."""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world
from repro.errors import MpiError
from repro.mpi import (
    BYTE,
    DOUBLE,
    INT,
    LAND,
    MAX,
    MIN,
    PROD,
    SUM,
    Communicator,
    Group,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.op import NULL


def test_datatype_sizes():
    assert BYTE.bytes_for(10) == 10
    assert INT.bytes_for(3) == 12
    assert DOUBLE.bytes_for(2) == 16


def test_datatype_validation():
    with pytest.raises(MpiError):
        Datatype("bad", 0)
    with pytest.raises(MpiError):
        DOUBLE.bytes_for(-1)


def test_ops_on_scalars():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2
    assert bool(LAND(True, False)) is False


def test_ops_on_arrays():
    a = np.array([1.0, 5.0])
    b = np.array([4.0, 2.0])
    assert np.allclose(SUM(a, b), [5.0, 7.0])
    assert np.allclose(MAX(a, b), [4.0, 5.0])


def test_ops_identity_with_none():
    assert SUM(None, 7) == 7
    assert SUM(7, None) == 7
    assert NULL(None, None) is None


def test_group_mapping():
    group = Group([5, 2, 9])
    assert group.size == 3
    assert group.world_rank(1) == 2
    assert group.local_rank(9) == 2
    assert group.contains(5)
    assert not group.contains(7)
    assert group.ranks() == (5, 2, 9)


def test_group_validation():
    with pytest.raises(MpiError):
        Group([1, 1])
    group = Group([0, 1])
    with pytest.raises(MpiError):
        group.world_rank(5)
    with pytest.raises(MpiError):
        group.local_rank(9)


def test_group_subset():
    group = Group([10, 20, 30, 40])
    sub = group.subset([2, 0])
    assert sub.ranks() == (30, 10)


def test_communicator_requires_membership():
    cluster = build_mesh((2,), wrap=False)
    comms = build_world(cluster)
    engine = comms[0].engine
    with pytest.raises(MpiError):
        Communicator(engine, Group([1]), context=9)


def test_is_whole_torus():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)
    assert comms[0].is_whole_torus
    sub = comms[0].create([0, 1])
    if sub is not None:
        assert not sub.is_whole_torus
