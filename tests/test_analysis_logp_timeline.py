"""Tests for LogGP characterization and utilization reporting."""

import pytest

from repro.analysis.logp import (
    LogGPParams,
    measure_via_loggp,
    prediction_error,
    validate_model,
)
from repro.analysis.timeline import (
    link_utilization,
    node_utilization,
    utilization_report,
)
from repro.cluster import build_mesh, run_mpi


@pytest.fixture(scope="module")
def loggp():
    return measure_via_loggp(large_sizes=(262144, 1048576))


def test_loggp_parameters_match_paper_decomposition(loggp):
    # o_send + o_recv ~= 6us (section 4.1); L is the hardware path.
    assert loggp.o == pytest.approx(6.36, abs=0.1)
    assert 11.0 < loggp.L < 13.5
    # G^-1 is the sustained bandwidth, ~110 MB/s.
    assert 1 / loggp.G == pytest.approx(110.0, abs=5.0)


def test_loggp_predicts_small_message_times(loggp):
    # The linear model reproduces the measured latency curve within
    # ~15% over the eager range.
    assert prediction_error(loggp, sizes=(4, 256, 1024, 4096)) < 0.15


def test_loggp_bandwidth_asymptote(loggp):
    assert loggp.bandwidth(2_000_000) == pytest.approx(
        1 / loggp.G, rel=0.05
    )


def test_validate_model_shape(loggp):
    table = validate_model(loggp, sizes=(4, 1024))
    assert set(table) == {4, 1024}
    for measured, predicted in table.values():
        assert measured > 0 and predicted > 0


def test_one_way_time_monotone():
    params = LogGPParams(L=12.0, o_send=2.5, o_recv=3.5, g=1.0,
                         G=0.009)
    assert params.one_way_time(1000) > params.one_way_time(10)
    assert params.o == 6.0


def test_utilization_report_after_traffic():
    cluster = build_mesh((2, 2))

    def program(comm):
        peer = (comm.rank + 1) % comm.size
        other = (comm.rank - 1) % comm.size
        for _ in range(4):
            yield from comm.sendrecv(dest=peer, source=other,
                                     send_nbytes=8192,
                                     recv_nbytes=8192)
        return None

    run_mpi(cluster, program)
    elapsed = cluster.sim.now
    links = link_utilization(cluster, elapsed)
    assert len(links) == len(cluster.links)
    assert any(l.bytes_forward > 0 for l in links)
    assert all(0 <= l.utilization_forward <= 1.01 for l in links)

    nodes = node_utilization(cluster, elapsed)
    assert len(nodes) == 4
    assert all(n.interrupts > 0 for n in nodes)
    assert all(0 <= n.cpu_fraction <= 1.0 for n in nodes)

    report = utilization_report(cluster, elapsed, top=3)
    assert "links" in report
    assert "rank" in report
    assert "%" in report
