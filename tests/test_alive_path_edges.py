"""Edge cases of fault-aware routing (:func:`topology.routing.alive_path`)."""

from repro import fastpath
from repro.topology.routing import alive_path
from repro.topology.torus import Direction, Torus


def _all_alive(_node, _direction):
    return True


def _kill_node(torus, dead):
    """Predicate: every link into or out of ``dead`` is down."""

    def alive(node, direction):
        if node == dead:
            return False
        return torus.neighbor(node, direction) != dead

    return alive


def test_self_path_is_empty():
    torus = Torus((2, 2, 2))
    assert alive_path(torus, 3, 3, _all_alive) == []


def test_detour_around_dead_node():
    torus = Torus((2, 2, 2))
    # 0 -> 3 normally crosses 1 or 2; kill 1 and the path must avoid it.
    path = alive_path(torus, 0, 3, _kill_node(torus, 1))
    assert path is not None
    node = 0
    for direction in path:
        node = torus.neighbor(node, direction)
        assert node != 1
    assert node == 3


def test_fully_partitioned_pair_returns_none():
    # On a 1-D chain of 3 (no wrap), killing the middle node
    # disconnects the endpoints entirely.
    torus = Torus((3,), wrap=False)
    assert alive_path(torus, 0, 2, _kill_node(torus, 1)) is None


def test_dead_destination_returns_none():
    torus = Torus((2, 2, 2))
    assert alive_path(torus, 0, 5, _kill_node(torus, 5)) is None


def test_asymmetric_single_direction_death():
    """Only one direction of one link dies: forward traffic detours,
    reverse traffic still uses the direct link."""
    torus = Torus((4,), wrap=True)
    broken = (0, Direction(0, +1))  # 0 -> 1 is down; 1 -> 0 still up

    def alive(node, direction):
        return (node, direction) != broken

    forward = alive_path(torus, 0, 1, alive)
    assert forward is not None
    assert len(forward) == 3  # the long way around the ring
    reverse = alive_path(torus, 1, 0, alive)
    assert reverse == [Direction(0, -1)]


def test_non_minimal_detour_length():
    torus = Torus((2, 2, 2))
    # Minimal 0 -> 7 distance is 3 hops; with a dead interior node the
    # BFS still finds a live route of at most 5 hops in a 2^3 torus.
    path = alive_path(torus, 0, 7, _kill_node(torus, 3))
    assert path is not None
    assert 3 <= len(path) <= 5
    node = 0
    for direction in path:
        node = torus.neighbor(node, direction)
    assert node == 7


def test_deterministic_across_scheduler_modes():
    """The detour must not depend on the fast-path scheduler flag (the
    chaos harness compares traces across runs, so routing decisions
    must be a pure function of the fault state)."""
    torus = Torus((2, 2, 2))
    picks = []
    for mode in (False, True, False, True):
        with fastpath.force(mode):
            picks.append(tuple(
                tuple(alive_path(torus, src, dst, _kill_node(torus, 6))
                      or []) for src in range(8) for dst in range(8)
                if src != 6 and dst != 6
            ))
    assert len(set(picks)) == 1
