"""Calibration tests: the paper's headline numbers must come out of
the model.  These are the contract between DESIGN.md's calibration
table and the code."""

import pytest

from repro.bench import microbench as mb


def test_mvia_small_message_latency():
    """Section 4.1/5.1: ~18.5 us RTT/2 for small messages."""
    assert mb.via_latency(4) == pytest.approx(18.5, abs=0.5)


def test_mvia_latency_grows_slowly_below_400_bytes():
    """'around 18.5us for messages of size smaller than 400 bytes' —
    by 400 bytes the extra wire+copy time is still under 5us."""
    lat4 = mb.via_latency(4)
    lat400 = mb.via_latency(400)
    assert lat400 - lat4 < 5.0


def test_routing_latency_law():
    """Section 5.1: 12.5 us per extra hop."""
    one = mb.via_latency(4, hops=1)
    four = mb.via_latency(4, hops=4)
    per_hop = (four - one) / 3
    assert per_hop == pytest.approx(12.5, abs=0.5)


def test_mvia_simultaneous_bandwidth():
    """Section 4.1: simultaneous send bandwidth approaching 110 MB/s."""
    bw = mb.via_simultaneous_bandwidth(2_000_000)
    assert bw == pytest.approx(110.0, abs=4.0)


def test_tcp_latency_at_least_30_percent_higher():
    via = mb.via_latency(4)
    tcp = mb.tcp_latency(4)
    assert tcp >= 1.3 * via


def test_tcp_simultaneous_gap():
    """Section 4.1: M-VIA simultaneous ~37% better than TCP."""
    via = mb.via_simultaneous_bandwidth(2_000_000)
    tcp = mb.tcp_simultaneous_bandwidth(2_000_000)
    assert via / tcp == pytest.approx(1.37, abs=0.12)


def test_pingpong_gap_only_marginal():
    """Section 4.1: pingpong bandwidth 'marginally better' for M-VIA."""
    via = mb.via_pingpong_bandwidth(1_000_000, repeats=3)
    tcp = mb.tcp_pingpong_bandwidth(1_000_000, repeats=3)
    assert via > tcp
    assert via / tcp < 1.35


def test_mpi_latency_close_to_raw_via():
    """Section 5.1: 'small implementation overhead of MPI/QMP' — the
    MPI RTT/2 sits within ~1.5us of raw M-VIA."""
    assert mb.mpi_latency(4) == pytest.approx(18.5, abs=1.5)


def test_host_overhead_near_6us():
    """Section 4.1: ~6us of send+receive host overhead.  Removing the
    host overheads (the VIA parameters) shrinks latency by ~that."""
    from repro.hw.params import ViaParams

    baseline = mb.via_latency(4)
    free_host = mb.via_latency(
        4, via_params=ViaParams(send_overhead=0.0, recv_overhead=0.0)
    )
    assert baseline - free_host == pytest.approx(6.0, abs=0.8)
