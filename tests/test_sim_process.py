"""Tests for generator-based processes."""

import pytest

from repro.errors import DeadlockError, InterruptError, SimulationError
from repro.sim import Simulator
from tests.conftest import run


def test_process_returns_value(sim):
    def proc():
        yield sim.timeout(1)
        return 99

    assert run(sim, proc()) == 99


def test_process_is_waitable_event(sim):
    def child():
        yield sim.timeout(3)
        return "child-done"

    def parent():
        value = yield sim.spawn(child())
        return (value, sim.now)

    assert run(sim, parent()) == ("child-done", 3)


def test_spawn_requires_generator(sim):
    def not_a_generator():
        return 1

    with pytest.raises(SimulationError):
        sim.spawn(not_a_generator)  # type: ignore[arg-type]


def test_yield_non_event_fails_process(sim):
    def bad():
        yield 42

    process = sim.spawn(bad())

    def parent():
        with pytest.raises(SimulationError):
            yield process
        return "ok"

    assert run(sim, parent()) == "ok"


def test_crash_without_waiter_surfaces(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("crash")

    sim.spawn(bad())
    # The original exception resurfaces from run(), annotated with the
    # crashing process's name.
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_exception_delivered_to_waiter(sim):
    def bad():
        yield sim.timeout(1)
        raise ValueError("inner")

    process = sim.spawn(bad())

    def parent():
        with pytest.raises(ValueError):
            yield process
        return "caught"

    assert run(sim, parent()) == "caught"


def test_interrupt_throws_interrupt_error(sim):
    record = {}

    def sleeper():
        try:
            yield sim.timeout(100)
        except InterruptError as exc:
            record["cause"] = exc.cause
            record["time"] = sim.now
        return "done"

    def killer(target):
        yield sim.timeout(7)
        target.interrupt("reason")

    target = sim.spawn(sleeper())
    sim.spawn(killer(target))
    assert run(sim, _await(sim, target)) == "done"
    assert record == {"cause": "reason", "time": 7}


def _await(sim, process):
    value = yield process
    return value


def test_interrupted_process_can_rewait(sim):
    def sleeper():
        timeout = sim.timeout(50)
        try:
            yield timeout
        except InterruptError:
            pass
        # Wait on a fresh event; the old timeout firing later must not
        # resume us incorrectly.
        yield sim.timeout(100)
        return sim.now

    def killer(target):
        yield sim.timeout(5)
        target.interrupt()

    target = sim.spawn(sleeper())
    sim.spawn(killer(target))
    assert run(sim, _await(sim, target)) == 105


def test_interrupt_dead_process_rejected(sim):
    def quick():
        yield sim.timeout(1)

    process = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_yield_already_processed_event(sim):
    timeout = sim.timeout(1, value="old")
    sim.run()

    def proc():
        value = yield timeout
        return (value, sim.now)

    # Resumes with the original value without time travel.
    assert run(sim, proc()) == ("old", 1)


def test_run_until_complete_deadlock_detection(sim):
    def stuck():
        yield sim.event("never")

    process = sim.spawn(stuck())
    with pytest.raises(DeadlockError):
        sim.run_until_complete(process)


def test_run_until_complete_limit(sim):
    def slow():
        yield sim.timeout(1000)

    process = sim.spawn(slow())
    with pytest.raises(SimulationError):
        sim.run_until_complete(process, limit=10)


def test_nested_subroutines_yield_from(sim):
    def inner():
        yield sim.timeout(2)
        return "inner-value"

    def outer():
        value = yield from inner()
        yield sim.timeout(1)
        return value + "!"

    assert run(sim, outer()) == "inner-value!"
    assert sim.now == 3
