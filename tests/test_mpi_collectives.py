"""Tests for MPI collectives on mesh and generic groups."""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.errors import MpiError
from repro.mpi import MAX, SUM


def _world(dims, wrap=True):
    cluster = build_mesh(dims, wrap=wrap)
    return cluster, build_world(cluster)


def test_bcast_delivers_everywhere():
    cluster, comms = _world((2, 2, 2))

    def program(comm):
        data = {"v": 42} if comm.rank == 0 else None
        result = yield from comm.bcast(root=0, nbytes=64, data=data)
        return result["v"]

    assert run_mpi(cluster, program, comms=comms) == [42] * 8


def test_bcast_nonzero_root():
    cluster, comms = _world((3, 3))

    def program(comm):
        data = "from4" if comm.rank == 4 else None
        result = yield from comm.bcast(root=4, nbytes=32, data=data)
        return result

    assert run_mpi(cluster, program, comms=comms) == ["from4"] * 9


def test_reduce_sums_at_root():
    cluster, comms = _world((2, 2))

    def program(comm):
        result = yield from comm.reduce(
            root=0, nbytes=8, op=SUM, data=np.float64(comm.rank + 1)
        )
        return None if result is None else float(result)

    results = run_mpi(cluster, program, comms=comms)
    assert results[0] == 10.0
    assert results[1:] == [None, None, None]


def test_allreduce_max():
    cluster, comms = _world((2, 2, 2))

    def program(comm):
        result = yield from comm.allreduce(
            nbytes=8, op=MAX, data=np.float64(comm.rank)
        )
        return float(result)

    assert run_mpi(cluster, program, comms=comms) == [7.0] * 8


def test_allreduce_array():
    cluster, comms = _world((2, 2))

    def program(comm):
        data = np.full(10, float(comm.rank))
        result = yield from comm.allreduce(nbytes=80, data=data)
        return result

    results = run_mpi(cluster, program, comms=comms)
    for result in results:
        assert np.allclose(result, 6.0)  # 0+1+2+3


def test_barrier_synchronizes():
    cluster, comms = _world((2, 2))
    after = []

    def program(comm):
        sim = comm.engine.sim
        # Stagger arrival at the barrier.
        yield sim.timeout(100.0 * comm.rank)
        yield from comm.barrier()
        after.append(sim.now)
        return None

    run_mpi(cluster, program, comms=comms)
    # Nobody leaves before the last arrival (t=300).
    assert min(after) >= 300.0


@pytest.mark.parametrize("algorithm", ["sdf", "opt"])
def test_scatter_delivers_slices(algorithm):
    cluster, comms = _world((3, 3))

    def program(comm):
        data = None
        if comm.rank == 2:
            data = [f"s{r}" for r in range(comm.size)]
        result = yield from comm.scatter(root=2, nbytes=128, data=data,
                                         algorithm=algorithm)
        return result

    assert run_mpi(cluster, program, comms=comms) == [
        f"s{r}" for r in range(9)
    ]


def test_scatter_validates_data_length():
    cluster, comms = _world((2, 2))

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                yield from comm.scatter(root=0, nbytes=8, data=["x"])
        else:
            yield comm.engine.sim.timeout(0)
        return None

    # Only rank 0 exercises the validation; others idle.
    cluster2, comms2 = _world((2, 2))

    def rank0_only(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                yield from comm.scatter(root=0, nbytes=8, data=["x"])
        yield comm.engine.sim.timeout(0)
        return True

    assert all(run_mpi(cluster2, rank0_only, comms=comms2))


@pytest.mark.parametrize("algorithm", ["sdf", "opt"])
def test_gather_collects_all(algorithm):
    cluster, comms = _world((2, 2, 2))

    def program(comm):
        result = yield from comm.gather(root=0, nbytes=64,
                                        data=f"d{comm.rank}",
                                        algorithm=algorithm)
        return result

    results = run_mpi(cluster, program, comms=comms)
    assert results[0] == [f"d{r}" for r in range(8)]
    assert results[1] is None


def test_alltoall_full_exchange():
    cluster, comms = _world((2, 2))

    def program(comm):
        data = [f"{comm.rank}->{d}" for d in range(comm.size)]
        result = yield from comm.alltoall(nbytes=32, data=data)
        return result

    results = run_mpi(cluster, program, comms=comms)
    for rank, received in enumerate(results):
        assert received == [f"{s}->{rank}" for s in range(4)]


def test_sub_communicator_uses_binomial_fallback():
    cluster, comms = _world((2, 2))

    def program(comm):
        sub = comm.create([0, 1, 2])
        if sub is None:
            return None
        result = yield from sub.allreduce(
            nbytes=8, data=np.float64(sub.rank)
        )
        return float(result)

    results = run_mpi(cluster, program, comms=comms)
    assert results[:3] == [3.0, 3.0, 3.0]
    assert results[3] is None


def test_comm_dup_isolates_contexts():
    cluster, comms = _world((2,), wrap=False)

    def program(comm):
        dup = comm.dup()
        assert dup.context != comm.context
        # Traffic on the dup matches only dup receives.
        if comm.rank == 0:
            yield from dup.send(1, tag=1, nbytes=8, data="dup")
            yield from comm.send(1, tag=1, nbytes=8, data="orig")
        else:
            orig = yield from comm.recv(source=0, tag=1, nbytes=64)
            duped = yield from dup.recv(source=0, tag=1, nbytes=64)
            return (orig.received_data, duped.received_data)
        return None

    assert run_mpi(cluster, program)[1] == ("orig", "dup")


def test_fig5_shape_small():
    """Broadcast ~steps x per-hop; global sum ~2x broadcast."""
    cluster, comms = _world((2, 4, 4))
    times = {}

    def program(comm):
        sim = comm.engine.sim
        yield from comm.barrier()
        start = sim.now
        yield from comm.bcast(root=0, nbytes=4)
        times.setdefault("b0", start)
        times["b1"] = max(times.get("b1", 0), sim.now)
        yield from comm.barrier()
        start = sim.now
        yield from comm.allreduce(nbytes=8, data=np.float64(1))
        times.setdefault("s0", start)
        times["s1"] = max(times.get("s1", 0), sim.now)
        return None

    run_mpi(cluster, program, comms=comms)
    bcast_time = times["b1"] - times["b0"]
    sum_time = times["s1"] - times["s0"]
    # 2+4+4 -> 1+2+2 = 5 steps at ~20us, within a generous band.
    assert 70 <= bcast_time <= 160
    # "roughly twice as many communication steps" (section 5.2); small
    # meshes skew a bit high from per-node combining overhead.
    assert 1.5 <= sum_time / bcast_time <= 3.0
