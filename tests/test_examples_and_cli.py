"""Integration tests: the shipped examples and the bench CLI."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return out.getvalue()


def test_quickstart_example():
    output = _run_example("quickstart.py")
    assert "total simulated time" in output
    assert "'rank_sum': 36.0" in output


def test_raw_via_pingpong_example():
    output = _run_example("raw_via_pingpong.py")
    assert "M-VIA 4-byte RTT/2: 18." in output
    assert "TCP" in output
    assert "110" in output  # simultaneous bandwidth


def test_lqcd_halo_exchange_example():
    output = _run_example("lqcd_halo_exchange.py")
    assert "identical on all 8 ranks" in output
    assert "surface-to-volume ratio: 1.50" in output


def test_kernel_collectives_example():
    output = _run_example("kernel_collectives.py")
    assert "interrupt-level" in output
    assert "faster" in output
    assert "utilization" in output


@pytest.mark.slow
def test_scatter_algorithms_example():
    output = _run_example("scatter_algorithms.py")
    assert "OPT must be optimal" not in output  # no assertion message
    assert "step-model speedup" in output
    assert "simulated speedup" in output


def test_cli_runs_routing(capsys):
    from repro.bench.__main__ import main

    assert main(["routing", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "Routing latency" in captured.out
    assert "12.5" in captured.out


def test_cli_csv_mode(capsys):
    from repro.bench.__main__ import main

    assert main(["routing", "--quick", "--csv"]) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("hops,")


def test_cli_rejects_unknown():
    from repro.bench.__main__ import main
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError):
        main(["fig99"])


def test_lqcd_fault_tolerance_example():
    output = _run_example("lqcd_fault_tolerance.py")
    assert "victim rank 5 crashes" in output
    assert "shrunk to 7 ranks" in output
    assert "all 7 survivors recovered" in output
    assert "no operation hung" in output


def test_cli_chaos_flag(capsys):
    from repro.bench.__main__ import main

    assert main(["--chaos", "2", "--fault-seed", "5"]) == 0
    captured = capsys.readouterr()
    assert "Chaos campaigns (seed 5)" in captured.out
    assert "deterministic" in captured.out


def test_cli_requires_experiments_or_chaos():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main([])
