"""Tests for Resource and PriorityResource."""

import pytest

from repro.errors import SimulationError
from repro.sim import PriorityResource, Resource
from tests.conftest import run


def test_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_mutex_serializes(sim):
    resource = Resource(sim, 1)
    log = []

    def worker(tag):
        yield from resource.use(10)
        log.append((tag, sim.now))

    for tag in ("a", "b", "c"):
        sim.spawn(worker(tag))
    sim.run()
    assert log == [("a", 10), ("b", 20), ("c", 30)]


def test_capacity_two_runs_pairs(sim):
    resource = Resource(sim, 2)
    log = []

    def worker(tag):
        yield from resource.use(10)
        log.append((tag, sim.now))

    for tag in "abcd":
        sim.spawn(worker(tag))
    sim.run()
    assert [t for _tag, t in log] == [10, 10, 20, 20]


def test_release_requires_holder(sim):
    resource = Resource(sim, 1)
    request = resource.request()
    sim.run()
    resource.release(request)
    with pytest.raises(SimulationError):
        resource.release(request)


def test_count_tracks_holders(sim):
    resource = Resource(sim, 2)
    r1 = resource.request()
    r2 = resource.request()
    sim.run()
    assert resource.count == 2
    resource.release(r1)
    assert resource.count == 1
    resource.release(r2)
    assert resource.count == 0


def test_stats_counts_waits(sim):
    resource = Resource(sim, 1)

    def worker():
        yield from resource.use(5)

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run()
    assert resource.stats["grants"] == 2
    assert resource.stats["waits"] == 1


def test_priority_resource_orders_waiters(sim):
    resource = PriorityResource(sim, 1)
    log = []

    def worker(tag, priority):
        yield from resource.use(10, priority)
        log.append(tag)

    def submit():
        # Occupy first, then queue three waiters with priorities.
        req = resource.request(0)
        yield req
        sim.spawn(worker("low", 5))
        sim.spawn(worker("high", 0))
        sim.spawn(worker("mid", 2))
        yield sim.timeout(1)
        resource.release(req)

    run(sim, submit())
    sim.run()
    assert log == ["high", "mid", "low"]


def test_priority_fifo_within_level(sim):
    resource = PriorityResource(sim, 1)
    log = []

    def worker(tag):
        yield from resource.use(1, priority=3)
        log.append(tag)

    def submit():
        req = resource.request(0)
        yield req
        for tag in ("first", "second", "third"):
            sim.spawn(worker(tag))
        yield sim.timeout(1)
        resource.release(req)

    run(sim, submit())
    sim.run()
    assert log == ["first", "second", "third"]


def test_use_releases_on_exception(sim):
    resource = Resource(sim, 1)

    def bad():
        request = resource.request()
        yield request
        try:
            raise RuntimeError("while holding")
        finally:
            resource.release(request)

    def watcher():
        process = sim.spawn(bad())
        with pytest.raises(RuntimeError):
            yield process
        # The resource is free again.
        yield from resource.use(1)
        return "acquired"

    assert run(sim, watcher()) == "acquired"
