"""Wall-clock telemetry plane: registry, merge, exposition, export.

Covers the PR's correctness claims:

- snapshot merge is associative across >= 3 worker snapshots (exact
  for counts/buckets, float moments to rounding — Welford's parallel
  merge is only associative up to the last ulp);
- histogram percentiles track a sorted-sample reference within bucket
  resolution;
- the Prometheus text exposition parses (TYPE lines, label grammar,
  cumulative ``_bucket`` series ending at ``+Inf`` == ``_count``);
- with the plane *disabled*, the seed fig2/fig5 tables and the
  differential-harness span sets are bit-identical (telemetry is
  out-of-band wall-clock: enabling it must not perturb sim results);
- the unified wall+sim trace passes schema validation with both clock
  domains present.
"""

from __future__ import annotations

import json
import math
import random
import re

import pytest

from repro import telemetry
from repro.telemetry.events import EventLog
from repro.telemetry.registry import (
    MetricsRegistry,
    geometric_bounds,
    histogram_percentile,
    merge_snapshots,
    snapshot_counter,
    to_prometheus,
    top_counters,
)


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------

def test_counter_gauge_histogram_roundtrip():
    reg = MetricsRegistry()
    reg.counter("jobs_total").inc()
    reg.counter("jobs_total").inc(4)
    reg.counter("jobs_total", outcome="failed").inc()
    reg.gauge("queue_depth").set(7)
    reg.histogram("latency_seconds").observe(0.25)
    snap = reg.snapshot()
    assert snap["counters"]["jobs_total"][""] == 5
    assert snapshot_counter(snap, "jobs_total") == 5
    assert snapshot_counter(snap, "jobs_total", outcome="failed") == 1
    assert snap["gauges"]["queue_depth"][""] == 7
    state = snap["histograms"]["latency_seconds"][""]
    assert state["count"] == 1 and state["min"] == 0.25


def test_counter_rejects_negative_and_bad_names():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("jobs_total").inc(-1)
    with pytest.raises(ValueError):
        reg.counter("bad name!")


def test_histogram_bounds_must_increase():
    from repro.telemetry.registry import Histogram

    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_geometric_bounds_ladder():
    bounds = geometric_bounds(0.01, 100.0, per_decade=2)
    assert bounds[0] == pytest.approx(0.01)
    assert bounds[-1] == pytest.approx(100.0)
    assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_top_counters_ordering():
    reg = MetricsRegistry()
    reg.counter("a_total").inc(3)
    reg.counter("b_total").inc(9)
    reg.counter("b_total", kind="x").inc(9)
    ranked = top_counters(reg.snapshot(), limit=2)
    assert ranked[0][1] == 9 and ranked[1][1] == 9
    # Ties break by rendered series name.
    assert ranked[0][0] < ranked[1][0]


# ---------------------------------------------------------------------------
# Percentile accuracy vs a sorted reference
# ---------------------------------------------------------------------------

def _sorted_percentile(samples, q):
    ordered = sorted(samples)
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def test_histogram_percentiles_track_sorted_reference():
    from repro.telemetry.registry import Histogram

    rng = random.Random(1234)
    # Fine ladder: 9 buckets/decade => neighbouring bounds are a factor
    # of 10**(1/9) ~ 1.29 apart, which bounds the estimate error.
    hist = Histogram(bounds=geometric_bounds(1e-4, 10.0, per_decade=9))
    samples = [rng.lognormvariate(-3.0, 1.0) for _ in range(5000)]
    for value in samples:
        hist.observe(value)
    state = hist.state()
    ratio_bound = 10 ** (1 / 9)
    for q in (10.0, 50.0, 90.0, 99.0):
        estimate = histogram_percentile(state, q)
        reference = _sorted_percentile(samples, q)
        assert reference / ratio_bound <= estimate <= reference * ratio_bound
    # Clamped to the sample range at the extremes.
    assert histogram_percentile(state, 0.0) >= min(samples)
    assert histogram_percentile(state, 100.0) <= max(samples)


def test_histogram_percentile_edge_cases():
    from repro.telemetry.registry import Histogram

    hist = Histogram(bounds=(1.0, 2.0))
    with pytest.raises(ValueError):
        histogram_percentile(hist.state(), 50.0)  # empty
    hist.observe(1.5)
    assert histogram_percentile(hist.state(), 50.0) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        histogram_percentile(hist.state(), 101.0)


# ---------------------------------------------------------------------------
# Merge: associative across >= 3 worker snapshots
# ---------------------------------------------------------------------------

def _worker_snapshot(seed):
    rng = random.Random(seed)
    reg = MetricsRegistry()
    for _ in range(rng.randint(5, 20)):
        reg.counter("jobs_total", outcome=rng.choice(("ok", "failed"))).inc()
    reg.gauge("queue_depth").set(rng.randint(0, 50))
    hist = reg.histogram("latency_seconds")
    for _ in range(200):
        hist.observe(rng.lognormvariate(-5.0, 1.5))
    return reg.snapshot()


def _assert_snapshots_equivalent(left, right):
    """Counters/gauges/bucket counts exact; float moments to rounding."""
    assert left["counters"] == right["counters"]
    assert left["gauges"] == right["gauges"]
    assert set(left["histograms"]) == set(right["histograms"])
    for name in left["histograms"]:
        assert set(left["histograms"][name]) == set(right["histograms"][name])
        for key in left["histograms"][name]:
            a = left["histograms"][name][key]
            b = right["histograms"][name][key]
            assert a["count"] == b["count"]
            assert a["buckets"] == b["buckets"]
            assert a["min"] == b["min"] and a["max"] == b["max"]
            for field in ("mean", "m2", "sum"):
                assert math.isclose(a[field], b[field], rel_tol=1e-9)


def test_merge_associative_three_workers():
    a, b, c = (_worker_snapshot(seed) for seed in (1, 2, 3))
    left = merge_snapshots([merge_snapshots([a, b]), c])
    right = merge_snapshots([a, merge_snapshots([b, c])])
    _assert_snapshots_equivalent(left, right)


def test_merge_matches_single_stream():
    # Merging per-worker histograms must agree with one histogram that
    # saw every sample (counts exactly, moments to rounding).
    from repro.telemetry.registry import Histogram

    rng = random.Random(99)
    samples = [rng.uniform(0.001, 5.0) for _ in range(900)]
    whole = Histogram()
    for value in samples:
        whole.observe(value)
    parts = []
    for chunk in (samples[:300], samples[300:600], samples[600:]):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_seconds")
        for value in chunk:
            hist.observe(value)
        parts.append(reg.snapshot())
    merged = merge_snapshots(parts)["histograms"]["latency_seconds"][""]
    reference = whole.state()
    assert merged["count"] == reference["count"]
    assert merged["buckets"] == reference["buckets"]
    assert math.isclose(merged["mean"], reference["mean"], rel_tol=1e-9)
    assert math.isclose(merged["sum"], reference["sum"], rel_tol=1e-9)


def test_absorb_worker_keeps_newest_snapshot_per_key():
    tel = telemetry.enable("test-absorb")
    first = MetricsRegistry()
    first.counter("worker_jobs_total").inc(3)
    tel.absorb_worker("w0", first.snapshot())
    second = MetricsRegistry()
    second.counter("worker_jobs_total").inc(5)
    # Cumulative re-ship from the same worker replaces, never adds.
    tel.absorb_worker("w0", second.snapshot())
    merged = tel.merged_snapshot()
    assert snapshot_counter(merged, "worker_jobs_total") == 5


# ---------------------------------------------------------------------------
# Prometheus text exposition grammar
# ---------------------------------------------------------------------------

_METRIC_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' \S+$')
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def test_prometheus_exposition_grammar():
    reg = MetricsRegistry()
    reg.counter("jobs_total", outcome="ok").inc(3)
    reg.gauge("queue_depth").set(2)
    hist = reg.histogram("latency_seconds", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    text = to_prometheus(reg.snapshot())
    assert text.endswith("\n")
    for line in text.splitlines():
        assert _METRIC_LINE.match(line) or _TYPE_LINE.match(line), line


def test_prometheus_histogram_series_cumulative():
    reg = MetricsRegistry()
    hist = reg.histogram("latency_seconds", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    text = to_prometheus(reg.snapshot())
    buckets = [float(line.rsplit(" ", 1)[1])
               for line in text.splitlines()
               if line.startswith("latency_seconds_bucket")]
    assert buckets == sorted(buckets)  # cumulative
    assert 'le="+Inf"' in text
    assert buckets[-1] == 3.0
    count = [line for line in text.splitlines()
             if line.startswith("latency_seconds_count")]
    assert count and float(count[0].rsplit(" ", 1)[1]) == 3.0
    total = [line for line in text.splitlines()
             if line.startswith("latency_seconds_sum")]
    assert total and float(total[0].rsplit(" ", 1)[1]) == pytest.approx(5.55)


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------

def test_event_log_levels_and_tail(tmp_path):
    log = EventLog(t0=0.0, maxlen=4)
    log.info("svc.start", "starting", run="r1", port=7)
    log.warn("svc.shed", "shed one")
    log.error("svc.crash", "boom")
    with pytest.raises(ValueError):
        log.log("loud", "x", "bad level")
    records = log.records()
    assert [r["level"] for r in records] == ["info", "warn", "error"]
    assert records[0]["fields"] == {"port": 7}
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert len(log.tail(2)) == 2
    # Ring buffer: a fourth+fifth event evict the oldest.
    log.debug("a", "x")
    log.debug("a", "y")
    assert len(log) == 4
    assert log.records()[0]["level"] == "warn"
    path = tmp_path / "events.jsonl"
    log.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == 4
    assert all(json.loads(line)["schema"] for line in lines)


# ---------------------------------------------------------------------------
# Plane gating, hang summary
# ---------------------------------------------------------------------------

def test_plane_disabled_by_default_and_idempotent_enable():
    assert telemetry.ACTIVE is None and not telemetry.enabled()
    first = telemetry.enable()
    assert telemetry.enable("named-later") is first
    assert first.run_id == "named-later"  # back-filled, not replaced
    telemetry.disable()
    assert telemetry.ACTIVE is None


def test_hang_summary_disabled_is_none():
    assert telemetry.hang_summary() is None


def test_hang_summary_lists_counters_and_events():
    tel = telemetry.enable("hang-test")
    tel.registry.counter("service_shed_total").inc(12)
    tel.events.warn("fleet.crash", "worker 3 died")
    summary = telemetry.hang_summary(top=5, tail=5)
    assert "service_shed_total" in summary
    assert "fleet.crash" in summary


def test_hang_report_embeds_telemetry_section():
    from repro.cluster.builder import build_mesh

    tel = telemetry.enable("hang-report")
    tel.registry.counter("service_shed_total").inc(2)
    cluster = build_mesh((2,), wrap=False)
    report = cluster.hang_report()
    assert "service_shed_total" in report


# ---------------------------------------------------------------------------
# Disabled plane: seed tables and span sets bit-identical
# ---------------------------------------------------------------------------

def _fig_table(name):
    from repro.bench.harness import run_experiment

    return run_experiment(name, quick=True).render()


@pytest.mark.parametrize("name", ["fig2", "fig5"])
def test_tables_identical_with_plane_on_and_off(name):
    baseline = _fig_table(name)
    telemetry.enable("perturbation-probe")
    assert _fig_table(name) == baseline
    telemetry.disable()
    assert _fig_table(name) == baseline


def test_pdes_table_identical_with_plane_on_and_off():
    from repro.pdes import run_sharded

    baseline = run_sharded((2, 2), workload="pingpong", nshards=2)
    telemetry.enable("pdes-probe")
    instrumented = run_sharded((2, 2), workload="pingpong", nshards=2)
    telemetry.disable()
    assert instrumented.table == baseline.table
    assert instrumented.events_processed == baseline.events_processed


def test_observed_span_sets_identical_with_plane_on_and_off():
    from repro.bench.observability import traced_collective

    baseline = traced_collective(dims=(2, 2), nbytes=256)
    telemetry.enable("span-probe")
    instrumented = traced_collective(dims=(2, 2), nbytes=256)
    telemetry.disable()
    assert instrumented.span_keys() == baseline.span_keys()


# ---------------------------------------------------------------------------
# Unified wall+sim trace export
# ---------------------------------------------------------------------------

def _unified_trace(tmp_path):
    from repro.bench.observability import traced_collective
    from repro.telemetry.export import write_unified_trace

    tel = telemetry.enable("trace-test")
    start = tel.now()
    tel.wall_span("dispatch", "job-1", "fleet", start, start + 0.25)
    tel.registry.counter("fleet_dispatch_total").inc()
    recorder = traced_collective(dims=(2, 2), nbytes=256)
    path = tmp_path / "unified.json"
    trace = write_unified_trace(tel, str(path), [("collective", recorder)])
    return trace, path


def test_unified_trace_validates_with_both_domains(tmp_path):
    from repro.telemetry.export import validate_unified_trace

    trace, path = _unified_trace(tmp_path)
    assert validate_unified_trace(trace) == []
    on_disk = json.loads(path.read_text())
    assert validate_unified_trace(on_disk) == []
    clocks = {event["args"]["clock"]
              for event in trace["traceEvents"]
              if event.get("ph") in ("X", "i")}
    assert clocks == {"wall", "sim"}
    assert trace["otherData"]["clockDomains"] == ["wall", "sim"]


def test_unified_trace_tracks_prefixed_by_domain(tmp_path):
    trace, _path = _unified_trace(tmp_path)
    names = {event["args"]["name"]
             for event in trace["traceEvents"]
             if event.get("ph") == "M" and event["name"] == "process_name"}
    assert any(name.startswith("wall:") for name in names)
    assert any(name.startswith("sim:") for name in names)
    # One pid per track: no collisions between the clock domains.
    pid_names = {}
    for event in trace["traceEvents"]:
        if event.get("ph") == "M" and event["name"] == "process_name":
            pid_names.setdefault(event["pid"], set()).add(
                event["args"]["name"])
    assert all(len(names) == 1 for names in pid_names.values())


def test_unified_trace_validation_catches_tampering(tmp_path):
    from repro.telemetry.export import validate_unified_trace

    trace, _path = _unified_trace(tmp_path)
    broken = json.loads(json.dumps(trace))
    for event in broken["traceEvents"]:
        if event.get("ph") == "X":
            event["args"].pop("clock", None)
            break
    assert validate_unified_trace(broken)


# ---------------------------------------------------------------------------
# Perf-regression sentinel
# ---------------------------------------------------------------------------

def test_regression_sentinel_pass_and_fail(capsys):
    from repro.bench.regression import compare

    baseline = {"fig2": {"wall_s": 1.0, "events": 100},
                "sharded": {"n2": {"wall_seconds": 2.0}}}
    same, regressed = compare(baseline, json.loads(json.dumps(baseline)))
    assert not regressed
    slower = {"fig2": {"wall_s": 1.6, "events": 100},
              "sharded": {"n2": {"wall_seconds": 2.0}}}
    lines, regressed = compare(baseline, slower, tolerance=0.2)
    assert regressed
    assert any("REGRESSED" in line for line in lines)
    # Event counts are determinism facts, not perf facts: changing one
    # must not trip the time-only sentinel.
    noisy = {"fig2": {"wall_s": 1.0, "events": 999},
             "sharded": {"n2": {"wall_seconds": 2.0}}}
    _lines, regressed = compare(baseline, noisy)
    assert not regressed


def test_regression_sentinel_cli_exit_codes(tmp_path):
    from repro.bench.regression import main

    baseline = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps({"fig2": {"wall_s": 1.0}}))
    fresh.write_text(json.dumps({"fig2": {"wall_s": 1.05}}))
    assert main([str(baseline), str(fresh)]) == 0
    fresh.write_text(json.dumps({"fig2": {"wall_s": 9.0}}))
    assert main([str(baseline), str(fresh)]) == 1


# ---------------------------------------------------------------------------
# Service metrics op (module-level response builder; no fleet needed)
# ---------------------------------------------------------------------------

def test_metrics_response_disabled_and_enabled():
    from repro.service.server import metrics_response

    off = metrics_response(request_id="r1")
    assert off["status"] == "ok" and off["enabled"] is False
    tel = telemetry.enable("metrics-op")
    tel.registry.counter("service_requests_total").inc(2)
    tel.events.info("svc.probe", "hello")
    on = metrics_response(request_id="r2")
    assert on["enabled"] is True and on["run"] == "metrics-op"
    assert snapshot_counter(on["snapshot"], "service_requests_total") == 2
    assert "service_requests_total 2" in on["prometheus"]
    assert on["events"][-1]["schema"] == "svc.probe"
