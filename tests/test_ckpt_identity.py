"""The checkpoint differential harness (the PR's core guarantee).

Crash-at-window -> restore -> run-to-completion must be **bit
identical** to an uninterrupted run: experiment tables repr-identical,
per-rank results equal, flight-recorder span sets equal.  Pinned here
at 1/2/4 shards, for in-process and subprocess execution, for crashes
at seeded + boundary windows, and for resume-from-store (including a
forced rollback to an earlier barrier via ``drop_windows_after``).
"""

import zlib

import pytest

from repro.ckpt import CheckpointStore
from repro.pdes import CheckpointPolicy, run_sharded

DIMS = (4, 2, 2)          # longest axis 4 => supports the 1/2/4 sweep
WORKLOAD = "aggregate"


def _mix(salt: str) -> int:
    return zlib.crc32(f"ckpt-identity:{salt}".encode()) & 0x7FFFFFFF


@pytest.fixture(scope="module")
def references():
    """Uninterrupted runs (with the recorder on) per shard count."""
    return {
        n: run_sharded(DIMS, workload=WORKLOAD, nshards=n, observe=True)
        for n in (1, 2, 4)
    }


def _assert_identical(result, ref):
    assert repr(result.table) == repr(ref.table)
    assert result.per_rank == ref.per_rank
    assert result.windows == ref.windows
    assert set(result.recorder.span_keys()) \
        == set(ref.recorder.span_keys())


class TestCrashAtWindowDifferential:
    @pytest.mark.parametrize("nshards", [1, 2, 4])
    def test_crash_replay_is_bit_identical(self, references, nshards):
        ref = references[nshards]
        # The kill fires when the coordinator's window counter (which
        # runs 0..windows-1) matches.  A single shard drains in one
        # window, so only window 0 exists there; multi-shard runs
        # sample the first, a mid-run, the final, and a seeded window:
        # crash-at-*any*-window, sampled.
        if ref.windows == 1:
            picks = [0]
        else:
            picks = sorted({
                1,
                ref.windows // 2,
                ref.windows - 1,
                1 + _mix(f"w:{nshards}") % (ref.windows - 1),
            })
        for window in picks:
            victim = _mix(f"v:{nshards}:{window}") % nshards
            result = run_sharded(
                DIMS, workload=WORKLOAD, nshards=nshards, observe=True,
                checkpoint=CheckpointPolicy(
                    every=16, chaos_kill=(victim, window)),
            )
            assert result.recoveries == 1, \
                f"kill at window {window} did not land"
            _assert_identical(result, ref)

    def test_capture_disabled_still_recovers(self, references):
        # every=0 keeps only the in-memory logs: recovery is full
        # replay from window zero, and still bit-identical.
        ref = references[2]
        result = run_sharded(
            DIMS, workload=WORKLOAD, nshards=2, observe=True,
            checkpoint=CheckpointPolicy(
                every=0, chaos_kill=(1, ref.windows // 3)),
        )
        assert result.recoveries == 1
        assert result.checkpoints == 0
        _assert_identical(result, ref)


class TestSubprocessExecution:
    def test_subprocess_crash_resume_matches_inprocess(self, references):
        # A real SIGKILLed shard process, recovered by respawn+replay,
        # must reproduce the in-process uninterrupted reference.
        ref = references[2]
        result = run_sharded(
            DIMS, workload=WORKLOAD, nshards=2, processes=True,
            observe=True,
            checkpoint=CheckpointPolicy(
                every=32, chaos_kill=(1, ref.windows // 2)),
        )
        assert result.recoveries == 1
        _assert_identical(result, ref)


class TestResumeFromStore:
    def test_resume_skips_completed_windows_bit_identically(
            self, references, tmp_path):
        ref = references[2]
        every = 16

        def run(resume):
            return run_sharded(
                DIMS, workload=WORKLOAD, nshards=2,
                checkpoint=CheckpointPolicy(
                    every=every, store=CheckpointStore(tmp_path),
                    resume=resume),
            )

        full = run(resume=False)
        assert repr(full.table) == repr(ref.table)
        assert full.checkpoints == full.windows // every
        key = full.ckpt_key
        store = CheckpointStore(tmp_path)
        captured = store.windows(key)
        assert captured == [every * (i + 1)
                            for i in range(full.checkpoints)]

        # Resume from the newest barrier: only the tail re-executes.
        resumed = run(resume=True)
        assert resumed.resumed_from == captured[-1]
        assert resumed.windows == full.windows - captured[-1]
        assert repr(resumed.table) == repr(full.table)
        assert resumed.per_rank == full.per_rank

        # Roll back to an early barrier and resume across several
        # capture intervals (re-captures land on the same indices).
        keep = captured[1]
        dropped = store.drop_windows_after(key, keep)
        assert dropped == len(captured) - 2
        replayed = run(resume=True)
        assert replayed.resumed_from == keep
        assert replayed.windows == full.windows - keep
        assert repr(replayed.table) == repr(full.table)
        assert replayed.per_rank == full.per_rank

    def test_crash_and_store_together(self, references, tmp_path):
        # Chaos kill on a store-backed run: recovery replays from the
        # log, captures keep landing, and the result stays identical.
        ref = references[2]
        result = run_sharded(
            DIMS, workload=WORKLOAD, nshards=2,
            checkpoint=CheckpointPolicy(
                every=16, store=CheckpointStore(tmp_path),
                chaos_kill=(0, ref.windows // 2)),
        )
        assert result.recoveries == 1
        assert result.checkpoints == result.windows // 16
        assert repr(result.table) == repr(ref.table)
        assert result.per_rank == ref.per_rank
