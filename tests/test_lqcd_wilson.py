"""Physics tests for the full Wilson fermion operator."""

import numpy as np
import pytest

from repro.lqcd.lattice import LocalLattice
from repro.lqcd.wilson import (
    GAMMA,
    WILSON_FLOPS_PER_SITE,
    WilsonFermionOperator,
)


def test_clifford_algebra():
    """{gamma_mu, gamma_nu} = 2 delta_mu_nu."""
    for mu in range(4):
        for nu in range(4):
            anticommutator = GAMMA[mu] @ GAMMA[nu] + GAMMA[nu] @ GAMMA[mu]
            expected = 2 * np.eye(4) if mu == nu else np.zeros((4, 4))
            assert np.allclose(anticommutator, expected)


def test_gammas_hermitian():
    for mu in range(5):
        assert np.allclose(GAMMA[mu], np.conj(GAMMA[mu].T))


def test_gamma5_anticommutes():
    for mu in range(4):
        assert np.allclose(
            GAMMA[4] @ GAMMA[mu] + GAMMA[mu] @ GAMMA[4],
            np.zeros((4, 4)),
        )
    assert np.allclose(GAMMA[4] @ GAMMA[4], np.eye(4))


@pytest.fixture(scope="module")
def wilson():
    return WilsonFermionOperator(LocalLattice(4, 4, 4, 4), kappa=0.11,
                                 rng=np.random.default_rng(31))


def _dot(op, a, b):
    return complex(np.sum(np.conj(op.interior(a)) * op.interior(b)))


def test_wilson_linearity(wilson):
    a = wilson.random_spinor(np.random.default_rng(1))
    b = wilson.random_spinor(np.random.default_rng(2))
    own = (slice(1, -1),) * 3
    combined = wilson.zeros_spinor()
    combined[own] = 1.5 * a[own] - 2j * b[own]
    lhs = wilson.apply(combined)
    assert np.allclose(
        wilson.interior(lhs),
        1.5 * wilson.interior(wilson.apply(a))
        - 2j * wilson.interior(wilson.apply(b)),
        atol=1e-10,
    )


def test_gamma5_hermiticity(wilson):
    """<a, D b> == <g5 D g5 a, b> — the defining property of a Wilson
    Dirac operator on any gauge background."""
    a = wilson.random_spinor(np.random.default_rng(3))
    b = wilson.random_spinor(np.random.default_rng(4))
    lhs = _dot(wilson, a, wilson.apply(b))
    rhs = _dot(wilson, wilson.apply_dagger(a), b)
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_normal_op_positive_definite(wilson):
    psi = wilson.random_spinor(np.random.default_rng(5))
    value = _dot(wilson, psi, wilson.normal_op(psi))
    assert abs(value.imag) < 1e-8 * abs(value.real)
    assert value.real > 0


def test_free_field_constant_mode():
    """U = 1, constant spinor: the hopping term sums the projectors
    over all 8 directions to 8 * identity, so
    D psi = (1 - 8 kappa) psi."""
    op = WilsonFermionOperator(LocalLattice(4, 4, 4, 4), kappa=0.05)
    op.U[:] = np.eye(3)[None, None, None, None, None]
    psi = op.zeros_spinor()
    psi[1:-1, 1:-1, 1:-1] = 1.0
    result = op.apply(psi)
    expected = 1.0 - 8 * 0.05
    assert np.allclose(op.interior(result), expected, atol=1e-12)


def test_flop_constant():
    assert WILSON_FLOPS_PER_SITE == 1320
    op = WilsonFermionOperator(LocalLattice(2, 2, 2, 2))
    assert op.flops_per_application() == 16 * 1320


def test_kappa_zero_is_identity(wilson):
    op = WilsonFermionOperator(LocalLattice(2, 2, 2, 4), kappa=0.0)
    psi = op.random_spinor(np.random.default_rng(6))
    result = op.apply(psi)
    assert np.allclose(op.interior(result), op.interior(psi))


def test_cg_solves_wilson_normal_equations():
    from repro.lqcd.solver import cg_solve

    op = WilsonFermionOperator(LocalLattice(4, 4, 4, 4), kappa=0.1,
                               rng=np.random.default_rng(32))
    b = op.random_spinor(np.random.default_rng(33))
    result = cg_solve(op, b, tol=1e-8, max_iters=400)
    assert result.converged
    residual = op.normal_op(result.solution)
    own = (slice(1, -1),) * 3
    rel = (np.linalg.norm(residual[own] - b[own])
           / np.linalg.norm(b[own]))
    assert rel < 1e-6
