"""Tests for the extended MPI surface: ssend, probe, allgather,
scatterv/gatherv."""

import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG


def test_ssend_waits_for_matching_recv():
    cluster = build_mesh((2,), wrap=False)
    marks = {}

    def program(comm):
        sim = comm.engine.sim
        if comm.rank == 0:
            start = sim.now
            yield from comm.ssend(1, tag=1, nbytes=64, data="sync")
            marks["send_done"] = sim.now - start
            return None
        # Delay the receive: the ssend must not complete before it.
        yield sim.timeout(500)
        marks["recv_posted"] = sim.now
        request = yield from comm.recv(source=0, tag=1, nbytes=64)
        return request.received_data

    results = run_mpi(cluster, program)
    assert results[1] == "sync"
    # ssend completion waited out the 500us receive delay.
    assert marks["send_done"] >= 500


def test_regular_eager_send_does_not_wait():
    cluster = build_mesh((2,), wrap=False)
    marks = {}

    def program(comm):
        sim = comm.engine.sim
        if comm.rank == 0:
            start = sim.now
            yield from comm.send(1, tag=1, nbytes=64)
            marks["send_done"] = sim.now - start
            return None
        yield sim.timeout(500)
        yield from comm.recv(source=0, tag=1, nbytes=64)
        return None

    run_mpi(cluster, program)
    assert marks["send_done"] < 100  # buffered locally, no rendezvous


def test_iprobe_and_probe():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        sim = comm.engine.sim
        if comm.rank == 0:
            yield sim.timeout(100)
            yield from comm.send(1, tag=42, nbytes=777)
            return None
        assert comm.iprobe() is None
        source, tag, nbytes = yield from comm.probe(source=0,
                                                    tag=ANY_TAG)
        assert (source, tag, nbytes) == (0, 42, 777)
        # Probe did not consume: the message is still receivable.
        assert comm.iprobe(source=0, tag=42) == (0, 42, 777)
        request = yield from comm.recv(source=0, tag=42, nbytes=1024)
        assert request.received_bytes == 777
        assert comm.iprobe() is None
        return "ok"

    assert run_mpi(cluster, program)[1] == "ok"


def test_allgather():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        result = yield from comm.allgather(nbytes=32,
                                           data=f"r{comm.rank}")
        return result

    results = run_mpi(cluster, program, comms=comms)
    expected = [f"r{r}" for r in range(4)]
    assert all(result == expected for result in results)


@pytest.mark.parametrize("algorithm", ["sdf", "opt"])
def test_scatterv_variable_sizes(algorithm):
    cluster = build_mesh((3, 3))
    comms = build_world(cluster)
    sizes = [64 * (r + 1) for r in range(9)]

    def program(comm):
        data = None
        if comm.rank == 0:
            data = [f"slice{r}" for r in range(comm.size)]
        result = yield from comm.scatterv(root=0, sizes=sizes,
                                          data=data,
                                          algorithm=algorithm)
        return result

    assert run_mpi(cluster, program, comms=comms) == [
        f"slice{r}" for r in range(9)
    ]


def test_gatherv_variable_sizes():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)
    sizes = [128, 20000, 64, 50000]  # mixes eager and rendezvous

    def program(comm):
        result = yield from comm.gatherv(root=0, sizes=sizes,
                                         data=f"d{comm.rank}")
        return result

    results = run_mpi(cluster, program, comms=comms)
    assert results[0] == [f"d{r}" for r in range(4)]


def test_scatterv_requires_sizes():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        with pytest.raises(MpiError):
            yield from comm.scatterv(root=0, sizes=None)
        yield comm.engine.sim.timeout(0)
        return True

    assert all(run_mpi(cluster, program))


def test_scatterv_size_count_validated():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                yield from comm.scatterv(root=0, sizes=[1, 2, 3],
                                         data=None)
        yield comm.engine.sim.timeout(0)
        return True

    assert all(run_mpi(cluster, program))
