"""Sharded-vs-sequential bit-identity (the PDES determinism contract).

``run_sharded(nshards=1)`` *is* the sequential reference engine — one
simulator, one full-drain window.  Every test here pins that higher
shard counts (and subprocess execution) reproduce it exactly:
experiment tables repr-identical, flight-recorder span sets identical,
per-rank results identical, reruns identical.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pdes import run_sharded
from repro.pdes.workloads import far_peer, get_workload
from repro.topology.torus import Torus


def _tables(dims, workload, counts, **kw):
    return {
        n: run_sharded(dims, workload=workload, nshards=n, **kw)
        for n in counts
    }


class TestTableIdentity:
    @pytest.mark.parametrize("workload", ["pingpong", "collective"])
    def test_2x2x2_mesh(self, workload):
        results = _tables((2, 2, 2), workload, (1, 2))
        reprs = {n: repr(r.table) for n, r in results.items()}
        assert reprs[1] == reprs[2]

    @pytest.mark.parametrize("workload", ["pingpong", "collective"])
    def test_3x3_mesh(self, workload):
        results = _tables((3, 3), workload, (1, 2, 3))
        reprs = {n: repr(r.table) for n, r in results.items()}
        assert len(set(reprs.values())) == 1

    def test_shard_count_invariance_1_2_4(self):
        # The 1/2/4 sweep needs a longest axis of extent >= 4.
        results = _tables((4, 2, 2), "aggregate", (1, 2, 4))
        reprs = {n: repr(r.table) for n, r in results.items()}
        assert len(set(reprs.values())) == 1
        per_rank = {n: r.per_rank for n, r in results.items()}
        assert per_rank[1] == per_rank[2] == per_rank[4]

    def test_pingpong_crosses_the_cut(self):
        # The fig2-style pingpong spans the longest axis, so any
        # nshards > 1 exercises boundary links, not just local ones.
        torus = Torus((4, 2, 2))
        peer = far_peer(torus)
        result = run_sharded((4, 2, 2), workload="pingpong", nshards=4)
        assert result.table["peer"] == peer
        assert result.windows > 1
        assert result.table["latency_us"] == pytest.approx(
            run_sharded((4, 2, 2), workload="pingpong",
                        nshards=1).table["latency_us"])


class TestNicCollectiveIdentity:
    """The NIC-tier allreduce sharded: wire-level collective frames
    cross shard boundaries, and every shard count reproduces the
    sequential reference bit for bit."""

    def test_tables_identical_1_2_4(self):
        # (4, 2, 2) supports the full 1/2/4 sweep ((2, 2, 2) caps at 2
        # shards — its longest axis has extent 2).
        results = _tables((4, 2, 2), "nic-collective", (1, 2, 4))
        reprs = {n: repr(r.table) for n, r in results.items()}
        assert len(set(reprs.values())) == 1
        per_rank = {n: r.per_rank for n, r in results.items()}
        assert per_rank[1] == per_rank[2] == per_rank[4]

    def test_tables_identical_2x2x2(self):
        results = _tables((2, 2, 2), "nic-collective", (1, 2))
        assert repr(results[1].table) == repr(results[2].table)
        assert results[1].per_rank == results[2].per_rank
        # Sanity on the values themselves: 3 allreduce rounds of
        # rank+1 over 8 ranks.
        assert results[1].table["sums"] == [3 * 36.0] * 8

    def test_span_sets_identical(self):
        spans = {}
        for n in (1, 2):
            result = run_sharded((2, 2, 2), workload="nic-collective",
                                 nshards=n, observe=True)
            spans[n] = frozenset(result.recorder.span_keys())
        assert spans[1] == spans[2]
        kinds = {key[1] for key in spans[1]}
        assert "nic-forward" in kinds and "nic-combine" in kinds

    def test_boundary_links_carry_nic_frames(self):
        """The cut actually carries NIC collective frames — the test
        is not accidentally measuring a shard-local pattern."""
        result = run_sharded((4, 2, 2), workload="nic-collective",
                             nshards=2)
        assert result.windows >= 1
        # Frame accounting: every rank completed 3 allreduces, and the
        # per-rank results prove cross-cut reduction (the global sum
        # includes contributions from both shards).
        assert result.table["sums"] == [3 * 136.0] * 16

    def test_subprocess_match(self):
        inproc = run_sharded((2, 2, 2), workload="nic-collective",
                             nshards=2, processes=False)
        piped = run_sharded((2, 2, 2), workload="nic-collective",
                            nshards=2, processes=True)
        assert repr(inproc.table) == repr(piped.table)
        assert inproc.per_rank == piped.per_rank


class TestSpanSetIdentity:
    @pytest.mark.parametrize("dims,counts,workload", [
        ((2, 2, 2), (1, 2), "collective"),
        ((3, 3), (1, 3), "pingpong"),
    ])
    def test_recorder_spans_identical(self, dims, counts, workload):
        spans = {}
        for n in counts:
            result = run_sharded(dims, workload=workload, nshards=n,
                                 observe=True)
            assert result.recorder is not None
            spans[n] = frozenset(result.recorder.span_keys())
        assert len(set(spans.values())) == 1
        assert spans[counts[0]]  # non-empty: the recorder saw traffic


class TestProcessesAndDeterminism:
    def test_subprocess_workers_match_in_process(self):
        inproc = run_sharded((3, 3), workload="collective", nshards=3,
                             processes=False)
        piped = run_sharded((3, 3), workload="collective", nshards=3,
                            processes=True)
        assert repr(inproc.table) == repr(piped.table)
        assert inproc.per_rank == piped.per_rank
        assert inproc.events_processed == piped.events_processed
        assert inproc.windows == piped.windows

    def test_rerun_determinism(self):
        first = run_sharded((2, 2, 2), workload="aggregate", nshards=2)
        second = run_sharded((2, 2, 2), workload="aggregate", nshards=2)
        assert repr(first.table) == repr(second.table)
        assert first.windows == second.windows
        assert first.events_processed == second.events_processed


class TestAccounting:
    def test_event_totals_aggregate_across_workers(self):
        from repro.sim import core as sim_core

        before = sim_core.TOTAL_EVENTS
        result = run_sharded((2, 2, 2), workload="pingpong", nshards=2,
                             processes=True)
        delta = sim_core.TOTAL_EVENTS - before
        # Every event simulated in the worker processes lands in the
        # parent's global tally (satellite: no more silent undercount).
        assert delta >= result.events_processed
        assert result.events_processed > 0

    def test_result_metadata(self):
        result = run_sharded((3, 3), workload="collective", nshards=2)
        assert result.nshards == 2
        assert result.processes is False
        assert result.now > 0
        assert result.wall_seconds > 0
        assert set(result.per_rank) == set(range(9))


class TestGuards:
    def test_too_many_shards_rejected(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError, match="cannot cut"):
            run_sharded((2, 2, 2), workload="pingpong", nshards=4)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown PDES"):
            get_workload("nope")

    def test_window_limit_guard(self):
        with pytest.raises(SimulationError, match="exceeded 1 window"):
            run_sharded((3, 3), workload="collective", nshards=3,
                        max_windows=1)
