"""Tests for the SPMD runner and engine bring-up."""

import pytest

from repro.cluster import build_engines, build_mesh, build_world, run_mpi
from repro.core.channel import Channel
from repro.errors import ConfigurationError


def test_engines_require_via_stack():
    cluster = build_mesh((2,), wrap=False, stack="tcp")
    with pytest.raises(ConfigurationError):
        build_engines(cluster)


def test_nearest_neighbor_channels_preestablished():
    cluster = build_mesh((2, 2))
    engines = build_engines(cluster)
    for engine in engines:
        for _direction, neighbor in cluster.torus.neighbors(engine.rank):
            assert isinstance(engine.channels.get(neighbor), Channel)


def test_lazy_bringup_option():
    cluster = build_mesh((2, 2))
    engines = build_engines(cluster, connect_neighbors=False)
    assert all(not engine.channels for engine in engines)


def test_run_mpi_returns_in_rank_order():
    cluster = build_mesh((2, 2))

    def program(comm):
        yield comm.engine.sim.timeout(10 - comm.rank)
        return comm.rank * 100

    assert run_mpi(cluster, program) == [0, 100, 200, 300]


def test_run_mpi_with_args():
    cluster = build_mesh((2,), wrap=False)

    def program(comm, offset, label):
        yield comm.engine.sim.timeout(0)
        return (comm.rank + offset, label)

    assert run_mpi(cluster, program, args=(10, "x")) == [
        (10, "x"), (11, "x")
    ]


def test_comms_reusable_across_runs():
    cluster = build_mesh((2,), wrap=False)
    comms = build_world(cluster)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, nbytes=8, data="ping")
            return None
        request = yield from comm.recv(source=0, tag=1, nbytes=64)
        return request.received_data

    first = run_mpi(cluster, program, comms=comms)
    second = run_mpi(cluster, program, comms=comms)
    assert first[1] == second[1] == "ping"


def test_program_exception_propagates():
    cluster = build_mesh((2,), wrap=False)

    def program(comm):
        yield comm.engine.sim.timeout(1)
        if comm.rank == 1:
            raise ValueError("rank 1 exploded")
        return "ok"

    with pytest.raises(ValueError, match="rank 1 exploded"):
        run_mpi(cluster, program)
