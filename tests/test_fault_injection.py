"""Fault-injection tests: wire corruption vs the checksum defense.

The Jlab M-VIA modification added per-packet checksums (section 4)
precisely because corrupted frames otherwise become silent data
corruption.  These tests inject deterministic frame damage and verify
the defense — and its absence.
"""

import pytest

from repro.cluster.builder import build_mesh
from repro.hw.params import GigEParams, HostParams, ViaParams
from repro.via.descriptors import RecvDescriptor, SendDescriptor
from tests.conftest import make_via_pair


def _pair_with_corruption(corrupt_every, verify=True):
    return make_via_pair(
        gige_params=GigEParams(corrupt_every=corrupt_every),
        via_params=ViaParams(verify_checksums=verify),
    )


def test_healthy_wire_by_default(via_pair):
    cluster, _e0, _e1 = via_pair
    for link in cluster.links:
        assert link.corrupt_every is None


def test_corruption_detected_and_counted():
    cluster, (vi0, r0), (vi1, r1) = _pair_with_corruption(5)
    sim = cluster.sim
    received = []

    def receiver():
        for _ in range(8):
            vi1.post_recv(RecvDescriptor(r1, 0, 4096))
        # Only some messages survive; reap whatever arrives.
        for _ in range(8):
            descriptor = yield from vi1.recv_wait()
            received.append(descriptor.received_payload)

    def sender():
        for index in range(8):
            yield from vi0.post_send(SendDescriptor(r0, 0, 100,
                                                    payload=index))

    sim.spawn(receiver())
    process = sim.spawn(sender())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 5000)
    agent = cluster.nodes[1].via.agent
    # Frames were damaged (handshake + data share the counter) and
    # every damaged frame was caught by the checksum, not delivered.
    assert agent.stats["checksum_errors"] > 0
    # Each checksum failure dropped the frame, and the drop counter
    # says so explicitly (reliable-delivery layers key off it).
    assert (agent.stats["dropped_bad_checksum"]
            == agent.stats["checksum_errors"])
    total_corrupted = sum(
        sum(link.stats["corrupted"]) for link in cluster.links
    )
    assert total_corrupted > 0
    # Delivered messages are exactly the uncorrupted prefix set — no
    # garbage payloads.
    assert all(isinstance(p, int) for p in received)


def test_without_checksums_corruption_is_silent():
    """Stock M-VIA behavior: the damaged frame is processed as-is."""
    cluster, (vi0, r0), (vi1, r1) = _pair_with_corruption(
        3, verify=False
    )
    sim = cluster.sim
    done = []

    def receiver():
        for _ in range(6):
            vi1.post_recv(RecvDescriptor(r1, 0, 4096))
        for _ in range(6):
            yield from vi1.recv_wait()
        done.append(sim.now)

    def sender():
        for index in range(6):
            yield from vi0.post_send(SendDescriptor(r0, 0, 100,
                                                    payload=index))

    sim.spawn(receiver())
    process = sim.spawn(sender())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 5000)
    agent = cluster.nodes[1].via.agent
    # Nothing was dropped: all 6 messages "arrived", including the
    # ones carried by damaged frames — the hazard the checksum change
    # eliminated.
    assert agent.stats["checksum_errors"] == 0
    assert agent.stats["dropped_bad_checksum"] == 0
    assert done  # the receiver completed with corrupted data accepted


def test_corruption_rate_matches_setting():
    cluster, (vi0, r0), (vi1, r1) = _pair_with_corruption(4)
    sim = cluster.sim
    for _ in range(20):
        vi1.post_recv(RecvDescriptor(r1, 0, 4096))

    def sender():
        for index in range(20):
            yield from vi0.post_send(SendDescriptor(r0, 0, 64))

    process = sim.spawn(sender())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 10_000)
    link = cluster.links[0]
    frames = sum(link.stats["frames"])
    corrupted = sum(link.stats["corrupted"])
    assert corrupted == frames // 4


def test_napi_polling_reduces_interrupt_entries():
    from repro.bench.microbench import via_simultaneous_bandwidth

    classic = via_simultaneous_bandwidth(
        500_000, host_params=HostParams(napi_poll_window=0.0)
    )
    napi = via_simultaneous_bandwidth(
        500_000, host_params=HostParams(napi_poll_window=6.0)
    )
    # Bandwidth is preserved (or improved) under polling.
    assert napi >= 0.95 * classic


def test_napi_entry_accounting():
    from repro.hw.node import Host, IrqController
    from repro.sim import Simulator

    sim = Simulator()
    host = Host(sim, 0, HostParams(napi_poll_window=5.0,
                                   interrupt_cost=2.0,
                                   interrupt_per_frame=0.5))
    handled = []

    def handler(frame):
        handled.append(sim.now)
        yield sim.timeout(0)

    def feeder():
        host.irq.raise_irq([(handler, "a")])
        # Lands inside the 5us poll window: no second entry.
        yield sim.timeout(4.0)
        host.irq.raise_irq([(handler, "b")])

    sim.spawn(feeder())
    sim.run()
    assert len(handled) == 2
    assert host.irq.stats["entries"] == 1
    assert host.irq.stats["polls"] >= 1
