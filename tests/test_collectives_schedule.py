"""Tests for the analytic scatter step model: SDF, OPT, optimality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.schedule import (
    opt_bound,
    opt_schedule,
    sdf_schedule,
)
from repro.topology import Torus


def test_opt_is_optimal_on_paper_meshes():
    """The headline claim: OPT uses exactly max(T1, T2) steps (+c<=1)
    on the paper's configurations."""
    for dims in ((8, 8), (4, 8, 8)):
        torus = Torus(dims)
        result = opt_schedule(torus, 0)
        bound = opt_bound(torus, 0)
        assert result.steps == bound


def test_bounds_on_paper_meshes():
    # 8x8: T1 = ceil(63/4) = 16, T2 = 8 -> 16.
    assert opt_bound(Torus((8, 8)), 0) == 16
    # 4x8x8: T1 = ceil(255/6) = 43, T2 = 10 -> 43.
    assert opt_bound(Torus((4, 8, 8)), 0) == 43


def test_sdf_slower_than_opt():
    for dims in ((8, 8), (4, 8, 8)):
        torus = Torus(dims)
        sdf = sdf_schedule(torus, 0)
        opt = opt_schedule(torus, 0)
        assert sdf.steps > opt.steps


def test_gap_grows_with_machine():
    small = sdf_schedule(Torus((8, 8)), 0).steps / opt_schedule(
        Torus((8, 8)), 0).steps
    large = sdf_schedule(Torus((4, 8, 8)), 0).steps / opt_schedule(
        Torus((4, 8, 8)), 0).steps
    assert large > small


DIMS = st.sampled_from([(4,), (8,), (3, 3), (4, 4), (2, 4, 4), (4, 4, 4)])


@given(DIMS, st.data())
@settings(max_examples=20, deadline=None)
def test_all_messages_delivered(dims, data):
    torus = Torus(dims)
    root = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    for scheduler in (sdf_schedule, opt_schedule):
        result = scheduler(torus, root)
        assert set(result.delivery) == set(torus.ranks()) - {root}
        assert all(step >= 1 for step in result.delivery.values())


@given(DIMS, st.data())
@settings(max_examples=20, deadline=None)
def test_opt_within_small_constant_of_bound(dims, data):
    """The paper's +c slack: 'usually 0 and sometimes 1'."""
    torus = Torus(dims)
    root = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    result = opt_schedule(torus, root)
    bound = opt_bound(torus, root)
    assert bound <= result.steps <= bound + 2


@given(DIMS)
@settings(max_examples=20, deadline=None)
def test_nobody_beats_the_bound(dims):
    """max(T1, T2) is a true lower bound for any scheduler."""
    torus = Torus(dims)
    bound = opt_bound(torus, 0)
    for scheduler in (sdf_schedule, opt_schedule):
        assert scheduler(torus, 0).steps >= bound


def test_opt_work_equals_total_distance():
    torus = Torus((4, 4))
    result = opt_schedule(torus, 0)
    total = sum(torus.distance(0, rank) for rank in torus.ranks())
    assert result.hops == total  # every message travels minimally


def test_sdf_hops_also_minimal():
    # SDF routes minimally too; it loses on scheduling, not distance.
    torus = Torus((4, 4))
    result = sdf_schedule(torus, 0)
    total = sum(torus.distance(0, rank) for rank in torus.ranks())
    assert result.hops == total
