"""Extra coverage for the VIA device layer."""

import pytest

from repro.cluster.builder import build_mesh
from repro.errors import ConfigurationError, ViaError
from repro.hw.params import ViaParams
from repro.topology.torus import Torus
from repro.via.device import ViaDevice
from repro.via.vi import Reliability


def test_fragment_plan_covers_message():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    payload = device.frame_payload
    for nbytes in (0, 1, payload, payload + 1, 5 * payload + 17):
        frags = list(device._fragments(nbytes))
        assert sum(size for _off, size in frags) == max(nbytes, 0)
        if nbytes == 0:
            assert frags == [(0, 0)]
        else:
            offsets = [off for off, _size in frags]
            assert offsets == sorted(offsets)
            assert all(size <= payload for _off, size in frags)


def test_frame_payload_accounts_header():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    assert device.frame_payload == 1500 - device.params.header_bytes


def test_header_larger_than_mtu_rejected():
    with pytest.raises(ConfigurationError):
        build_mesh((2,), wrap=False, stack="via",
                   via_params=ViaParams(header_bytes=2000))


def test_device_requires_ports():
    cluster = build_mesh((2,), wrap=False, stack="none")
    with pytest.raises(ConfigurationError):
        ViaDevice(cluster.sim, cluster.nodes[0].host, 0,
                  cluster.torus, {})


def test_egress_to_self_rejected():
    cluster = build_mesh((2,), wrap=False, stack="via")
    with pytest.raises(ViaError):
        cluster.nodes[0].via.egress_port(0)


def test_route_through_missing_port_rejected():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    with pytest.raises(ConfigurationError):
        device._route_egress(1, (5,))  # port 5 doesn't exist on a line


def test_register_memory_charges_kernel_time():
    cluster = build_mesh((2,), wrap=False, stack="via")
    sim = cluster.sim
    device = cluster.nodes[0].via
    tag = device.create_protection_tag()

    def register():
        start = sim.now
        region = yield from device.register_memory(1 << 20, tag)
        return (region, sim.now - start)

    region, elapsed = sim.run_until_complete(sim.spawn(register()))
    assert region.nbytes == 1 << 20
    assert elapsed >= device.memory.register_cost(1 << 20)


def test_reliability_levels_exposed():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    tag = device.create_protection_tag()
    vi = device.create_vi(tag, reliability=Reliability.UNRELIABLE)
    assert vi.reliability is Reliability.UNRELIABLE


def test_vi_registry():
    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    tag = device.create_protection_tag()
    v1, v2 = device.create_vi(tag), device.create_vi(tag)
    assert device.vis[v1.vi_id] is v1
    assert device.vis[v2.vi_id] is v2
    assert v1.vi_id != v2.vi_id
