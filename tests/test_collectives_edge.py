"""Edge-case tests for collective operations."""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.errors import MpiError


def test_bcast_zero_bytes():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        result = yield from comm.bcast(root=0, nbytes=0,
                                       data="tiny" if comm.rank == 0
                                       else None)
        return result

    assert run_mpi(cluster, program, comms=comms) == ["tiny"] * 4


def test_allreduce_large_payload_uses_rendezvous():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        data = np.full(4096, float(comm.rank))  # 32 KB doubles
        result = yield from comm.allreduce(nbytes=data.nbytes,
                                           data=data)
        return float(result[0])

    assert run_mpi(cluster, program, comms=comms) == [6.0] * 4


def test_consecutive_collectives_do_not_cross():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        first = yield from comm.bcast(
            root=0, nbytes=16, data="one" if comm.rank == 0 else None
        )
        second = yield from comm.bcast(
            root=1, nbytes=16, data="two" if comm.rank == 1 else None
        )
        third = yield from comm.allreduce(nbytes=8,
                                          data=np.float64(1.0))
        return (first, second, float(third))

    results = run_mpi(cluster, program, comms=comms)
    assert all(r == ("one", "two", 4.0) for r in results)


def test_collectives_and_pt2pt_interleave():
    """User pt2pt traffic on the same tag values as collective tags
    must not interfere (separate contexts)."""
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        from repro.collectives.broadcast import TAG_BCAST

        if comm.rank == 0:
            yield from comm.send(1, tag=TAG_BCAST, nbytes=8,
                                 data="user")
        value = yield from comm.bcast(
            root=0, nbytes=8, data="coll" if comm.rank == 0 else None
        )
        if comm.rank == 1:
            request = yield from comm.recv(source=0, tag=TAG_BCAST,
                                           nbytes=64)
            return (value, request.received_data)
        return (value, None)

    results = run_mpi(cluster, program, comms=comms)
    assert results[1] == ("coll", "user")


def test_alltoall_none_data():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)

    def program(comm):
        result = yield from comm.alltoall(nbytes=128)
        return len(result)

    assert run_mpi(cluster, program, comms=comms) == [4] * 4


def test_alltoall_wrong_length_rejected():
    cluster = build_mesh((2,), wrap=True)
    comms = build_world(cluster)

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                yield from comm.alltoall(nbytes=8, data=["x"])
        yield comm.engine.sim.timeout(0)
        return True

    assert all(run_mpi(cluster, program, comms=comms))


def test_gather_from_nonzero_root_on_line():
    cluster = build_mesh((4,), wrap=False)
    comms = build_world(cluster)

    def program(comm):
        result = yield from comm.gather(root=2, nbytes=32,
                                        data=comm.rank * 11,
                                        algorithm="sdf")
        return result

    results = run_mpi(cluster, program, comms=comms)
    assert results[2] == [0, 11, 22, 33]
