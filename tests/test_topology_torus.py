"""Tests for torus geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import Direction, Torus

DIMS = st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=4).filter(lambda d: 1 < _prod(d) <= 512)


def _prod(values):
    out = 1
    for v in values:
        out *= v
    return out


def test_paper_cluster_shapes():
    a = Torus((4, 8, 8))
    b = Torus((6, 8, 8))
    assert a.size == 256
    assert b.size == 384
    assert a.num_ports == 6
    assert a.diameter() == 2 + 4 + 4


def test_invalid_dims():
    with pytest.raises(TopologyError):
        Torus(())
    with pytest.raises(TopologyError):
        Torus((4, 0))


def test_rank_out_of_range():
    torus = Torus((2, 2))
    with pytest.raises(TopologyError):
        torus.coords(4)
    with pytest.raises(TopologyError):
        torus.rank((2, 0))
    with pytest.raises(TopologyError):
        torus.rank((0,))


@given(DIMS, st.data())
@settings(max_examples=60, deadline=None)
def test_rank_coords_roundtrip(dims, data):
    torus = Torus(dims)
    rank = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    assert torus.rank(torus.coords(rank)) == rank


@given(DIMS, st.data())
@settings(max_examples=60, deadline=None)
def test_distance_symmetric_and_bounded(dims, data):
    torus = Torus(dims)
    a = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    b = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    assert torus.distance(a, b) == torus.distance(b, a)
    assert torus.distance(a, a) == 0
    assert torus.distance(a, b) <= torus.diameter()


@given(DIMS, st.data())
@settings(max_examples=60, deadline=None)
def test_neighbors_are_distance_one(dims, data):
    torus = Torus(dims)
    rank = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    for _direction, neighbor in torus.neighbors(rank):
        if neighbor != rank:
            assert torus.distance(rank, neighbor) == 1


def test_neighbor_wraparound():
    torus = Torus((4,))
    assert torus.neighbor(3, Direction(0, +1)) == 0
    assert torus.neighbor(0, Direction(0, -1)) == 3


def test_mesh_without_wrap_has_edges():
    mesh = Torus((4,), wrap=False)
    assert not mesh.has_neighbor(3, Direction(0, +1))
    with pytest.raises(TopologyError):
        mesh.neighbor(3, Direction(0, +1))
    assert mesh.diameter() == 3


def test_offset_prefers_short_way_around():
    torus = Torus((8,))
    assert torus.offset(0, 6) == (-2,)
    assert torus.offset(0, 2) == (2,)
    # Exact half-way ties resolve positive.
    assert torus.offset(0, 4) == (4,)


def test_direction_port_numbering():
    assert Direction(0, +1).port == 0
    assert Direction(0, -1).port == 1
    assert Direction(2, +1).port == 4
    assert Direction.from_port(5) == Direction(2, -1)
    assert Direction(1, -1).opposite == Direction(1, +1)


def test_direction_validation():
    with pytest.raises(TopologyError):
        Direction(0, 2)
    with pytest.raises(TopologyError):
        Direction(-1, 1)


def test_axis_of_extent_one_has_no_links():
    torus = Torus((1, 4))
    assert torus.num_ports == 2
    directions = torus.directions()
    assert all(d.axis == 1 for d in directions)


def test_projection():
    torus = Torus((6, 8, 8))
    projected = torus.project((1, 2))
    assert projected.dims == (8, 8)
    with pytest.raises(TopologyError):
        torus.project((3,))


def test_equality_and_hash():
    assert Torus((2, 2)) == Torus((2, 2))
    assert Torus((2, 2)) != Torus((2, 2), wrap=False)
    assert len({Torus((2, 2)), Torus((2, 2))}) == 1


def test_wrap_coords():
    torus = Torus((4, 8))
    assert torus.wrap_coords((-1, 9)) == (3, 1)
    with pytest.raises(TopologyError):
        Torus((4,), wrap=False).wrap_coords((5,))
