"""Tests for SDF routing helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import (
    Torus,
    minimal_directions,
    sdf_next_direction,
    sdf_path,
)
from repro.topology.routing import path_via_first_direction

DIMS = st.sampled_from([(4,), (8,), (3, 3), (4, 4), (8, 8), (2, 3, 4),
                        (4, 8, 8)])


@given(DIMS, st.data())
@settings(max_examples=80, deadline=None)
def test_sdf_path_is_minimal(dims, data):
    torus = Torus(dims)
    src = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    dst = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    path = sdf_path(torus, src, dst)
    assert len(path) == torus.distance(src, dst)
    # Walk it.
    node = src
    for step in path:
        assert step.node == node
        node = torus.neighbor(node, step.direction)
    assert node == dst


@given(DIMS, st.data())
@settings(max_examples=80, deadline=None)
def test_minimal_directions_reduce_distance(dims, data):
    torus = Torus(dims)
    src = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    dst = data.draw(st.integers(min_value=0, max_value=torus.size - 1))
    for direction in minimal_directions(torus, src, dst):
        next_node = torus.neighbor(src, direction)
        assert torus.distance(next_node, dst) == torus.distance(src, dst) - 1


def test_sdf_picks_shortest_axis_first():
    torus = Torus((8, 8))
    src = torus.rank((0, 0))
    dst = torus.rank((1, 3))  # x needs 1 step, y needs 3
    direction = sdf_next_direction(torus, src, dst)
    assert direction.axis == 0  # fewest remaining steps first


def test_sdf_none_at_destination():
    torus = Torus((4, 4))
    assert sdf_next_direction(torus, 5, 5) is None


def test_sdf_respects_forbidden():
    torus = Torus((8, 8))
    src, dst = torus.rank((0, 0)), torus.rank((1, 3))
    first = sdf_next_direction(torus, src, dst)
    second = sdf_next_direction(torus, src, dst, forbidden=[first])
    assert second is not None
    assert second.axis == 1


def test_path_via_first_direction_validates():
    torus = Torus((8, 8))
    src, dst = torus.rank((0, 0)), torus.rank((2, 0))
    good = minimal_directions(torus, src, dst)[0]
    path = path_via_first_direction(torus, src, dst, good)
    assert len(path) == 2
    bad = good.opposite
    with pytest.raises(TopologyError):
        path_via_first_direction(torus, src, dst, bad)


def test_wraparound_route_goes_short_way():
    torus = Torus((8,))
    path = sdf_path(torus, 0, 6)
    assert len(path) == 2
    assert all(step.direction.sign == -1 for step in path)
