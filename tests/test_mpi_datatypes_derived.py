"""Tests for derived datatypes and their packing costs."""

import pytest

from repro.cluster import build_mesh, run_mpi
from repro.errors import MpiError
from repro.mpi import BYTE, DOUBLE
from repro.mpi.datatypes import VectorDatatype


def test_vector_extent_counts_payload_only():
    vec = DOUBLE.vector(blocks=4, blocklength=2, stride=8)
    assert vec.extent == 8 * 4 * 2
    assert not vec.contiguous
    assert vec.bytes_for(3) == 3 * 64


def test_degenerate_vector_is_contiguous():
    tight = DOUBLE.vector(blocks=4, blocklength=2, stride=2)
    assert tight.contiguous
    assert tight.pack_bytes_for(10) == 0
    single = DOUBLE.vector(blocks=1, blocklength=5, stride=100)
    assert single.contiguous


def test_pack_bytes_for_strided():
    vec = DOUBLE.vector(blocks=4, blocklength=1, stride=16)
    assert vec.pack_bytes_for(2) == vec.bytes_for(2)


def test_contiguous_type_constructor():
    block = DOUBLE.contiguous_type(10)
    assert block.extent == 80
    assert block.contiguous
    assert block.pack_bytes_for(5) == 0


def test_vector_validation():
    with pytest.raises(MpiError):
        DOUBLE.vector(blocks=0, blocklength=1, stride=1)
    with pytest.raises(MpiError):
        DOUBLE.vector(blocks=2, blocklength=4, stride=2)  # overlap


def test_basic_types_have_no_pack_cost():
    assert BYTE.pack_bytes_for(1000) == 0


def test_strided_rendezvous_pays_pack_and_unpack():
    """A large strided send is measurably slower than a contiguous
    send of the same payload (pack at the sender, unpack at the
    receiver)."""
    # 3000 doubles in strided blocks: 24 KB payload -> rendezvous.
    strided = DOUBLE.vector(blocks=3000, blocklength=1, stride=4)

    def run_with(datatype):
        cluster = build_mesh((2,), wrap=False)
        marks = {}

        def program(comm):
            sim = comm.engine.sim
            if comm.rank == 0:
                yield from comm.barrier()
                start = sim.now
                yield from comm.send(1, tag=1, count=1,
                                     datatype=datatype)
                yield from comm.recv(source=1, tag=2, nbytes=64)
                marks["elapsed"] = sim.now - start
            else:
                request = comm.irecv(0, tag=1, count=1,
                                     datatype=datatype)
                yield from comm.barrier()
                yield from request.wait()
                yield from comm.send(0, tag=2, nbytes=4)

        run_mpi(cluster, program)
        return marks["elapsed"]

    contiguous = DOUBLE.contiguous_type(3000)
    assert strided.extent == contiguous.extent
    slow = run_with(strided)
    fast = run_with(contiguous)
    assert slow > fast
    # Two extra copies of 24KB at ~1200 MB/s ~= 40us total.
    assert slow - fast == pytest.approx(2 * 24000 / 1200, rel=0.5)
