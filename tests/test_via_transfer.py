"""End-to-end VIA tests: connection, sends, fragmentation, RMA,
packet switching, and error paths."""

import pytest

from repro.errors import (
    TruncationError,
    ViaDescriptorError,
    ViaNotConnectedError,
    ViaProtectionError,
)
from repro.via.descriptors import (
    RecvDescriptor,
    RmaWriteDescriptor,
    SendDescriptor,
)
from repro.via.vi import ViState
from tests.conftest import make_via_pair, run, via_pingpong_rtt2


def test_connection_establishment(via_pair):
    _cluster, (vi0, _r0), (vi1, _r1) = via_pair
    assert vi0.state is ViState.CONNECTED
    assert vi1.state is ViState.CONNECTED
    assert vi0.peer == (1, vi1.vi_id)
    assert vi1.peer == (0, vi0.vi_id)


def test_send_before_connect_rejected():
    from repro.cluster.builder import build_mesh

    cluster = build_mesh((2,), wrap=False, stack="via")
    device = cluster.nodes[0].via
    tag = device.create_protection_tag()
    vi = device.create_vi(tag)
    region = device.register_memory_now(4096, tag)

    def send():
        yield from vi.post_send(SendDescriptor(region, 0, 4))

    with pytest.raises(ViaNotConnectedError):
        run(cluster.sim, send())


def test_payload_and_immediate_delivered(via_pair):
    cluster, (vi0, r0), (vi1, r1) = via_pair
    sim = cluster.sim

    def receiver():
        vi1.post_recv(RecvDescriptor(r1, 0, 4096))
        descriptor = yield from vi1.recv_wait()
        return descriptor

    def sender():
        yield from vi0.post_send(SendDescriptor(
            r0, 0, 100, payload={"key": "value"}, immediate=7,
        ))

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    descriptor = sim.run_until_complete(receive)
    assert descriptor.received_bytes == 100
    assert descriptor.received_payload == {"key": "value"}
    assert descriptor.received_immediate == 7


def test_large_message_fragmentation(via_pair):
    cluster, (vi0, r0), (vi1, r1) = via_pair
    sim = cluster.sim
    nbytes = 100_000  # ~69 fragments

    def receiver():
        vi1.post_recv(RecvDescriptor(r1, 0, nbytes))
        descriptor = yield from vi1.recv_wait()
        return descriptor

    def sender():
        yield from vi0.post_send(SendDescriptor(r0, 0, nbytes,
                                                payload="big"))

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    descriptor = sim.run_until_complete(receive)
    assert descriptor.received_bytes == nbytes
    assert descriptor.received_payload == "big"
    frames = cluster.nodes[1].via.agent.stats["data_frames"]
    assert frames == -(-nbytes // cluster.nodes[0].via.frame_payload)


def test_messages_complete_in_order(via_pair):
    cluster, (vi0, r0), (vi1, r1) = via_pair
    sim = cluster.sim
    seen = []

    def receiver():
        for index in range(5):
            vi1.post_recv(RecvDescriptor(r1, 0, 8192))
        for index in range(5):
            descriptor = yield from vi1.recv_wait()
            seen.append(descriptor.received_payload)

    def sender():
        for index in range(5):
            yield from vi0.post_send(SendDescriptor(
                r0, 0, 1000, payload=index,
            ))

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    sim.run_until_complete(receive)
    assert seen == [0, 1, 2, 3, 4]


def test_truncation_rejected(via_pair):
    cluster, (vi0, r0), (vi1, r1) = via_pair
    sim = cluster.sim
    vi1.post_recv(RecvDescriptor(r1, 0, 10))

    def sender():
        yield from vi0.post_send(SendDescriptor(r0, 0, 1000))

    sim.spawn(sender())
    with pytest.raises(TruncationError):
        sim.run(until=1e6)


def test_empty_recv_queue_is_flow_violation(via_pair):
    cluster, (vi0, r0), (_vi1, _r1) = via_pair
    sim = cluster.sim

    def sender():
        yield from vi0.post_send(SendDescriptor(r0, 0, 4))

    sim.spawn(sender())
    with pytest.raises(ViaDescriptorError):
        sim.run(until=1e6)


def test_recv_queue_depth_enforced(via_pair):
    _cluster, (_e0), (vi1, r1) = via_pair
    depth = vi1.device.params.recv_queue_depth
    for _ in range(depth):
        vi1.post_recv(RecvDescriptor(r1, 0, 64))
    with pytest.raises(ViaDescriptorError):
        vi1.post_recv(RecvDescriptor(r1, 0, 64))


def test_rma_write_lands_in_enabled_region():
    cluster, (vi0, r0), (vi1, _r1) = make_via_pair()
    sim = cluster.sim
    device1 = cluster.nodes[1].via
    target = device1.register_memory_now(8192, vi1.tag, rma_write=True)

    def writer():
        yield from vi0.post_rma_write(RmaWriteDescriptor(
            r0, 0, 5000, remote_addr=target.addr, payload="rma-data",
        ))
        yield from vi0.send_wait()

    process = sim.spawn(writer())
    sim.run_until_complete(process)
    sim.run(until=sim.now + 10000)
    assert target.data == "rma-data"


def test_rma_write_to_plain_region_rejected():
    cluster, (vi0, r0), (vi1, _r1) = make_via_pair()
    sim = cluster.sim
    device1 = cluster.nodes[1].via
    target = device1.register_memory_now(8192, vi1.tag, rma_write=False)

    def writer():
        yield from vi0.post_rma_write(RmaWriteDescriptor(
            r0, 0, 100, remote_addr=target.addr,
        ))

    sim.spawn(writer())
    with pytest.raises(ViaProtectionError):
        sim.run(until=1e6)


def test_rma_notify_consumes_descriptor():
    cluster, (vi0, r0), (vi1, r1) = make_via_pair()
    sim = cluster.sim
    device1 = cluster.nodes[1].via
    target = device1.register_memory_now(8192, vi1.tag, rma_write=True)
    vi1.post_recv(RecvDescriptor(r1, 0, 64))

    def writer():
        yield from vi0.post_rma_write(RmaWriteDescriptor(
            r0, 0, 4000, remote_addr=target.addr, notify=True,
            immediate=55,
        ))

    def receiver():
        descriptor = yield from vi1.recv_wait()
        return descriptor

    receive = sim.spawn(receiver())
    sim.spawn(writer())
    descriptor = sim.run_until_complete(receive)
    assert descriptor.received_bytes == 4000
    assert descriptor.received_immediate == 55


def test_multi_hop_transfer_via_packet_switch():
    cluster, (vi0, r0), (vi1, r1) = make_via_pair(hops=3)
    sim = cluster.sim

    def receiver():
        vi1.post_recv(RecvDescriptor(r1, 0, 65536))
        descriptor = yield from vi1.recv_wait()
        return descriptor

    def sender():
        yield from vi0.post_send(SendDescriptor(r0, 0, 50_000,
                                                payload="routed"))

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    descriptor = sim.run_until_complete(receive)
    assert descriptor.received_payload == "routed"
    # Both intermediate nodes forwarded every fragment.
    for middle in (1, 2):
        assert cluster.nodes[middle].via.agent.stats["forwarded"] > 0


def test_per_hop_latency_matches_paper():
    direct = via_pingpong_rtt2(*_pair_args(1))
    two_hops = via_pingpong_rtt2(*_pair_args(2))
    per_hop = two_hops - direct
    assert direct == pytest.approx(18.5, abs=0.6)
    assert per_hop == pytest.approx(12.5, abs=0.6)


def _pair_args(hops):
    cluster, end0, end1 = make_via_pair(hops=hops)
    return cluster, end0, end1


def test_source_route_followed():
    # 3x3 torus: route 0 -> 4 the long way via explicit ports.
    from repro.cluster.builder import build_mesh
    from repro.topology.torus import Direction

    cluster = build_mesh((3, 3), wrap=True, stack="via")
    sim = cluster.sim
    d0, d4 = cluster.nodes[0].via, cluster.nodes[4].via
    t0, t4 = d0.create_protection_tag(), d4.create_protection_tag()
    vi0, vi4 = d0.create_vi(t0), d4.create_vi(t4)
    r0 = d0.register_memory_now(8192, t0)
    r4 = d4.register_memory_now(8192, t4)
    a = sim.spawn(d0.agent.connect_request(vi0, 4, "sr"))
    b = sim.spawn(d4.agent.connect_wait(vi4, "sr"))
    sim.run_until_complete(a)
    sim.run_until_complete(b)
    vi4.post_recv(RecvDescriptor(r4, 0, 4096))
    # Connection handshake traffic may already have crossed node 1.
    baseline = cluster.nodes[1].via.agent.stats["forwarded"]
    # Route: +y then +x (ports 2 then 0): 0 -> 1 -> 4 in a 3x3.
    route = (Direction(1, +1).port, Direction(0, +1).port)

    def sender():
        yield from vi0.post_send(SendDescriptor(r0, 0, 64, route=route))

    def receiver():
        descriptor = yield from vi4.recv_wait()
        return descriptor

    receive = sim.spawn(receiver())
    sim.spawn(sender())
    descriptor = sim.run_until_complete(receive)
    assert descriptor.received_bytes == 64
    # Node 1 (the routed intermediate) forwarded exactly our frame.
    assert cluster.nodes[1].via.agent.stats["forwarded"] == baseline + 1
