"""Tests for cluster construction and configs."""

import pytest

from repro.cluster import (
    MeshCluster,
    build_mesh,
    jlab_cluster_a,
    jlab_cluster_b,
    small_mesh,
)
from repro.errors import ConfigurationError
from repro.topology import Torus


def test_wiring_counts_3d():
    cluster = build_mesh((3, 3, 3), stack="none")
    assert cluster.size == 27
    # One link per (node, positive direction): 3 axes x 27 nodes.
    assert len(cluster.links) == 3 * 27
    for node in cluster.nodes:
        assert len(node.ports) == 6


def test_wiring_extent_two_axis():
    cluster = build_mesh((2,), wrap=True, stack="none")
    # Wrapped extent-2 axis: two parallel links, all four ports wired.
    assert len(cluster.links) == 2
    for node in cluster.nodes:
        assert sorted(node.ports) == [0, 1]


def test_open_mesh_edges_unwired():
    cluster = build_mesh((3,), wrap=False, stack="none")
    assert len(cluster.links) == 2
    assert sorted(cluster.nodes[0].ports) == [0]      # only +x
    assert sorted(cluster.nodes[1].ports) == [0, 1]
    assert sorted(cluster.nodes[2].ports) == [1]      # only -x


def test_pci_assignment_per_axis():
    cluster = build_mesh((2, 2, 2), stack="none")
    node = cluster.nodes[0]
    assert node.ports[0].pci_index == 0  # +-x share slot 0
    assert node.ports[1].pci_index == 0
    assert node.ports[4].pci_index == 2  # +-z on slot 2


def test_attach_via_and_tcp_exclusive():
    cluster = build_mesh((2,), wrap=False, stack="via")
    with pytest.raises(ConfigurationError):
        cluster.attach_tcp()
    with pytest.raises(ConfigurationError):
        cluster.attach_via()


def test_unknown_stack_rejected():
    with pytest.raises(ConfigurationError):
        build_mesh((2,), stack="quantum")


def test_jlab_configs():
    a = jlab_cluster_a(stack="none")
    b = jlab_cluster_b(stack="none")
    assert a.torus == Torus((4, 8, 8))
    assert b.torus == Torus((6, 8, 8))
    assert a.size == 256
    assert b.size == 384
    assert a.host_params.cpu_ghz == 2.67
    assert b.host_params.memory_mb == 512


def test_small_mesh_passthrough():
    cluster = small_mesh((3, 3), wrap=True, stack="via")
    assert cluster.size == 9
    assert cluster.nodes[0].via is not None


def test_degenerate_torus_rejected():
    with pytest.raises(ConfigurationError):
        MeshCluster(Torus((1,)))
