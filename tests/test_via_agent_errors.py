"""Error-path tests for the VIA kernel agent."""

import pytest

from repro.errors import ViaError
from repro.via.descriptors import RecvDescriptor, SendDescriptor
from repro.via.packet import PacketKind, ViaPacket
from repro.via.vi import ViState
from tests.conftest import make_via_pair


def _inject(cluster, dst_node, packet, payload_bytes=0):
    """Drop a crafted frame directly into a node's rx path."""
    from repro.hw.link import Frame

    device = cluster.nodes[dst_node].via
    port = next(iter(device.ports.values()))
    frame = Frame(payload_bytes, device.params.header_bytes,
                  payload=packet.seal(), kind="crafted")
    port.frame_arrived(frame)


def test_data_for_unknown_vi_raises():
    cluster, _e0, _e1 = make_via_pair()
    packet = ViaPacket(kind=PacketKind.DATA, src_node=0, dst_node=1,
                       dst_vi=999, msg_id=1, payload_bytes=4,
                       msg_bytes=4)
    _inject(cluster, 1, packet, payload_bytes=4)
    with pytest.raises(ViaError):
        cluster.sim.run(until=cluster.sim.now + 1000)


def test_rma_for_unknown_vi_raises():
    cluster, _e0, _e1 = make_via_pair()
    packet = ViaPacket(kind=PacketKind.RMA_WRITE, src_node=0,
                       dst_node=1, dst_vi=999, msg_id=1,
                       payload_bytes=4, msg_bytes=4, remote_addr=0x1000)
    _inject(cluster, 1, packet, payload_bytes=4)
    with pytest.raises(ViaError):
        cluster.sim.run(until=cluster.sim.now + 1000)


def test_out_of_order_fragment_detected():
    cluster, (_vi0, _r0), (vi1, r1) = make_via_pair()
    vi1.post_recv(RecvDescriptor(r1, 0, 65536))
    # Fragment 1 of 2 arrives without fragment 0.
    packet = ViaPacket(kind=PacketKind.DATA, src_node=0, dst_node=1,
                       dst_vi=vi1.vi_id, msg_id=777, frag_index=1,
                       num_frags=2, payload_bytes=100, msg_offset=1458,
                       msg_bytes=1558)
    _inject(cluster, 1, packet, payload_bytes=100)
    with pytest.raises(ViaError):
        cluster.sim.run(until=cluster.sim.now + 1000)


def test_accept_without_pending_connect_raises():
    cluster, _e0, _e1 = make_via_pair()
    packet = ViaPacket(kind=PacketKind.ACCEPT, src_node=0, dst_node=1,
                       dst_vi=12345)
    _inject(cluster, 1, packet)
    with pytest.raises(ViaError):
        cluster.sim.run(until=cluster.sim.now + 1000)


def test_disconnect_resets_vi_state():
    cluster, (vi0, _r0), (vi1, _r1) = make_via_pair()
    assert vi1.state is ViState.CONNECTED
    packet = ViaPacket(kind=PacketKind.DISCONNECT, src_node=0,
                       dst_node=1, dst_vi=vi1.vi_id)
    _inject(cluster, 1, packet)
    cluster.sim.run(until=cluster.sim.now + 1000)
    assert vi1.state is ViState.IDLE
    assert vi1.peer is None


def test_second_connect_on_connected_vi_rejected():
    cluster, (vi0, _r0), _e1 = make_via_pair()
    device = cluster.nodes[0].via

    def reconnect():
        yield from device.agent.connect_request(vi0, 1, "again")

    with pytest.raises(ViaError):
        cluster.sim.run_until_complete(cluster.sim.spawn(reconnect()))
