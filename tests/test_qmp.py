"""Tests for the QMP facade."""

import numpy as np
import pytest

from repro.cluster import build_mesh, run_qmp
from repro.errors import QmpError
from repro.qmp.msgmem import MsgMem, MultiHandle


def test_topology_queries():
    cluster = build_mesh((2, 2, 2))

    def program(qmp):
        yield qmp.comm.engine.sim.timeout(0)
        return (qmp.rank, qmp.size, qmp.logical_dimensions(),
                qmp.logical_coordinates())

    results = run_qmp(cluster, program)
    assert results[0] == (0, 8, (2, 2, 2), (0, 0, 0))
    assert results[7] == (7, 8, (2, 2, 2), (1, 1, 1))


def test_declared_relative_exchange():
    cluster = build_mesh((2, 2, 2))

    def program(qmp):
        # Shift data one hop in +x: send +x, receive from -x.
        send_mem = qmp.declare_msgmem(64, data=f"node{qmp.rank}")
        recv_mem = qmp.declare_msgmem(64)
        send = qmp.declare_send_relative(send_mem, axis=0, sign=+1)
        recv = qmp.declare_receive_relative(recv_mem, axis=0, sign=-1)
        send.start()
        recv.start()
        yield from send.wait()
        value = yield from recv.wait()
        return value

    results = run_qmp(cluster, program)
    torus = cluster.torus
    for rank, value in enumerate(results):
        from repro.topology.torus import Direction

        source = torus.neighbor(rank, Direction(0, -1))
        assert value == f"node{source}"


def test_handles_are_restartable():
    cluster = build_mesh((2,), wrap=True)

    def program(qmp):
        send_mem = qmp.declare_msgmem(32)
        recv_mem = qmp.declare_msgmem(32)
        send = qmp.declare_send_relative(send_mem, 0, +1)
        recv = qmp.declare_receive_relative(recv_mem, 0, -1)
        for iteration in range(3):
            send_mem.data = (qmp.rank, iteration)
            send.start()
            recv.start()
            yield from send.wait()
            value = yield from recv.wait()
            assert value[1] == iteration
        return "ok"

    assert run_qmp(cluster, program) == ["ok", "ok"]


def test_start_twice_rejected():
    cluster = build_mesh((2,), wrap=True)

    def program(qmp):
        mem = qmp.declare_msgmem(8)
        handle = qmp.declare_send_relative(mem, 0, +1)
        handle.start()
        with pytest.raises(QmpError):
            handle.start()
        yield from handle.wait()
        # Peer never receives: that's fine, we only test the handle.
        return True

    # Use both ranks symmetric so sends match.
    def symmetric(qmp):
        mem = qmp.declare_msgmem(8)
        recv_mem = qmp.declare_msgmem(8)
        send = qmp.declare_send_relative(mem, 0, +1)
        recv = qmp.declare_receive_relative(recv_mem, 0, -1)
        send.start()
        with pytest.raises(QmpError):
            send.start()
        recv.start()
        yield from send.wait()
        yield from recv.wait()
        return True

    assert run_qmp(cluster, symmetric) == [True, True]


def test_wait_before_start_rejected():
    cluster = build_mesh((2,), wrap=True)

    def program(qmp):
        mem = qmp.declare_msgmem(8)
        handle = qmp.declare_send_relative(mem, 0, +1)
        with pytest.raises(QmpError):
            yield from handle.wait()
        return True

    assert all(run_qmp(cluster, program))


def test_multi_handle():
    cluster = build_mesh((2, 2))

    def program(qmp):
        sends, recvs = [], []
        for axis in range(2):
            for sign in (+1, -1):
                sends.append(qmp.declare_send_relative(
                    qmp.declare_msgmem(48, data=(qmp.rank, axis, sign)),
                    axis, sign,
                ))
                recvs.append(qmp.declare_receive_relative(
                    qmp.declare_msgmem(48), axis, sign,
                ))
        multi = qmp.declare_multiple(sends + recvs)
        multi.start()
        yield from multi.wait()
        return [h.msgmem.data for h in recvs]

    results = run_qmp(cluster, program)
    assert all(len(r) == 4 for r in results)


def test_sum_double():
    cluster = build_mesh((2, 2))

    def program(qmp):
        result = yield from qmp.sum_double(float(qmp.rank + 1))
        return result

    assert run_qmp(cluster, program) == [10.0] * 4


def test_sum_double_array():
    cluster = build_mesh((2, 2))

    def program(qmp):
        result = yield from qmp.sum_double_array(
            np.full(5, float(qmp.rank))
        )
        return result

    for result in run_qmp(cluster, program):
        assert np.allclose(result, 6.0)


def test_max_and_min_double():
    cluster = build_mesh((2, 2))

    def program(qmp):
        hi = yield from qmp.max_double(float(qmp.rank))
        lo = yield from qmp.min_double(float(qmp.rank))
        return (hi, lo)

    assert run_qmp(cluster, program) == [(3.0, 0.0)] * 4


def test_broadcast_and_barrier():
    cluster = build_mesh((2, 2))

    def program(qmp):
        value = yield from qmp.broadcast(
            16, data="root-data" if qmp.rank == 0 else None
        )
        yield from qmp.barrier()
        return value

    assert run_qmp(cluster, program) == ["root-data"] * 4


def test_validation():
    cluster = build_mesh((2, 2))

    def program(qmp):
        with pytest.raises(QmpError):
            qmp.declare_send_relative(MsgMem(8), axis=5, sign=1)
        with pytest.raises(QmpError):
            qmp.declare_send_relative(MsgMem(8), axis=0, sign=0)
        with pytest.raises(QmpError):
            MsgMem(-1)
        with pytest.raises(QmpError):
            MultiHandle([])
        yield qmp.comm.engine.sim.timeout(0)
        return True

    assert all(run_qmp(cluster, program))


def test_declared_point_to_point_channels():
    cluster = build_mesh((3, 3))

    def program(qmp):
        if qmp.rank == 0:
            mem = qmp.declare_msgmem(64, data="direct-hello")
            send = qmp.declare_send_to(mem, rank=8)  # opposite corner
            send.start()
            yield from send.wait()
            return None
        if qmp.rank == 8:
            mem = qmp.declare_msgmem(64)
            recv = qmp.declare_receive_from(mem, rank=0)
            recv.start()
            value = yield from recv.wait()
            return value
        yield qmp.comm.engine.sim.timeout(0)
        return None

    assert run_qmp(cluster, program)[8] == "direct-hello"
