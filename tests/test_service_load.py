"""1000 concurrent clients against the in-process transport.

Asserts the headline service contract at scale — zero dropped accepted
requests, exactly one engine run per distinct configuration, a pure
cache-hit second wave — and writes ``BENCH_SERVICE.json`` (throughput
and p50/p99/max latency), the artifact CI uploads.
"""

import asyncio
import json
import pathlib

import pytest

from repro.service import loadtest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.slow
def test_thousand_clients_zero_drops_exactly_once():
    report = asyncio.run(loadtest.run_load_test(
        clients=1000, workers=2, distinct=48, max_pending=16))
    loadtest.check_report(report)  # raises LoadTestFailed on violation

    assert report["clients"] == 1000
    assert report["ok"] == 1000 and report["failed"] == 0
    assert report["dropped_accepted"] == 0
    assert report["engine_dispatches"] == 48
    assert report["hit_wave"] == {"requests": 48, "hits": 48,
                                  "dispatches": 0}
    # Admission control really engaged: far more arrivals than slots.
    assert report["router"]["shed"] > 0
    assert report["router"]["coalesced"] > 0
    assert report["throughput_rps"] > 0
    latency = report["latency_ms"]
    assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]

    out = REPO_ROOT / "BENCH_SERVICE.json"
    loadtest.write_report(str(out), report)
    written = json.loads(out.read_text())
    assert written["latency_ms"]["p99"] == latency["p99"]
    assert written["dropped_accepted"] == 0


def test_check_report_rejects_contract_violations():
    good = {
        "clients": 2, "ok": 2, "failed": 0, "dropped_accepted": 0,
        "distinct_jobs": 1, "engine_dispatches": 1,
        "hit_wave": {"requests": 1, "hits": 1, "dispatches": 0},
        "failures": [],
    }
    loadtest.check_report(good)

    for corrupt in (
        {"ok": 1, "failed": 1},
        {"dropped_accepted": 1},
        {"engine_dispatches": 2},
        {"hit_wave": {"requests": 1, "hits": 0, "dispatches": 0}},
        {"hit_wave": {"requests": 1, "hits": 1, "dispatches": 1}},
    ):
        with pytest.raises(loadtest.LoadTestFailed):
            loadtest.check_report({**good, **corrupt})
