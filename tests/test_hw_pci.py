"""Tests for the fluid bandwidth-shared bus."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.pci import BandwidthBus
from repro.sim import Simulator
from tests.conftest import run


def test_validation(sim):
    with pytest.raises(ConfigurationError):
        BandwidthBus(sim, rate=0)
    bus = BandwidthBus(sim, rate=100)

    def bad_size():
        yield from bus.transfer(-1)

    with pytest.raises(ConfigurationError):
        run(sim, bad_size())


def test_single_transfer_exact_time(sim):
    bus = BandwidthBus(sim, rate=100.0, setup=0.0)

    def proc():
        yield from bus.transfer(1000)
        return sim.now

    assert run(sim, proc()) == pytest.approx(10.0)


def test_setup_added_once(sim):
    bus = BandwidthBus(sim, rate=100.0, setup=2.0)

    def proc():
        yield from bus.transfer(100)
        return sim.now

    assert run(sim, proc()) == pytest.approx(3.0)


def test_zero_bytes_costs_setup_only(sim):
    bus = BandwidthBus(sim, rate=100.0, setup=1.5)

    def proc():
        yield from bus.transfer(0)
        return sim.now

    assert run(sim, proc()) == pytest.approx(1.5)


def test_two_equal_transfers_share_fairly(sim):
    bus = BandwidthBus(sim, rate=100.0)
    finish = []

    def proc():
        yield from bus.transfer(1000)
        finish.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    # Each gets 50 B/us: both finish at t=20.
    assert finish == [pytest.approx(20.0), pytest.approx(20.0)]


def test_late_joiner_slows_first(sim):
    bus = BandwidthBus(sim, rate=100.0)
    finish = {}

    def first():
        yield from bus.transfer(1000)
        finish["first"] = sim.now

    def second():
        yield sim.timeout(5.0)  # first has moved 500 bytes alone
        yield from bus.transfer(250)
        finish["second"] = sim.now

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    # From t=5 both at 50 B/us; second finishes at t=10 (250 bytes),
    # then first finishes its remaining 250 alone at t=12.5.
    assert finish["second"] == pytest.approx(10.0)
    assert finish["first"] == pytest.approx(12.5)


def test_rate_cap_limits_single_flow(sim):
    bus = BandwidthBus(sim, rate=100.0)

    def proc():
        yield from bus.transfer(100, rate_cap=10.0)
        return sim.now

    assert run(sim, proc()) == pytest.approx(10.0)


def test_cap_surplus_goes_to_others(sim):
    bus = BandwidthBus(sim, rate=100.0)
    finish = {}

    def capped():
        yield from bus.transfer(200, rate_cap=20.0)
        finish["capped"] = sim.now

    def open_flow():
        yield from bus.transfer(800)
        finish["open"] = sim.now

    sim.spawn(capped())
    sim.spawn(open_flow())
    sim.run()
    # Capped at 20, open gets the remaining 80: both end at t=10.
    assert finish["capped"] == pytest.approx(10.0)
    assert finish["open"] == pytest.approx(10.0)


def test_weighted_shares(sim):
    bus = BandwidthBus(sim, rate=90.0)
    finish = {}

    def heavy():
        yield from bus.transfer(600, weight=2.0)
        finish["heavy"] = sim.now

    def light():
        yield from bus.transfer(300, weight=1.0)
        finish["light"] = sim.now

    sim.spawn(heavy())
    sim.spawn(light())
    sim.run()
    # Shares 60/30: both complete at t=10.
    assert finish["heavy"] == pytest.approx(10.0)
    assert finish["light"] == pytest.approx(10.0)


def test_bad_parameters(sim):
    bus = BandwidthBus(sim, rate=10.0)

    def bad_cap():
        yield from bus.transfer(10, rate_cap=0)

    def bad_weight():
        yield from bus.transfer(10, weight=0)

    with pytest.raises(ConfigurationError):
        run(sim, bad_cap())
    with pytest.raises(ConfigurationError):
        run(sim, bad_weight())


def test_stats_and_concurrency(sim):
    bus = BandwidthBus(sim, rate=100.0)

    def proc():
        yield from bus.transfer(100)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert bus.stats["transfers"] == 2
    assert bus.stats["bytes"] == 200
    assert bus.stats["max_concurrency"] == 2
    assert not bus.busy()


def test_many_small_transfers_progress(sim):
    """Regression: residual float error must never stall the clock."""
    bus = BandwidthBus(sim, rate=123.456)
    count = 300

    def proc(n):
        for _ in range(n):
            yield from bus.transfer(1537.3)

    process1 = sim.spawn(proc(count))
    process2 = sim.spawn(proc(count))
    sim.run_until_complete(process1, limit=1e7)
    sim.run_until_complete(process2, limit=1e7)
    expected = 2 * count * 1537.3 / 123.456
    assert sim.now == pytest.approx(expected, rel=1e-6)
