"""Shard partition, cut-link enumeration and lookahead derivation."""

import pytest

from repro import units
from repro.errors import TopologyError
from repro.hw.params import GigEParams
from repro.topology.partition import (
    CutLink,
    make_shard_plan,
    shard_lookahead,
)
from repro.topology.torus import Torus


class TestMakeShardPlan:
    def test_single_shard_owns_everything(self):
        torus = Torus((2, 2, 2))
        plan = make_shard_plan(torus, 1)
        assert plan.nshards == 1
        assert plan.assignment == (0,) * torus.size
        assert plan.local_ranks(0) == list(torus.ranks())
        assert plan.cut_links(torus) == []

    def test_slabs_cut_longest_axis(self):
        torus = Torus((4, 8, 8))
        plan = make_shard_plan(torus, 4)
        # Longest-axis tie (8, 8) breaks to the lowest index: axis 1.
        assert plan.axis == 1
        for rank in torus.ranks():
            coord = torus.coords(rank)[plan.axis]
            assert plan.shard_of(rank) == coord // 2

    def test_slab_sizes_balanced_within_one_plane(self):
        torus = Torus((3, 5))
        plan = make_shard_plan(torus, 2)
        sizes = [len(plan.local_ranks(s)) for s in range(2)]
        assert sum(sizes) == torus.size
        # One plane of the cut axis is 3 nodes.
        assert abs(sizes[0] - sizes[1]) <= 3

    def test_every_rank_owned_exactly_once(self):
        torus = Torus((4, 2, 2))
        plan = make_shard_plan(torus, 4)
        seen = sorted(
            rank for s in range(4) for rank in plan.local_ranks(s))
        assert seen == list(torus.ranks())

    def test_more_shards_than_extent_rejected(self):
        with pytest.raises(TopologyError, match="cannot cut 4 slabs"):
            make_shard_plan(Torus((2, 2, 2)), 4)

    def test_zero_shards_rejected(self):
        with pytest.raises(TopologyError, match="at least 1"):
            make_shard_plan(Torus((2, 2)), 0)

    def test_plan_is_pure_function_of_geometry(self):
        a = make_shard_plan(Torus((4, 2, 2)), 2)
        b = make_shard_plan(Torus((4, 2, 2)), 2)
        assert a == b


class TestCutLinks:
    def test_cut_links_cross_shards_only(self):
        torus = Torus((4, 2, 2))
        plan = make_shard_plan(torus, 2)
        cuts = plan.cut_links(torus)
        assert cuts
        for cut in cuts:
            assert plan.shard_of(cut.rank) != plan.shard_of(cut.neighbor)

    def test_cut_link_names_match_builder_wiring(self):
        torus = Torus((4, 2, 2))
        plan = make_shard_plan(torus, 2)
        names = {cut.name for cut in plan.cut_links(torus)}
        # Positive-direction orientation: each physical cable once.
        assert all(name.startswith("link[") for name in names)
        assert len(names) == len(plan.cut_links(torus))

    def test_wrap_links_counted(self):
        # A wrapped 4-ring cut in 2 slabs has 2 cut cables (the middle
        # one and the wraparound); unwrapped only the middle one.
        wrapped = Torus((4,), wrap=True)
        flat = Torus((4,), wrap=False)
        plan_w = make_shard_plan(wrapped, 2)
        plan_f = make_shard_plan(flat, 2)
        assert len(plan_w.cut_links(wrapped)) == 2
        assert len(plan_f.cut_links(flat)) == 1

    def test_cutlink_is_frozen(self):
        cut = make_shard_plan(Torus((4,)), 2).cut_links(Torus((4,)))[0]
        assert isinstance(cut, CutLink)
        with pytest.raises(AttributeError):
            cut.rank = 99


class TestLookahead:
    def test_min_wire_latency_derivation(self):
        # Minimum Ethernet frame: 64 bytes on the wire minus the 18
        # bytes of L2 header/FCS the payload model excludes, plus the
        # simulator's per-frame overhead, serialized at 125 B/us, plus
        # propagation.
        g = GigEParams()
        payload = units.ETHERNET_MIN_FRAME - 18
        expected = (payload + g.frame_overhead) / g.wire_rate
        expected += g.propagation
        assert g.min_wire_latency() == pytest.approx(expected)

    def test_pinned_default_value(self):
        # With the default parameters this is 84/125 + 0.3 = 0.972us;
        # the conservative window width.  A change here changes every
        # PDES schedule — it must be deliberate.
        assert GigEParams().min_wire_latency() == pytest.approx(
            84 / 125 + 0.3)

    def test_shard_lookahead_uses_cut_links(self):
        torus = Torus((4, 2, 2))
        plan = make_shard_plan(torus, 2)
        assert shard_lookahead(torus, plan, GigEParams()) == (
            pytest.approx(GigEParams().min_wire_latency()))

    def test_no_cuts_means_infinite_lookahead(self):
        torus = Torus((4, 2, 2))
        plan = make_shard_plan(torus, 1)
        assert shard_lookahead(torus, plan, GigEParams()) == float("inf")

    def test_positive_and_below_any_wire_latency(self):
        g = GigEParams()
        lookahead = g.min_wire_latency()
        assert lookahead > 0
        # A full-size frame takes strictly longer than the bound.
        full = (1500 + g.frame_overhead) / g.wire_rate + g.propagation
        assert lookahead < full
