"""Service-level chaos: kills and stalls under live requests.

The contract (see docs/SERVICE.md): every accepted request terminates
with either a bit-identical result or a structured retriable error,
malformed requests fail structurally even mid-chaos, and one seed
produces one outcome map, every time.
"""

import pytest

from repro.service.chaos import (
    chaos_campaign,
    plan_campaign,
    reference_payloads,
    run_service_chaos,
)


def test_fault_plan_is_seed_deterministic():
    specs_a, faults_a = plan_campaign(seed=5, requests=10)
    specs_b, faults_b = plan_campaign(seed=5, requests=10)
    assert specs_a == specs_b
    assert faults_a == faults_b
    for fault, delay in faults_a.values():
        assert fault in ("kill", "stall")
        assert 0.05 <= delay <= 0.5
    # Another seed draws a different schedule (faults or delays).
    _, faults_c = plan_campaign(seed=6, requests=10)
    assert faults_a != faults_c


def test_reference_payloads_are_frozen_per_key():
    specs, _ = plan_campaign(seed=0, requests=4)
    refs = reference_payloads(specs)
    assert set(refs) == {spec.cache_key() for spec in specs}
    again = reference_payloads(specs)
    assert refs == again  # engine determinism, byte for byte


@pytest.mark.slow
def test_chaos_campaign_holds_the_contract_and_is_deterministic():
    report = chaos_campaign(seed=3, requests=6, workers=2, runs=2)
    assert report["deterministic"] is True
    # Every real request ended ok and bit-identical (run_service_chaos
    # raises ChaosContractViolation otherwise); the two malformed
    # requests surfaced as structured errors.
    statuses = {v["status"] for v in report["verdicts"].values()}
    assert "ok" in statuses
    assert report["verdicts"]["bad-op"]["status"] == "structured-error"
    assert report["verdicts"]["bad-kind"]["status"] == "structured-error"
    assert report["router"]["requests"] == 6 + 2


@pytest.mark.slow
def test_single_chaos_run_reuses_shared_references():
    import asyncio

    specs, _ = plan_campaign(seed=1, requests=4)
    refs = reference_payloads(specs)
    report = asyncio.run(run_service_chaos(
        seed=1, requests=4, workers=2, references=refs))
    assert report["ok"] >= 1
    assert report["distinct_keys"] == len(refs)
