"""Determinism property tests: identical configurations produce
byte-identical simulated histories — the property every calibration
number in EXPERIMENTS.md relies on."""

from hypothesis import given, settings, strategies as st

from repro.bench.microbench import via_latency
from repro.cluster import build_mesh, build_engines


def test_via_latency_deterministic_across_runs():
    assert via_latency(4, repeats=3) == via_latency(4, repeats=3)


@given(st.lists(st.tuples(st.integers(0, 2),
                          st.sampled_from([16, 2048, 20000])),
                min_size=1, max_size=6))
@settings(max_examples=10, deadline=None)
def test_engine_timeline_deterministic(messages):
    def run_once():
        cluster = build_mesh((2,), wrap=False)
        engines = build_engines(cluster)
        sim = cluster.sim
        recvs = [
            engines[1].irecv(0, tag, 1, max(nbytes, 64))
            for tag, nbytes in messages
        ]
        for index, (tag, nbytes) in enumerate(messages):
            engines[0].isend(1, tag, 1, nbytes, data=index)
        for request in recvs:
            sim.run_until_complete(request, limit=1e7)
        return [
            (request.received_data, round(sim.now, 9))
            for request in recvs
        ], sim.now

    first = run_once()
    second = run_once()
    assert first == second


def test_collective_timeline_deterministic():
    import numpy as np
    from repro.cluster import build_world, run_mpi

    def run_once():
        cluster = build_mesh((2, 2))
        comms = build_world(cluster)

        def program(comm):
            yield from comm.barrier()
            value = yield from comm.allreduce(
                nbytes=8, data=np.float64(comm.rank)
            )
            return (float(value), comm.engine.sim.now)

        return run_mpi(cluster, program, comms=comms)

    assert run_once() == run_once()
