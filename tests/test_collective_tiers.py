"""Three-tier differential harness: host vs kernel vs NIC collectives.

Every collective must produce bit-identical results on every tier
(values use exact float64 arithmetic, so fold-order differences cannot
hide behind rounding), reruns must be trace-deterministic, and the NIC
tier must do strictly less host-side work (api-call / irq-wait spans)
than the kernel tier on the same workload.
"""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.errors import MpiError
from repro.mpi.op import MAX, MIN, PROD, SUM
from repro.obs.recorder import (
    API_CALL,
    IRQ_WAIT,
    NIC_COMBINE,
    NIC_FORWARD,
)
from repro.sim.monitor import Trace

MESHES = ((2, 2), (2, 2, 2), (3, 3))
TIERS = ("host", "kernel", "nic")
#: (label, op, per-rank value factory).  All values are small exact
#: integers in float64, so any fold order yields the same bits.
OPS = (
    ("sum", SUM, lambda rank: np.float64(rank + 1)),
    ("prod", PROD, lambda rank: np.float64(1 + rank % 3)),
    ("max", MAX, lambda rank: np.float64((rank * 7) % 11)),
    ("min", MIN, lambda rank: np.float64((rank * 5) % 13)),
)


def _build(dims, tier, observe=False, trace=False):
    cluster = build_mesh(dims, wrap=True, stack="via")
    if observe:
        cluster.observability()
    if trace:
        cluster.sim.trace = Trace()
    comms = build_world(cluster)
    if tier == "kernel":
        for node in cluster.nodes:
            node.via.enable_kernel_collectives(root=0)
    elif tier == "nic":
        for node in cluster.nodes:
            node.via.enable_nic_collectives()
    for comm in comms:
        comm.set_collective_tier(tier)
    return cluster, comms


def _grid_program(comm):
    """One pass over the collective x op x root grid; returns a dict
    whose repr is the cross-tier comparison key."""
    size = comm.size
    out = {}
    for label, op, value_of in OPS:
        out[f"allreduce-{label}"] = yield from comm.allreduce(
            nbytes=64, op=op, data=value_of(comm.rank))
        out[f"reduce-{label}"] = yield from comm.reduce(
            root=0, nbytes=64, op=op, data=value_of(comm.rank))
    for root in (0, size - 1):
        out[f"bcast-r{root}"] = yield from comm.bcast(
            root=root, nbytes=128,
            data=np.float64(root + 17) if comm.rank == root else None)
    yield from comm.barrier()
    out["barrier_done"] = True
    return out


@pytest.mark.parametrize("dims", MESHES,
                         ids=["x".join(map(str, d)) for d in MESHES])
def test_tiers_bit_identical(dims):
    """The same collective grid gives bit-identical results per rank
    on every tier."""
    per_tier = {}
    for tier in TIERS:
        cluster, comms = _build(dims, tier)
        results = run_mpi(cluster, _grid_program, comms=comms)
        per_tier[tier] = [repr(r) for r in results]
    assert per_tier["host"] == per_tier["kernel"]
    assert per_tier["host"] == per_tier["nic"]


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("dims", MESHES,
                         ids=["x".join(map(str, d)) for d in MESHES])
def test_rerun_trace_identical(dims, tier):
    """Two runs of the same tier produce bit-identical event traces."""
    keys = []
    for _ in range(2):
        cluster, comms = _build(dims, tier, trace=True)
        results = run_mpi(cluster, _grid_program, comms=comms)
        keys.append((
            [repr(r) for r in results],
            [(r.time, r.name, r.kind)
             for r in cluster.sim.trace.records],
        ))
    assert keys[0] == keys[1]


def _allreduce_program(comm):
    for i in range(4):
        yield from comm.allreduce(nbytes=64,
                                  data=np.float64(comm.rank + i + 1))
    return None


def _collective_spans(recorder, prefix):
    ids = {trace for trace, info in recorder.traces.items()
           if info.name.startswith(prefix)}
    return [span for span in recorder.spans if span.trace in ids]


def test_nic_fewer_host_side_spans():
    """The offload claim, measured: on the same 4-allreduce workload
    the NIC tier records strictly fewer api-call/irq-wait spans than
    the kernel tier, no irq-wait at all, and at least 50% less
    host-side time per operation."""
    recorders = {}
    for tier in ("kernel", "nic"):
        cluster, comms = _build((2, 2, 2), tier, observe=True)
        run_mpi(cluster, _allreduce_program, comms=comms)
        recorders[tier] = cluster.sim.recorder

    kernel_spans = _collective_spans(recorders["kernel"], "kcoll-")
    nic_spans = _collective_spans(recorders["nic"], "nicoll-")

    def host_side(spans):
        return [s for s in spans if s.kind in (API_CALL, IRQ_WAIT)]

    kernel_host = host_side(kernel_spans)
    nic_host = host_side(nic_spans)
    assert len(nic_host) < len(kernel_host)
    # The NIC tier never waits on a per-hop interrupt.
    assert not any(s.kind == IRQ_WAIT for s in nic_spans)
    # The NIC stages exist only on the NIC tier.
    nic_kinds = {s.kind for s in nic_spans}
    kernel_kinds = {s.kind for s in kernel_spans}
    assert NIC_FORWARD in nic_kinds and NIC_COMBINE in nic_kinds
    assert NIC_FORWARD not in kernel_kinds
    assert NIC_COMBINE not in kernel_kinds
    # >= 50% host-overhead reduction per operation (acceptance gate).
    ops_k = len({s.trace for s in kernel_spans})
    ops_n = len({s.trace for s in nic_spans})
    mean_k = sum(s.duration for s in kernel_host) / ops_k
    mean_n = sum(s.duration for s in nic_host) / ops_n
    assert mean_n <= 0.5 * mean_k


def test_unknown_tier_rejected():
    cluster, comms = _build((2, 2), "host")
    with pytest.raises(MpiError, match="unknown collective tier"):
        comms[0].set_collective_tier("warp")


@pytest.mark.parametrize("tier", ("kernel", "nic"))
def test_tier_without_enablement_rejected(tier):
    cluster = build_mesh((2, 2), stack="via")
    comms = build_world(cluster)
    with pytest.raises(MpiError, match="not enabled"):
        comms[0].set_collective_tier(tier)


def test_offload_tier_needs_whole_torus():
    cluster, comms = _build((2, 2), "host")
    for node in cluster.nodes:
        node.via.enable_nic_collectives()
    sub = comms[0].create(range(3))
    with pytest.raises(MpiError, match="whole-torus"):
        sub.set_collective_tier("nic")
    # The whole-torus communicator itself accepts it.
    assert comms[0].set_collective_tier("nic") == "nic"
