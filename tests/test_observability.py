"""Flight recorder: span causality, scheduler-mode identity,
exporters, and the monitor satellites (deque trace, percentile/merge).
"""

import json

import pytest

from repro import fastpath
from repro.bench.microbench import via_latency, via_pingpong_bandwidth
from repro.obs import (
    ACK,
    API_CALL,
    COMPLETION,
    DESC_QUEUED,
    DMA,
    IRQ_WAIT,
    MESSAGE,
    RETRANSMIT,
    SWITCH_FORWARD,
    WIRE_HOP,
    FlightRecorder,
    MetricsTimeline,
)
from repro.obs.export import (
    api_overhead_per_message,
    breakdown_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.sim.monitor import Probe, SampleStats, Trace


# ---------------------------------------------------------------------------
# Satellites: Trace ring buffer, SampleStats.merge, Probe percentile/merge.
# ---------------------------------------------------------------------------

class _Evt:
    def __init__(self, name):
        self.name = name


def test_trace_ring_buffer_is_bounded_deque():
    trace = Trace(limit=5)
    for i in range(20):
        trace.record(float(i), _Evt(f"e{i}"))
    assert len(trace) == 5
    assert trace.records.maxlen == 5
    assert [r.name for r in trace.records] == [f"e{i}" for i in range(15, 20)]
    assert trace.records[-1].time == 19.0


def test_trace_unbounded_and_to_dicts():
    trace = Trace()
    trace.record(1.5, _Evt("a"))
    trace.record(2.5, _Evt("b"))
    assert trace.to_dicts() == [
        {"time": 1.5, "name": "a", "kind": "_Evt"},
        {"time": 2.5, "name": "b", "kind": "_Evt"},
    ]
    assert [r.name for r in trace.filter("a")] == ["a"]


def test_sample_stats_merge_matches_sequential():
    import random

    rng = random.Random(7)
    values = [rng.uniform(-5, 20) for _ in range(200)]
    combined = SampleStats()
    for v in values:
        combined.add(v)
    a, b = SampleStats(), SampleStats()
    for v in values[:70]:
        a.add(v)
    for v in values[70:]:
        b.add(v)
    a.merge(b)
    assert a.count == combined.count
    assert a.mean == pytest.approx(combined.mean)
    assert a.variance == pytest.approx(combined.variance)
    assert a.minimum == combined.minimum
    assert a.maximum == combined.maximum
    # Merging an empty side is the identity in both directions.
    empty = SampleStats()
    empty.merge(a)
    assert empty.count == a.count and empty.mean == a.mean


def test_probe_percentile_interpolates():
    probe = Probe()
    for v in [10.0, 20.0, 30.0, 40.0]:
        probe.observe("lat", v, keep=True)
    assert probe.percentile("lat", 0.0) == 10.0
    assert probe.percentile("lat", 100.0) == 40.0
    assert probe.percentile("lat", 50.0) == pytest.approx(25.0)
    assert probe.percentile("lat", 25.0) == pytest.approx(17.5)


def test_probe_percentile_errors():
    probe = Probe()
    probe.observe("unkept", 1.0)
    with pytest.raises(ValueError):
        probe.percentile("unkept", 50.0)
    with pytest.raises(ValueError):
        probe.percentile("missing", 50.0)
    probe.observe("kept", 1.0, keep=True)
    with pytest.raises(ValueError):
        probe.percentile("kept", 101.0)


def test_probe_merge_aggregates_mesh_wide():
    a, b = Probe(), Probe()
    for v in (1.0, 2.0):
        a.observe("x", v, keep=True)
    for v in (3.0, 4.0):
        b.observe("x", v, keep=True)
    b.observe("only_b", 9.0)
    a.merge(b)
    assert a.stats("x").count == 4
    assert a.stats("x").mean == pytest.approx(2.5)
    assert sorted(a.samples("x")) == [1.0, 2.0, 3.0, 4.0]
    assert a.stats("only_b").count == 1


def test_metrics_timeline_buckets():
    timeline = MetricsTimeline(interval=10.0)
    timeline.observe("s", 1.0, 2.0)
    timeline.observe("s", 9.0, 4.0)
    timeline.observe("s", 11.0, 6.0)
    points = timeline.timeline("s")
    assert [t for t, _ in points] == [0.0, 10.0]
    assert points[0][1].count == 2 and points[0][1].mean == pytest.approx(3.0)
    assert timeline.totals("s").count == 3
    with pytest.raises(ValueError):
        MetricsTimeline(interval=0.0)


# ---------------------------------------------------------------------------
# Recorder: span kinds, causality, and zero perturbation of results.
# ---------------------------------------------------------------------------

def _recorded_latency(nbytes=4, repeats=6, hops=1, fast=True):
    with fastpath.force(fast):
        sim = Simulator()
        recorder = FlightRecorder()
        sim.recorder = recorder
        latency = via_latency(nbytes=nbytes, repeats=repeats, hops=hops,
                              sim=sim)
    return latency, recorder


def test_span_kinds_cover_the_lifecycle():
    _, recorder = _recorded_latency()
    kinds = recorder.kinds()
    assert {MESSAGE, API_CALL, DESC_QUEUED, DMA, WIRE_HOP, IRQ_WAIT,
            COMPLETION} <= kinds
    assert len(kinds) >= 6


def test_wire_hop_spans_nest_inside_root_spans():
    _, recorder = _recorded_latency(nbytes=65536, repeats=3)
    hops = [s for s in recorder.spans if s.kind == WIRE_HOP]
    assert hops
    for span in recorder.spans:
        info = recorder.traces[span.trace]
        assert info.start <= span.start <= span.end <= info.end, (
            f"{span} escapes its root {info.describe()}"
        )
    for event in recorder.events:
        info = recorder.traces[event.trace]
        assert info.start <= event.start <= info.end


def test_multi_hop_emits_switch_forward_spans():
    _, recorder = _recorded_latency(hops=3)
    forwards = [s for s in recorder.spans if s.kind == SWITCH_FORWARD]
    # 2 intermediate nodes per direction, both directions, each repeat.
    assert forwards
    for span in forwards:
        assert span.end > span.start
        info = recorder.traces[span.trace]
        assert info.start <= span.start <= span.end <= info.end


def test_recorder_does_not_perturb_results():
    plain = via_latency(nbytes=4, repeats=6)
    recorded, _ = _recorded_latency()
    assert recorded == plain


def test_disabled_recorder_keeps_seed_tables_identical():
    # The recorder is opt-in: a fresh simulator has recorder=None and
    # the fig2 quick table must render exactly as before this feature.
    from repro.bench.harness import run_experiment

    table = run_experiment("fig2", quick=True).render()
    assert run_experiment("fig2", quick=True).render() == table
    assert Simulator().recorder is None


# ---------------------------------------------------------------------------
# Scheduler-mode identity: fastpath on/off emit identical span sets.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nbytes,repeats,hops", [
    (4, 6, 1),        # fig2 point: latency workload
    (65536, 3, 1),    # fig3 point: trains engage
    (4096, 3, 2),     # multi-hop: switch-forward path
])
def test_span_sets_identical_across_scheduler_modes(nbytes, repeats, hops):
    lat_on, rec_on = _recorded_latency(nbytes, repeats, hops, fast=True)
    lat_off, rec_off = _recorded_latency(nbytes, repeats, hops, fast=False)
    assert lat_on == lat_off
    assert rec_on.span_keys() == rec_off.span_keys()


def test_bandwidth_span_sets_identical_across_modes():
    def run(fast):
        with fastpath.force(fast):
            sim = Simulator()
            recorder = FlightRecorder()
            sim.recorder = recorder
            bw = via_pingpong_bandwidth(nbytes=262144, repeats=3, sim=sim)
        return bw, recorder

    bw_on, rec_on = run(True)
    bw_off, rec_off = run(False)
    assert bw_on == bw_off
    assert rec_on.span_keys() == rec_off.span_keys()
    # The fast run must actually have used trains for the comparison to
    # exercise span synthesis.
    assert any(s.kind == DMA for s in rec_on.spans)


def test_collective_span_sets_identical_across_modes():
    from repro.bench.observability import traced_collective

    def run(fast):
        with fastpath.force(fast):
            return traced_collective(dims=(2, 2), nbytes=2048)

    assert run(True).span_keys() == run(False).span_keys()


# ---------------------------------------------------------------------------
# Reliability events under loss.
# ---------------------------------------------------------------------------

def test_reliability_events_recorded_under_loss():
    from repro.hw import faults

    faults.clear_registry()
    faults.set_ambient(faults.FaultParams(seed=11, loss_rate=0.05))
    try:
        sim = Simulator()
        recorder = FlightRecorder()
        sim.recorder = recorder
        via_latency(nbytes=16384, repeats=8, sim=sim)
    finally:
        faults.set_ambient(None)
        faults.clear_registry()
    kinds = {e.kind for e in recorder.events}
    assert ACK in kinds
    # Window-depth timeline was fed by the reliable channel.
    assert any(name.startswith("window:")
               for name in recorder.metrics.names())
    # With 5% loss over ~? frames, the go-back-N window must have
    # retransmitted at least once for this seed.
    assert RETRANSMIT in kinds or DESC_QUEUED in kinds


# ---------------------------------------------------------------------------
# Metrics timelines from real traffic.
# ---------------------------------------------------------------------------

def test_metrics_series_populated():
    _, recorder = _recorded_latency(nbytes=65536, repeats=3)
    names = recorder.metrics.names()
    assert any(name.startswith("link-util:") for name in names)
    assert any(name.startswith("ring:") for name in names)
    assert any(name.startswith("bus:") for name in names)
    assert any(name.startswith("pci") for name in names)
    link = next(name for name in names if name.startswith("link-util:"))
    assert recorder.metrics.totals(link).count > 0


# ---------------------------------------------------------------------------
# Exporters.
# ---------------------------------------------------------------------------

def test_chrome_trace_schema_and_roundtrip(tmp_path):
    _, recorder = _recorded_latency(hops=2)
    path = tmp_path / "out.json"
    trace = write_chrome_trace(recorder, str(path))
    assert validate_chrome_trace(trace) == []
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    events = loaded["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    named = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "process_name"}
    # One track per node plus per link on the 3-node line.
    assert {"n0", "n1", "n2"} <= named
    assert any(name.startswith("link[") for name in named)
    pids = {e["pid"] for e in events}
    meta_pids = {e["pid"] for e in events if e["ph"] == "M"}
    assert pids <= meta_pids


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace({}) != []
    bad = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                            "ts": 0.0, "dur": -1.0}]}
    assert any("negative dur" in p for p in validate_chrome_trace(bad))
    assert any("unsupported phase" in p for p in validate_chrome_trace(
        {"traceEvents": [{"ph": "Q"}]}))


def test_breakdown_matches_paper_host_overhead():
    _, recorder = _recorded_latency(nbytes=4, repeats=20)
    overhead = api_overhead_per_message(recorder)
    # ViaParams: send_overhead 2.68 + recv_overhead 3.68 = 6.36 us; the
    # acceptance bound is the paper's ~6 us within 10%.
    assert overhead == pytest.approx(6.36, rel=0.02)
    assert abs(overhead - 6.0) / 6.0 < 0.10
    table = breakdown_table(recorder)
    assert "api-call" in table and "p99 us" in table
    assert "6.360" in table


def test_export_handles_empty_recorder():
    recorder = FlightRecorder()
    trace = to_chrome_trace(recorder)
    assert validate_chrome_trace(trace) == []
    assert trace["traceEvents"] == []
    assert api_overhead_per_message(recorder) == 0.0


# ---------------------------------------------------------------------------
# Cluster API, hang diagnostics, CLI.
# ---------------------------------------------------------------------------

def test_mesh_cluster_observability_is_idempotent():
    from repro.cluster.builder import build_mesh

    cluster = build_mesh((2,), wrap=False)
    recorder = cluster.observability()
    assert cluster.observability() is recorder
    assert cluster.sim.recorder is recorder


def test_hang_report_includes_recent_spans():
    from repro.via.descriptors import RecvDescriptor
    from repro.bench.microbench import _via_pair

    cluster, (vi0, r0), (vi1, r1) = _via_pair(4096)
    recorder = cluster.observability()
    sim = cluster.sim

    from repro.via.descriptors import SendDescriptor

    def ping():
        vi1.post_recv(RecvDescriptor(r1, 0, 4096))
        yield from vi0.post_send(SendDescriptor(r0, 0, 128))
        yield from vi0.send_wait()

    def pong():
        yield from vi1.recv_wait()

    a = sim.spawn(ping())
    b = sim.spawn(pong())
    sim.run_until_complete(a)
    sim.run_until_complete(b)
    # Leave a stuck receive posted so the VI shows up in the report.
    vi1.post_recv(RecvDescriptor(r1, 0, 4096))
    report = cluster.hang_report()
    assert "posted recvs" in report
    assert "span " in report
    assert recorder.tail(track="n1", limit=20)


def test_cli_trace_and_breakdown(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "trace.json"
    assert main(["--trace", str(out), "--quick"]) == 0
    assert validate_chrome_trace(json.loads(out.read_text())) == []
    captured = capsys.readouterr().out
    assert "kinds" in captured and "perfetto" in captured.lower()

    assert main(["--breakdown", "--quick"]) == 0
    captured = capsys.readouterr().out
    assert "api overhead per message" in captured


def test_cli_still_requires_an_action(capsys):
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main([])
    capsys.readouterr()
