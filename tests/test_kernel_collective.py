"""Tests for interrupt-level collectives (paper section 7)."""

import numpy as np
import pytest

from repro.cluster import build_mesh, build_world, run_mpi
from repro.errors import ViaError
from repro.mpi.op import MAX, SUM


def _enabled_cluster(dims=(2, 2, 2)):
    cluster = build_mesh(dims, wrap=True)
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_kernel_collectives(root=0)
    return cluster, comms


def test_kernel_global_sum_correct():
    cluster, comms = _enabled_cluster()

    def program(comm):
        kc = comm.engine.device.kernel_collective
        result = yield from kc.global_sum(
            np.float64(comm.rank + 1), SUM
        )
        return float(result)

    assert run_mpi(cluster, program, comms=comms) == [36.0] * 8


def test_kernel_max():
    cluster, comms = _enabled_cluster()

    def program(comm):
        kc = comm.engine.device.kernel_collective
        result = yield from kc.global_sum(np.float64(comm.rank), MAX)
        return float(result)

    assert run_mpi(cluster, program, comms=comms) == [7.0] * 8


def test_repeated_reductions_stay_consistent():
    cluster, comms = _enabled_cluster()

    def program(comm):
        kc = comm.engine.device.kernel_collective
        results = []
        for iteration in range(4):
            value = yield from kc.global_sum(
                np.float64(comm.rank * (iteration + 1)), SUM
            )
            results.append(float(value))
        return results

    outputs = run_mpi(cluster, program, comms=comms)
    expected = [sum(r * (i + 1) for r in range(8)) for i in range(4)]
    assert all(out == expected for out in outputs)


def test_kernel_faster_than_user_level():
    """The section 7 rationale: skipping the user-space crossings on
    intermediate hops lowers the total latency."""
    cluster, comms = _enabled_cluster((2, 4, 4))
    times = {}

    def program(comm):
        sim = comm.engine.sim
        yield from comm.barrier()
        start = sim.now
        yield from comm.allreduce(nbytes=8, data=np.float64(1.0))
        times.setdefault("u0", start)
        times["u1"] = max(times.get("u1", 0.0), sim.now)
        yield from comm.barrier()
        start = sim.now
        kc = comm.engine.device.kernel_collective
        yield from kc.global_sum(np.float64(1.0), SUM)
        times.setdefault("k0", start)
        times["k1"] = max(times.get("k1", 0.0), sim.now)
        return None

    run_mpi(cluster, program, comms=comms)
    user = times["u1"] - times["u0"]
    kernel = times["k1"] - times["k0"]
    assert kernel < user


def test_enable_idempotent_same_root():
    """Re-enabling with the same root returns the existing engine —
    no silent replacement of in-flight state."""
    cluster = build_mesh((2, 2))
    first = cluster.nodes[0].via.enable_kernel_collectives(root=0)
    again = cluster.nodes[0].via.enable_kernel_collectives(root=0)
    assert again is first


def test_enable_different_root_rejected():
    """Changing the root used to silently clobber the engine (and any
    in-flight reduction state with it); now it is a hard error."""
    cluster = build_mesh((2, 2))
    cluster.nodes[0].via.enable_kernel_collectives(root=0)
    with pytest.raises(ViaError, match="re-root"):
        cluster.nodes[0].via.enable_kernel_collectives(root=1)


def test_offload_tiers_mutually_exclusive():
    """One device runs one offload engine: kernel and NIC collectives
    cannot coexist (both would claim the same wire traffic)."""
    cluster = build_mesh((2, 2))
    cluster.nodes[0].via.enable_kernel_collectives(root=0)
    with pytest.raises(ViaError, match="mutually exclusive"):
        cluster.nodes[0].via.enable_nic_collectives()
    cluster.nodes[1].via.enable_nic_collectives()
    with pytest.raises(ViaError, match="mutually exclusive"):
        cluster.nodes[1].via.enable_kernel_collectives(root=0)


def test_nic_enable_idempotent():
    cluster = build_mesh((2, 2))
    first = cluster.nodes[0].via.enable_nic_collectives()
    assert cluster.nodes[0].via.enable_nic_collectives() is first


def test_packet_without_enablement_rejected():
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)
    # Enable on one node only: its REDUCE packet hits a peer without
    # the kernel engine.
    cluster.nodes[1].via.enable_kernel_collectives(root=0)

    def program(comm):
        if comm.rank == 1:
            kc = comm.engine.device.kernel_collective
            yield from kc.global_sum(np.float64(1.0), SUM)
        else:
            yield comm.engine.sim.timeout(1e6)
        return None

    with pytest.raises(ViaError):
        run_mpi(cluster, program, comms=comms)


def test_nic_packet_without_enablement_rejected():
    """A NIC collective frame arriving at a node without the engine is
    a configuration error, not silent host-path traffic."""
    cluster = build_mesh((2, 2))
    comms = build_world(cluster)
    cluster.nodes[1].via.enable_nic_collectives()

    def program(comm):
        if comm.rank == 1:
            comm.set_collective_tier("nic")
            yield from comm.allreduce(nbytes=8, data=1.0)
        else:
            yield comm.engine.sim.timeout(1e6)
        return None

    with pytest.raises(ViaError, match="NIC collectives are not"):
        run_mpi(cluster, program, comms=comms)
