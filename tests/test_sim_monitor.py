"""Tests for tracing and probes."""

import numpy as np

from repro.sim import Simulator, Trace
from repro.sim.monitor import Probe, SampleStats


def test_trace_records_events():
    trace = Trace()
    sim = Simulator(trace=trace)

    def proc():
        yield sim.timeout(1)
        yield sim.timeout(2)

    sim.spawn(proc())
    sim.run()
    assert len(trace) >= 2
    times = [record.time for record in trace.records]
    assert times == sorted(times)


def test_trace_limit_keeps_tail():
    trace = Trace(limit=3)
    sim = Simulator(trace=trace)

    def proc():
        for _ in range(10):
            yield sim.timeout(1)

    sim.spawn(proc())
    sim.run()
    assert len(trace) == 3
    assert trace.records[-1].time == 10


def test_trace_filter():
    trace = Trace()
    sim = Simulator(trace=trace)
    sim.spawn(_named(sim), name="special-proc")
    sim.run()
    assert trace.filter("timeout")


def _named(sim):
    yield sim.timeout(1)


def test_sample_stats_matches_numpy():
    rng = np.random.default_rng(42)
    samples = rng.normal(10, 3, size=500)
    stats = SampleStats()
    for value in samples:
        stats.add(float(value))
    assert stats.count == 500
    assert abs(stats.mean - samples.mean()) < 1e-9
    assert abs(stats.stdev - samples.std(ddof=1)) < 1e-9
    assert stats.minimum == samples.min()
    assert stats.maximum == samples.max()


def test_sample_stats_single_value():
    stats = SampleStats()
    stats.add(5.0)
    assert stats.variance == 0.0
    assert stats.stdev == 0.0


def test_probe_accumulates_named_series():
    probe = Probe()
    for value in (1.0, 2.0, 3.0):
        probe.observe("latency", value, keep=True)
    probe.observe("bandwidth", 100.0)
    assert probe.names() == ["bandwidth", "latency"]
    assert probe.mean("latency") == 2.0
    assert probe.samples("latency") == [1.0, 2.0, 3.0]
    assert probe.samples("bandwidth") == []
