"""Canonical serialization and stable content hashing.

The content hash is the service cache key, so its stability is a
compatibility contract: the pinned digest below must only change when
the default parameter set (or the hashing scheme itself) deliberately
changes.
"""

import json

import pytest

from repro.canonical import (
    Canonical,
    canonical_json,
    content_hash,
    stable_json,
    to_canonical,
)
from repro.hw.faults import FaultParams, NodeFaultSpec
from repro.hw.params import GigEParams, default_gige, default_via

# The frozen digest of the default GigEParams.  Changing any default
# hardware parameter (or the canonical-form encoding) changes this —
# which is exactly the point: it silently invalidates every cached
# service result keyed on the old configuration.
PINNED_GIGE_DIGEST = \
    "f833945528a9408342c6ac6c8999c9fe3b7d9c7fd4356afd3bc8048a0f5447d2"


def test_default_gige_digest_is_pinned():
    assert GigEParams().content_hash() == PINNED_GIGE_DIGEST
    assert default_gige().content_hash() == PINNED_GIGE_DIGEST


def test_hash_is_insertion_order_independent():
    a = {"x": 1, "y": [1, 2, {"z": 3.5}]}
    b = {"y": [1, 2, {"z": 3.5}], "x": 1}
    assert content_hash(a) == content_hash(b)
    assert canonical_json(a) == canonical_json(b)


def test_floats_hash_by_exact_value():
    assert content_hash(0.1) != content_hash(0.1 + 1e-16)
    assert content_hash(1.0) != content_hash(1)  # type distinction
    assert content_hash(2.5) == content_hash(2.5)


def test_dataclasses_are_tagged_with_their_class():
    form = to_canonical(GigEParams())
    assert form["__class__"] == "GigEParams"
    # A different parameter class with overlapping field values must
    # not collide.
    assert content_hash(default_gige()) != content_hash(default_via())


def test_param_change_changes_hash():
    base = GigEParams()
    assert GigEParams(mtu=base.mtu).content_hash() == base.content_hash()
    assert GigEParams(mtu=9000).content_hash() != base.content_hash()


def test_fault_params_are_canonical():
    assert isinstance(FaultParams(), Canonical)
    spec = NodeFaultSpec(rank=3, crash_at=100.0)
    assert isinstance(spec, Canonical)
    assert spec.content_hash() == NodeFaultSpec(
        rank=3, crash_at=100.0).content_hash()
    assert spec.content_hash() != NodeFaultSpec(
        rank=4, crash_at=100.0).content_hash()


def test_to_canonical_dict_roundtrips_through_json():
    form = GigEParams().to_canonical_dict()
    assert json.loads(json.dumps(form, sort_keys=True)) == form


def test_stable_json_is_deterministic_text():
    payload = {"b": [1.5, 2], "a": {"nested": True}}
    assert stable_json(payload) == stable_json(dict(payload))
    assert json.loads(stable_json(payload)) == payload


def test_unsupported_types_are_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        to_canonical(object())
    with pytest.raises(ConfigurationError):
        to_canonical({1: "non-string key"})


def test_hang_error_carries_run_identity():
    from repro.errors import HangError

    exc = HangError("stuck", config_hash="abc123", fault_seed=7)
    assert exc.config_hash == "abc123"
    assert exc.fault_seed == 7
    bare = HangError("stuck")
    assert bare.config_hash is None and bare.fault_seed is None


def test_cluster_hang_report_names_config_hash_and_seed():
    from repro.cluster.builder import build_mesh
    from repro.hw.faults import FaultParams

    cluster = build_mesh((2, 2), gige_params=GigEParams(
        faults=FaultParams(seed=11, loss_rate=0.001)))
    report = cluster.hang_report()
    assert f"config_hash={cluster.config_hash()[:16]}" in report
    assert "fault_seed=11" in report
    assert len(cluster.config_hash()) == 64
    # The hash is stable for an identical configuration and moves
    # when the configuration moves.
    twin = build_mesh((2, 2), gige_params=GigEParams(
        faults=FaultParams(seed=11, loss_rate=0.001)))
    assert twin.config_hash() == cluster.config_hash()
    other = build_mesh((2, 2), gige_params=GigEParams(
        faults=FaultParams(seed=12, loss_rate=0.001)))
    assert other.config_hash() != cluster.config_hash()
