"""Property tests for the reliable-delivery protocol under seeded loss.

The go-back-N layer (via.reliability) must provide exactly-once,
in-order delivery over links that drop frames, without duplicate
completions, and with retry streaks bounded by the configured budget —
and all of it deterministically for a fixed fault seed.
"""

import pytest

from repro.errors import ViaError
from repro.hw.faults import FaultParams
from repro.hw.params import GigEParams, ViaParams
from repro.via.descriptors import (
    DescriptorStatus,
    RecvDescriptor,
    SendDescriptor,
)
from repro.via.vi import ViState
from tests.conftest import make_via_pair

#: Mixed message sizes: sub-frame, exactly-one-frame-ish, multi-frag.
SIZES = (4, 100, 1434, 5000, 20000)


def _lossy_pair(seed, loss=0.03, **via_kwargs):
    return make_via_pair(
        gige_params=GigEParams(
            faults=FaultParams(seed=seed, loss_rate=loss)
        ),
        via_params=ViaParams(**via_kwargs),
    )


def _run_exchange(seed, loss=0.03, nmsgs=40, **via_kwargs):
    """Send ``nmsgs`` tagged messages of mixed sizes over a lossy pair.

    Returns (payload list in arrival order, send-completion statuses,
    cluster) after the simulation drains.
    """
    cluster, (vi0, r0), (vi1, r1) = _lossy_pair(seed, loss, **via_kwargs)
    sim = cluster.sim
    received = []
    statuses = []

    def receiver():
        # Pre-post every buffer (VIA flow-control discipline: receives
        # must be outstanding before the matching send is posted).
        for _ in range(nmsgs):
            vi1.post_recv(RecvDescriptor(r1, 0, max(SIZES)))
        for _ in range(nmsgs):
            descriptor = yield from vi1.recv_wait()
            received.append(
                (descriptor.received_payload, descriptor.received_bytes)
            )

    def sender():
        for index in range(nmsgs):
            nbytes = SIZES[index % len(SIZES)]
            yield from vi0.post_send(
                SendDescriptor(r0, 0, nbytes, payload=("msg", index))
            )
            done = yield from vi0.send_wait()
            statuses.append(done.status)

    sim.spawn(receiver())
    process = sim.spawn(sender())
    sim.run_until_complete(process)
    sim.run()
    return received, statuses, cluster


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_exactly_once_in_order_under_loss(seed):
    nmsgs = 40
    received, statuses, cluster = _run_exchange(seed, nmsgs=nmsgs)
    # Every message arrived exactly once, in posting order, with the
    # right length — despite real frame losses on the wire.
    assert [p for p, _ in received] == [("msg", i) for i in range(nmsgs)]
    assert [n for _, n in received] == \
        [SIZES[i % len(SIZES)] for i in range(nmsgs)]
    # Every send completed exactly once, successfully.  (A duplicate
    # completion would raise inside mark_done, so reaching here with
    # nmsgs DONE statuses is the no-duplicate-completions property.)
    assert statuses == [DescriptorStatus.DONE] * nmsgs
    dropped = sum(sum(link.stats["dropped"]) for link in cluster.links)
    totals = cluster.reliability_stats()
    assert dropped > 0, "seed injected no losses; test is vacuous"
    assert totals["retransmits"] > 0
    assert totals["timeouts"] > 0
    assert totals["acks_sent"] >= totals["acks_received"] > 0


@pytest.mark.parametrize("seed", [1, 2])
def test_retry_streaks_bounded_by_budget(seed):
    _received, _statuses, cluster = _run_exchange(
        seed, loss=0.10, nmsgs=20, rel_max_retries=10
    )
    for node in cluster.nodes:
        for channel in node.via.agent._channels.values():
            assert (channel.stats["max_retry_streak"]
                    <= node.via.params.rel_max_retries)


def test_retry_budget_exhaustion_surfaces_via_error():
    """A link that goes (effectively forever) dark fails the send as a
    VIA error after the retry budget, instead of hanging."""
    cluster, (vi0, r0), (vi1, r1) = make_via_pair(
        gige_params=GigEParams(
            faults=FaultParams(seed=9, down_at=((5_000.0, 1e12),))
        ),
        via_params=ViaParams(rel_max_retries=3),
    )
    sim = cluster.sim
    assert cluster.nodes[0].via.reliable
    outcome = {}

    def sender():
        yield from vi0.post_send(
            SendDescriptor(r0, 0, 2000, payload="doomed")
        )
        done = yield from vi0.send_wait()
        outcome["status"] = done.status
        outcome["error"] = done.error

    sim.run(until=6_000.0)  # the outage has begun
    process = sim.spawn(sender())
    sim.run_until_complete(process)
    assert outcome["status"] is DescriptorStatus.ERROR
    assert isinstance(outcome["error"], ViaError)
    assert vi0.state is ViState.ERROR
    agent = cluster.nodes[0].via.agent
    assert agent.stats["rel_failures"] == 1
    # 3 allowed retries -> the 4th timeout trips the budget.
    assert agent.stats["timeouts"] == 4


@pytest.mark.parametrize("seed", [5, 11])
def test_same_seed_reproduces_identical_run(seed):
    """Determinism: identical fault seed => identical loss schedule,
    identical recovery schedule, identical counters and event count."""

    def fingerprint():
        received, _statuses, cluster = _run_exchange(seed, nmsgs=25)
        return (
            received,
            cluster.reliability_stats(),
            [tuple(link.stats["dropped"]) for link in cluster.links],
            cluster.sim.now,
            cluster.sim.events_processed,
        )

    assert fingerprint() == fingerprint()


def test_lossless_run_has_zero_fault_activity():
    """With default knobs the reliability machinery stays cold: no
    sequencing, no ACK traffic, no channels, no counters."""
    received, statuses, cluster = _run_exchange(0, loss=0.0, nmsgs=10)
    assert len(received) == 10
    totals = cluster.reliability_stats()
    assert all(value == 0 for value in totals.values()), totals
    for node in cluster.nodes:
        assert not node.via.reliable
        assert not node.via.agent._channels


def test_handshake_retries_connect_under_heavy_loss():
    """CONNECT/ACCEPT frames are themselves covered by a retry timer;
    a handshake eventually completes under serious loss."""
    for seed in range(3):
        cluster, (vi0, _r0), (vi1, _r1) = _lossy_pair(seed, loss=0.25)
        assert vi0.state is ViState.CONNECTED
        assert vi1.state is ViState.CONNECTED
        assert vi0.peer == (1, vi1.vi_id)
