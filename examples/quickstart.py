"""Quickstart: build a simulated GigE mesh cluster and pass messages.

Run:  python examples/quickstart.py

Builds a 3x3 torus wired like the paper's clusters (dual-port GigE
adapters, modified M-VIA), runs an SPMD program on all 9 ranks doing
point-to-point messaging and collectives, and prints the measured
(simulated) timings.
"""

import numpy as np

from repro.cluster import build_mesh, build_world, run_mpi


def program(comm):
    """One rank's program: a ring exchange, then collectives."""
    sim = comm.engine.sim
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size

    # Point-to-point: pass a token around the ring.
    start = sim.now
    request = yield from comm.sendrecv(
        dest=right, source=left,
        send_nbytes=64, recv_nbytes=64,
        data=f"token-from-{comm.rank}",
    )
    exchange_us = sim.now - start
    assert request.received_data == f"token-from-{left}"

    # Collectives: broadcast a config, reduce a result.
    config = {"beta": 5.7} if comm.rank == 0 else None
    config = yield from comm.bcast(root=0, nbytes=256, data=config)
    total = yield from comm.allreduce(nbytes=8,
                                      data=np.float64(comm.rank))
    yield from comm.barrier()
    return {
        "rank": comm.rank,
        "exchange_us": round(exchange_us, 2),
        "beta": config["beta"],
        "rank_sum": float(total),
    }


def main():
    cluster = build_mesh((3, 3), wrap=True)
    print(f"cluster: {cluster.torus!r}, "
          f"{len(cluster.links)} full-duplex GigE links")
    comms = build_world(cluster)
    print("nearest-neighbor VIA channels established "
          f"(sim time {cluster.sim.now:.0f} us)")
    results = run_mpi(cluster, program, comms=comms)
    for row in results:
        print(row)
    assert all(r["rank_sum"] == sum(range(9)) for r in results)
    print(f"\ntotal simulated time: {cluster.sim.now:.1f} us")


if __name__ == "__main__":
    main()
