"""Surviving a node crash mid-solve: ULFM recovery for LQCD.

Run:  python examples/lqcd_fault_tolerance.py

Eight ranks iterate the motivating workload's communication pattern —
six-direction halo exchanges plus a global residual combine per CG
iteration — while node 5 fail-stop crashes partway through.  The mesh's
failure detector notices the silence within a keepalive timeout,
gossips a death notice, and every pending operation touching the dead
rank fails with ``MpiProcFailed`` instead of hanging.

The survivors then run the standard ULFM recovery sequence:

1. ``comm.revoke()``   — poison the world communicator everywhere;
2. ``comm.agree(...)`` — fault-tolerant agreement on "we must rebuild";
3. ``comm.shrink()``   — a new communicator over exactly the survivors;
4. re-partition the problem over the shrunken world and keep solving
   (here: the surviving ranks redo the residual combines and verify
   every survivor contributed exactly once).

The victim's own program observes its crash as an exception too, so
nothing in the run blocks forever — the whole script finishes in
bounded simulated time with a recovery timeline printed at the end.
"""

from repro.cluster import build_mesh, run_mpi
from repro.cluster.process_api import build_world
from repro.errors import MessagingError, MpiError, ViaError
from repro.hw.faults import NodeFaultSpec
from repro.topology.torus import Direction

MACHINE = (2, 2, 2)
VICTIM = 5
CRASH_AT_US = 350.0
ITERATIONS = 12
HALO_BYTES = 4 * 4 * 4 * 24  # one 4^3 face of color vectors


def solve_step(comm, iteration):
    """One CG iteration's traffic: 6 halo faces + residual combine."""
    torus = comm.torus
    for axis in range(3):
        for sign in (+1, -1):
            tag = 100 * iteration + 10 * axis + (sign > 0)
            dst = torus.neighbor(comm.rank, Direction(axis, sign))
            src = torus.neighbor(comm.rank, Direction(axis, -sign))
            send = comm.isend(dst, tag, HALO_BYTES)
            recv = comm.irecv(src, tag, HALO_BYTES)
            yield from send.wait()
            yield from recv.wait()
    residual = yield from comm.allreduce(nbytes=8, data=1.0)
    return residual


def program(comm, cluster, timeline):
    sim = comm.engine.sim
    rank = comm.rank
    completed = 0
    try:
        for iteration in range(ITERATIONS):
            yield from solve_step(comm, iteration)
            completed += 1
        failure = None
    except (MpiError, ViaError, MessagingError) as exc:
        failure = exc
        if not cluster.node_alive(comm.engine.rank):
            timeline.append((sim.now, rank, "crashed"))
            return ("dead", completed)
        timeline.append((sim.now, rank,
                         f"caught {type(exc).__name__} after "
                         f"{completed} iterations"))
        comm.revoke()

    if not cluster.node_alive(comm.engine.rank):
        timeline.append((sim.now, rank, "crashed"))
        return ("dead", completed)

    # Recovery: agreement + shrink span every live rank, whether or not
    # the failure reached it before its loop finished.
    yield from comm.agree(failure is None)
    world = yield from comm.shrink()
    timeline.append((sim.now, rank,
                     f"shrunk to {world.size} ranks {world.group.ranks()}"))

    # Continue on the survivors: redo the global combines and check the
    # exactly-once invariant (each survivor counted once, the dead rank
    # never).
    for iteration in range(3):
        count = yield from world.allreduce(nbytes=8, data=1.0)
        assert count == world.size, (rank, count)
    timeline.append((sim.now, rank, "resumed solve on survivors"))
    return ("survived", completed, world.size)


def main():
    cluster = build_mesh(
        MACHINE, stack="via",
        node_faults=[NodeFaultSpec(rank=VICTIM, crash_at=CRASH_AT_US)],
    )
    comms = build_world(cluster)
    timeline = []
    results = run_mpi(cluster, program, args=(cluster, timeline),
                      comms=comms, limit=500_000.0)

    print(f"machine {MACHINE}, victim rank {VICTIM} crashes at "
          f"t={CRASH_AT_US}us")
    for when, rank, what in sorted(timeline):
        print(f"  t={when:9.1f}us  rank {rank}: {what}")
    print()
    assert results[VICTIM][0] == "dead"
    survivors = [r for r in results if r[0] == "survived"]
    assert len(survivors) == cluster.size - 1
    assert all(r[2] == cluster.size - 1 for r in survivors)
    detect = [t for t, _r, what in timeline if "caught" in what]
    print(f"all {len(survivors)} survivors recovered; failure observed "
          f"{min(detect) - CRASH_AT_US:.0f}-{max(detect) - CRASH_AT_US:.0f}us "
          f"after the crash (keepalive timeout), no operation hung")
    print(f"death log: {cluster.death_log}")


if __name__ == "__main__":
    main()
