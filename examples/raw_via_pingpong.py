"""OS-bypass messaging at the raw VIA level (VIPL-style API).

Run:  python examples/raw_via_pingpong.py

This is the layer below MPI/QMP: Virtual Interfaces, registered
memory, posted descriptors, completion waits — the programming model
of the paper's modified M-VIA.  The example measures the small-message
half round trip (the paper's 18.5 us) and the large-message
simultaneous bandwidth (~110 MB/s), then runs the same pingpong over
the kernel TCP stack for contrast.
"""

from repro.cluster import build_mesh
from repro.via import vipl
from repro.via.descriptors import RecvDescriptor, SendDescriptor


def via_pingpong():
    cluster = build_mesh((2,), wrap=False, stack="via")
    sim = cluster.sim
    nic0, nic1 = cluster.nodes[0].via, cluster.nodes[1].via

    # VIPL bring-up: protection tags, memory, VIs, connection.
    ptag0 = vipl.VipCreatePtag(nic0)
    ptag1 = vipl.VipCreatePtag(nic1)
    vi0 = vipl.VipCreateVi(nic0, ptag0)
    vi1 = vipl.VipCreateVi(nic1, ptag1)
    setup = {}

    def bring_up():
        setup["mem0"] = yield from vipl.VipRegisterMem(nic0, 1 << 20,
                                                       ptag0)
        setup["mem1"] = yield from vipl.VipRegisterMem(nic1, 1 << 20,
                                                       ptag1)
        # Both sides rendezvous on a discriminator.
        sim.spawn(vipl.VipConnectWait(vi1, "pingpong"))
        yield from vipl.VipConnectRequest(vi0, 1, "pingpong")

    sim.run_until_complete(sim.spawn(bring_up()))
    mem0, mem1 = setup["mem0"], setup["mem1"]
    print(f"connected at simulated t={sim.now:.1f} us "
          f"(includes memory registration: real pinning cost)")

    rounds = 20
    result = {}

    def ponger():
        for _ in range(rounds):
            vipl.VipPostRecv(vi1, RecvDescriptor(mem1, 0, 4096))
            yield from vipl.VipRecvWait(vi1)
            yield from vipl.VipPostSend(vi1, SendDescriptor(mem1, 0, 4))
            yield from vipl.VipSendWait(vi1)

    def pinger():
        start = sim.now
        for _ in range(rounds):
            vipl.VipPostRecv(vi0, RecvDescriptor(mem0, 0, 4096))
            yield from vipl.VipPostSend(vi0, SendDescriptor(mem0, 0, 4))
            yield from vipl.VipSendWait(vi0)
            yield from vipl.VipRecvWait(vi0)
        result["rtt2"] = (sim.now - start) / rounds / 2

    sim.spawn(ponger())
    sim.run_until_complete(sim.spawn(pinger()))
    print(f"M-VIA 4-byte RTT/2: {result['rtt2']:.2f} us "
          f"(paper: ~18.5 us)")


def tcp_pingpong():
    cluster = build_mesh((2,), wrap=False, stack="tcp")
    sim = cluster.sim
    stacks = [node.tcp for node in cluster.nodes]
    result = {}

    def server():
        sock = yield from stacks[1].listen(7)
        for _ in range(20):
            yield from sock.recv(4)
            yield from sock.send(4)

    def client():
        sock = yield from stacks[0].connect(1, 7)
        start = sim.now
        for _ in range(20):
            yield from sock.send(4)
            yield from sock.recv(4)
        result["rtt2"] = (sim.now - start) / 40

    sim.spawn(server())
    sim.run_until_complete(sim.spawn(client()))
    print(f"TCP   4-byte RTT/2: {result['rtt2']:.2f} us "
          f"(paper: 'at least 30% higher')")


def via_simultaneous_bandwidth():
    from repro.bench.microbench import via_simultaneous_bandwidth

    bandwidth = via_simultaneous_bandwidth(2_000_000)
    print(f"M-VIA simultaneous send bandwidth: {bandwidth:.1f} MB/s "
          f"(paper: ~110 MB/s)")


if __name__ == "__main__":
    via_pingpong()
    tcp_pingpong()
    via_simultaneous_bandwidth()
