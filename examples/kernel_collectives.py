"""The paper's future work, built: interrupt-level global reduction.

Run:  python examples/kernel_collectives.py

Section 7 of the paper sketches "interrupt-level based collective
communication, in which intermediate collective communications are
carried out in the kernel space", to cut the user-space crossings out
of every intermediate hop of a global sum.  This example runs both
implementations on a 4x4x4 torus and prints the latency difference,
then shows the post-run utilization report.
"""

import numpy as np

from repro.analysis.timeline import utilization_report
from repro.cluster import build_mesh, build_world, run_mpi
from repro.mpi.op import SUM

DIMS = (4, 4, 4)


def program(comm, times):
    sim = comm.engine.sim

    # 1. Classic user-level global combine (reduce + broadcast).
    yield from comm.barrier()
    start = sim.now
    user_value = yield from comm.allreduce(
        nbytes=8, data=np.float64(comm.rank)
    )
    times.setdefault("user_start", start)
    times["user_end"] = max(times.get("user_end", 0.0), sim.now)

    # 2. Kernel-space combining: intermediate hops never leave
    #    interrupt context.
    yield from comm.barrier()
    start = sim.now
    kernel_value = yield from comm.engine.device.kernel_collective.global_sum(
        np.float64(comm.rank), SUM
    )
    times.setdefault("kernel_start", start)
    times["kernel_end"] = max(times.get("kernel_end", 0.0), sim.now)

    assert float(user_value) == float(kernel_value)
    return float(kernel_value)


def main():
    cluster = build_mesh(DIMS, wrap=True)
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_kernel_collectives(root=0)
    times = {}
    values = run_mpi(cluster, program, args=(times,), comms=comms)
    expected = sum(range(cluster.size))
    assert all(v == expected for v in values)

    user_us = times["user_end"] - times["user_start"]
    kernel_us = times["kernel_end"] - times["kernel_start"]
    print(f"global sum over {cluster.size} nodes ({DIMS} torus):")
    print(f"  user-level   (reduce + bcast): {user_us:8.1f} us")
    print(f"  interrupt-level (section 7):   {kernel_us:8.1f} us "
          f"({100 * (1 - kernel_us / user_us):.0f}% faster)")
    print()
    print(utilization_report(cluster, cluster.sim.now, top=5))


if __name__ == "__main__":
    main()
