"""Scatter algorithms on the mesh: SDF vs the optimal OPT (Figure 6).

Run:  python examples/scatter_algorithms.py

An LQCD run dispatches input data from the root to every node ~25,000
times (paper section 5.2), which made an optimal one-to-all
personalized algorithm worth designing.  This example shows both
algorithms two ways:

1. the paper's synchronized step model — verifying OPT hits its
   optimality bound max(T1, T2) exactly;
2. the full simulation on an 8x8 torus — kernel-level packet
   switching, FDF source-routed streams for OPT.
"""

from repro.cluster import build_mesh, build_world, run_mpi
from repro.collectives.schedule import (
    opt_bound,
    opt_schedule,
    sdf_schedule,
)
from repro.topology import Torus, partition_regions

DIMS = (8, 8)
ROOT = 0


def analytic():
    torus = Torus(DIMS)
    partition = partition_regions(torus, ROOT)
    print(f"--- step model on {torus!r}")
    print(f"regions per root link: "
          f"{[len(m) for m in partition.regions.values()]}")
    sdf = sdf_schedule(torus, ROOT)
    opt = opt_schedule(torus, ROOT)
    bound = opt_bound(torus, ROOT)
    print(f"SDF steps: {sdf.steps}")
    print(f"OPT steps: {opt.steps}  (bound max(T1,T2) = {bound})")
    assert opt.steps == bound, "OPT must be optimal"
    print(f"step-model speedup: {sdf.steps / opt.steps:.2f}x")


def simulated():
    print(f"\n--- full simulation on {DIMS} (4KB per destination)")
    cluster = build_mesh(DIMS, wrap=True)
    comms = build_world(cluster)
    times = {}
    for algorithm in ("sdf", "opt"):
        marks = {}

        def program(comm, algorithm=algorithm, marks=marks):
            sim = comm.engine.sim
            yield from comm.barrier()
            start = sim.now
            data = None
            if comm.rank == ROOT:
                data = [f"input-{r}" for r in range(comm.size)]
            slice_ = yield from comm.scatter(
                root=ROOT, nbytes=4096, data=data, algorithm=algorithm
            )
            assert slice_ == f"input-{comm.rank}"
            marks.setdefault("start", start)
            marks["end"] = max(marks.get("end", 0.0), sim.now)
            return None

        run_mpi(cluster, program, comms=comms)
        times[algorithm] = marks["end"] - marks["start"]
        print(f"{algorithm.upper():4s}: {times[algorithm]:9.1f} us")
    print(f"simulated speedup: {times['sdf'] / times['opt']:.2f}x "
          f"(paper reports ~4x on average)")


if __name__ == "__main__":
    analytic()
    simulated()
