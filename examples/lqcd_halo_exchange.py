"""The paper's motivating workload: a parallel LQCD operator step.

Run:  python examples/lqcd_halo_exchange.py

Eight ranks on a 2x2x2 torus each own a 4^4 sub-lattice.  Every
iteration they exchange 3-D hypersurface halos with all six neighbors
through MPI/QMP over the simulated mesh (real numpy boundary planes
travel), apply the SU(3) hopping operator, and combine a global norm —
exactly the per-iteration pattern described in section 1 of the paper.

The example checks a physics invariant across the distributed step
(the globally-summed operator norm is reproducible) and reports the
communication/computation breakdown per iteration.
"""

import numpy as np

from repro.cluster import build_mesh, run_mpi
from repro.lqcd.dslash import WilsonDslash
from repro.lqcd.halo import (
    HaloExchanger,
    field_planes,
    install_planes,
)
from repro.lqcd.lattice import COLOR_VECTOR_BYTES, LocalLattice
from repro.topology.torus import Direction

MACHINE = (2, 2, 2)
LOCAL = LocalLattice(4, 4, 4, 4)
ITERATIONS = 3


def program(comm, report):
    sim = comm.engine.sim
    rng = np.random.default_rng(42)  # same gauge field on every rank
    dslash = WilsonDslash(LOCAL, mass=0.5, rng=rng)
    psi = dslash.random_field(np.random.default_rng(1000 + comm.rank))
    torus = comm.torus
    neighbors = {
        (axis, sign): torus.neighbor(comm.rank, Direction(axis, sign))
        for axis in range(3) for sign in (+1, -1)
    }
    exchanger = HaloExchanger(comm, neighbors, LOCAL,
                              site_bytes=COLOR_VECTOR_BYTES)
    yield from comm.barrier()
    comm_us = 0.0
    for _ in range(ITERATIONS):
        # 1. Halo exchange: ship real boundary planes to neighbors.
        start = sim.now
        received = yield from exchanger.exchange(
            field_planes(dslash, psi)
        )
        install_planes(dslash, psi, received)
        comm_us += sim.now - start

        # 2. Apply the operator with the freshly filled halos.
        psi = dslash.apply(psi, halo_filled=True)

        # 3. Global reduction of the local norm (the per-iteration
        #    collective of section 1).
        local_norm = float(np.sum(np.abs(dslash.interior(psi)) ** 2))
        start = sim.now
        global_norm = yield from comm.allreduce(
            nbytes=8, data=np.float64(local_norm)
        )
        comm_us += sim.now - start

    report[comm.rank] = {
        "global_norm": float(global_norm),
        "halo_bytes_per_iter":
            exchanger.stats["bytes"] // ITERATIONS,
        "comm_us_per_iter": round(comm_us / ITERATIONS, 1),
    }
    return float(global_norm)


def main():
    cluster = build_mesh(MACHINE, wrap=True)
    report = {}
    norms = run_mpi(cluster, program, args=(report,))
    # Every rank computed the same global norm: the reduction worked.
    assert len(set(round(n, 6) for n in norms)) == 1
    sample = report[0]
    print(f"machine {MACHINE}, local lattice {LOCAL.dims} per node")
    print(f"global |D psi|^2 after {ITERATIONS} iterations: "
          f"{norms[0]:.6e} (identical on all {len(norms)} ranks)")
    print(f"halo traffic per node per iteration: "
          f"{sample['halo_bytes_per_iter']} bytes over 6 faces")
    print(f"communication time per iteration: "
          f"{sample['comm_us_per_iter']} us (simulated)")
    print(f"surface-to-volume ratio: {LOCAL.surface_to_volume():.2f}")


if __name__ == "__main__":
    main()
