"""The VIA kernel agent: connection management, receive dispatch, and
the modified M-VIA's interrupt-level mesh packet switch.

Everything in this module that handles frames runs *inside the NIC's
receive interrupt* (the port's driver generator is invoked with the CPU
already held at IRQ priority).  That is faithful to the real system:
M-VIA's receive copy happens in the kernel handler, and the Jlab
modification forwards non-local packets at interrupt level "without
copying data to and from user space" (section 5.1), which is why the
per-hop routing latency (12.5 us) is lower than the end-to-end latency
(18.5 us) — the two host-overhead ends are skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ViaDescriptorError, ViaError, TruncationError
from repro.hw.link import Frame
from repro.hw.nic import GigEPort
from repro.obs.recorder import IRQ_WAIT as _IRQ_WAIT, \
    SWITCH_FORWARD as _SWITCH_FORWARD
from repro.sim import Store
from repro.via.descriptors import RecvDescriptor
from repro.via.packet import NIC_COLLECTIVE_KINDS, PacketKind, ViaPacket
from repro.via.reliability import ReliableChannel
from repro.via.vi import VI, ViState

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.device import ViaDevice


class KernelAgent:
    """Per-node kernel-mode component of the VIA model."""

    #: CPU cost of connection-management packet handling (us).
    CONNECT_HANDLING_COST = 1.5

    def __init__(self, device: "ViaDevice") -> None:
        self.device = device
        self.sim = device.sim
        #: discriminator -> (vi, wake event) registered by connect_wait.
        self._listeners: Dict[object, Tuple[VI, object]] = {}
        #: discriminator -> queued CONNECT packets that arrived early.
        self._early_connects: Dict[object, List[ViaPacket]] = {}
        #: vi_id -> wake event for pending connect_request.
        self._connectors: Dict[int, object] = {}
        #: Frames awaiting an egress ring slot (switch backlog).
        self._switch_backlog = Store(device.sim,
                                     name=f"switchbl[{device.rank}]")
        #: vi_id -> reliable-delivery channel (created on demand).
        self._channels: Dict[int, ReliableChannel] = {}
        #: (src_node, src_vi, discriminator) -> local VI, for every
        #: completed passive-side handshake; lets a retransmitted
        #: CONNECT be answered with a duplicate ACCEPT instead of a
        #: second accept.
        self._accepted: Dict[Tuple, VI] = {}
        self.stats = {
            "frames": 0, "forwarded": 0, "checksum_errors": 0,
            "connects": 0, "rma_frames": 0, "data_frames": 0,
            "backlogged": 0,
            # Reliable-delivery counters (see via.reliability).
            "dropped_bad_checksum": 0, "acks_sent": 0,
            "acks_received": 0, "retransmits": 0, "timeouts": 0,
            "dup_frames": 0, "ooo_dropped": 0, "rel_failures": 0,
            "connect_retries": 0, "dup_accepts": 0, "dup_connects": 0,
            # Failure-detector counters (node faults only; all zero on
            # a fault-free run).
            "keepalives_sent": 0, "keepalives_received": 0,
            "dead_notices_sent": 0, "dead_notices_received": 0,
            "peers_declared_dead": 0, "recv_drained": 0,
            "dropped_dead": 0,
        }
        #: Keepalive-based failure detector; installed by the cluster
        #: builder only when node faults are configured, so the
        #: fault-free hot path pays one ``is None`` check at most.
        self._fd: Optional["_FailureDetector"] = None
        #: World ranks this node has already processed a death for
        #: (keeps gossip and teardown idempotent).
        self._known_dead: set = set()
        #: fn(dead_rank) hooks run after VI teardown on a death notice;
        #: the messaging engine registers here to fail pending requests.
        self.death_callbacks: list = []
        device.sim.spawn(self._backlog_drain(),
                         name=f"switch-drain[{device.rank}]")

    # ------------------------------------------------------------------
    # Connection management (kernel slow path).
    # ------------------------------------------------------------------
    def connect_request(self, vi: VI, dst_node: int, discriminator):
        """Process: active side of VipConnectRequest + wait."""
        if vi.state is not ViState.IDLE:
            raise ViaError(f"{vi!r} cannot connect from {vi.state.value}")
        vi.state = ViState.CONNECT_PENDING
        wake = self.sim.event(name=f"connect:{vi.vi_id}")
        self._connectors[vi.vi_id] = wake
        yield from self.device.transmit_control(
            dst_node, PacketKind.CONNECT, dst_vi=0, src_vi=vi.vi_id,
            payload=discriminator,
        )
        if self.device.reliable:
            # Handshake frames are not covered by the per-VI windows
            # (no connection yet), so the active side re-sends CONNECT
            # on its own timer until the ACCEPT lands.
            self.sim.spawn(
                self._connect_retry(vi, dst_node, discriminator),
                name=f"connect-rto[{self.device.rank}:{vi.vi_id}]",
            )
        peer = yield wake
        if peer is None:
            vi.state = ViState.ERROR
            raise vi.error or ViaError(f"{vi!r}: connect failed")
        vi.peer = peer
        vi.state = ViState.CONNECTED
        return vi

    def _connect_retry(self, vi: VI, dst_node: int, discriminator):
        """Process: retransmission timer for an in-flight CONNECT."""
        params = self.device.params
        rto = params.rel_rto
        retries = 0
        while vi.vi_id in self._connectors:
            yield self.sim.timeout(rto)
            if vi.vi_id not in self._connectors:
                return
            retries += 1
            if retries > params.rel_max_retries:
                wake = self._connectors.pop(vi.vi_id)
                vi.error = ViaError(
                    f"{vi!r}: connect to node {dst_node} failed after "
                    f"{params.rel_max_retries} retries"
                )
                self.stats["rel_failures"] += 1
                wake.succeed(None)
                if self._fd is not None:
                    self._fd.suspect(dst_node, "connect retries exhausted")
                return
            self.stats["connect_retries"] += 1
            rto = min(rto * params.rel_rto_backoff, params.rel_rto_max)
            yield from self.device.transmit_control(
                dst_node, PacketKind.CONNECT, dst_vi=0, src_vi=vi.vi_id,
                payload=discriminator,
            )

    def connect_wait(self, vi: VI, discriminator):
        """Process: passive side (VipConnectWait + VipConnectAccept)."""
        if vi.state is not ViState.IDLE:
            raise ViaError(f"{vi!r} cannot accept from {vi.state.value}")
        early = self._early_connects.get(discriminator)
        if early:
            packet = early.pop(0)
            if not early:
                del self._early_connects[discriminator]
            yield from self._accept(vi, packet)
            return vi
        vi.state = ViState.CONNECT_PENDING
        wake = self.sim.event(name=f"accept:{vi.vi_id}")
        self._listeners[discriminator] = (vi, wake)
        packet = yield wake
        yield from self._accept(vi, packet)
        return vi

    def _accept(self, vi: VI, packet: ViaPacket):
        vi.peer = (packet.src_node, packet.src_vi)
        vi.state = ViState.CONNECTED
        try:
            self._accepted[
                (packet.src_node, packet.src_vi, packet.payload)
            ] = vi
        except TypeError:  # unhashable discriminator: no dedup
            pass
        yield from self.device.transmit_control(
            packet.src_node, PacketKind.ACCEPT,
            dst_vi=packet.src_vi, src_vi=vi.vi_id,
        )

    # ------------------------------------------------------------------
    # Reliable delivery (see via.reliability for the protocol).
    # ------------------------------------------------------------------
    def channel_for(self, vi: VI) -> ReliableChannel:
        """The VI's reliable-delivery channel, created on first use."""
        channel = self._channels.get(vi.vi_id)
        if channel is None:
            channel = ReliableChannel(self, vi)
            self._channels[vi.vi_id] = channel
        return channel

    def reliable_transmit(self, vi: VI, packets, frame_kind: str,
                          route, descriptor):
        """Process: send ``packets`` (one message's fragments) through
        the VI's reliable channel.

        Each fragment waits for send-window room, gets the next
        sequence number, and is tracked for retransmission.  The
        descriptor completes when the *last* fragment is cumulatively
        ACKed (not at DMA fetch: under loss the buffer may be re-read
        for retransmission until then).
        """
        channel = self.channel_for(vi)
        last = len(packets) - 1
        for index, packet in enumerate(packets):
            yield from channel.admit()
            yield from channel.transmit(
                packet, frame_kind, route,
                descriptor if index == last else None,
            )

    def _apply_ack(self, packet: ViaPacket) -> None:
        vi = self.device.vis.get(packet.dst_vi)
        if vi is not None:
            self.channel_for(vi).process_ack(packet.ack)

    def _reliable_rx(self, packet: ViaPacket) -> bool:
        """Sequence-gate an arriving sequenced fragment."""
        vi = self.device.vis.get(packet.dst_vi)
        if vi is None:
            raise ViaError(
                f"node {self.device.rank}: sequenced frame for unknown "
                f"VI {packet.dst_vi}"
            )
        return self.channel_for(vi).rx_gate(packet)

    # ------------------------------------------------------------------
    # Receive dispatch — runs at interrupt level, CPU already held.
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame, port: GigEPort,
                     paid_until: Optional[float] = None):
        """Generator: process one received frame (driver entry point).

        ``paid_until`` (fast path only) is the instant up to which the
        interrupt dispatcher's per-frame cost is owed but not yet slept;
        every exit path below waits at least to that instant, folding
        the dispatcher's per-frame timeout into the handler's first
        wait.  Bookkeeping that moves ahead of the wait is unobservable:
        the CPU is held at IRQ priority for the whole batch.
        """
        self.stats["frames"] += 1
        packet: ViaPacket = frame.payload
        rec = self.sim.recorder
        if rec is not None:
            ctx = packet.trace
            ready = getattr(frame, "rx_ready", None)
            if ctx is not None and ready is not None:
                # Coalescing + dispatch delay: rx DMA done to the
                # instant the handler's cost accrual starts (paid_until
                # is that instant when the dispatcher folded it).
                base = paid_until if paid_until is not None \
                    else self.sim._now
                rec.span(ctx, _IRQ_WAIT, port.name,
                         f"n{self.device.rank}", ready, base)
        try:
            if self.device.params.verify_checksums and (
                    frame.corrupted or not packet.verify()):
                # The Jlab driver change (section 4): every packet is
                # checksummed, so wire damage is detected and the frame
                # dropped rather than delivered as good data.
                self.stats["checksum_errors"] += 1
                self.stats["dropped_bad_checksum"] += 1
                if paid_until is not None:
                    yield self.sim.sleep_until(paid_until)
                return
            if not self._inbound_alive(packet):
                # Node-fault teardown: a crashed node's NIC is silent
                # (it neither forwards, ACKs, nor accepts), and
                # survivors drop late traffic for VIs a death notice
                # already tore down.
                self.stats["dropped_dead"] += 1
                if paid_until is not None:
                    yield self.sim.sleep_until(paid_until)
                return
            if packet.dst_node != self.device.rank:
                try:
                    yield from self._forward(frame, packet, paid_until)
                except ViaError:
                    # Transit frame for a destination the node faults
                    # partitioned off: no live route, drop it.
                    self.stats["dropped_dead"] += 1
                return
            if packet.kind is PacketKind.ACK:
                # Explicit cumulative ACK: pure sender-side bookkeeping.
                self.stats["acks_received"] += 1
                self._apply_ack(packet)
                if paid_until is not None:
                    yield self.sim.sleep_until(paid_until)
                return
            if packet.ack >= 0:
                # Piggybacked cumulative ACK on reverse-direction data.
                self._apply_ack(packet)
            if packet.seq >= 0 and not self._reliable_rx(packet):
                # Duplicate or out-of-order fragment: dropped (and
                # re-ACKed) before any demux/copy cost is paid.
                if paid_until is not None:
                    yield self.sim.sleep_until(paid_until)
                return
            if packet.kind is PacketKind.DATA:
                yield from self._handle_data(packet, paid_until)
            elif packet.kind is PacketKind.RMA_WRITE:
                yield from self._handle_rma(packet, paid_until)
            else:
                # Rare control kinds: pay off the folded dispatcher
                # cost, then run the unmodified handlers.
                if paid_until is not None:
                    yield self.sim.sleep_until(paid_until)
                if packet.kind is PacketKind.CONNECT:
                    yield from self._handle_connect(packet)
                elif packet.kind is PacketKind.ACCEPT:
                    yield from self._handle_accept(packet)
                elif packet.kind is PacketKind.DISCONNECT:
                    yield from self._handle_disconnect(packet)
                elif packet.kind is PacketKind.REDUCE:
                    yield from self._kernel_collective().handle_reduce(
                        packet)
                elif packet.kind is PacketKind.CBCAST:
                    yield from self._kernel_collective().handle_cbcast(
                        packet)
                elif packet.kind is PacketKind.KEEPALIVE:
                    self.stats["keepalives_received"] += 1
                    if self._fd is not None:
                        self._fd.heard(packet.src_node)
                elif packet.kind is PacketKind.DEADNOTICE:
                    self.stats["dead_notices_received"] += 1
                    dead_rank, reason = packet.payload
                    self.on_peer_dead(dead_rank, f"notice: {reason}")
                elif packet.kind in NIC_COLLECTIVE_KINDS:
                    # A NIC-collective frame reached the host rx path:
                    # this node has no NIC engine installed while a
                    # peer is running the offloaded protocol.  Fail
                    # loudly instead of silently eating the frame and
                    # hanging the sender's collective.
                    raise ViaError(
                        f"node {self.device.rank}: received "
                        f"{packet.kind.value} frame but NIC "
                        f"collectives are not enabled on this node"
                    )
        finally:
            # Recycle the ring descriptor this frame consumed.
            port.post_rx_descriptors(1)

    def _handle_data(self, packet: ViaPacket,
                     paid_until: Optional[float] = None):
        """Two-sided data: per-fragment demux + the single receive copy."""
        self.stats["data_frames"] += 1
        device = self.device
        sim = self.sim
        if (sim._fast and device.params.recv_copy and packet.payload_bytes
                and device.host.membus.setup):
            # Demux bookkeeping runs now instead of after the demux
            # timeout: the CPU is held at IRQ level for the whole
            # interrupt batch, so no other process can observe the
            # earlier mutation, and the copy joins the memory bus at
            # the reference path's exact instant.
            base = sim._now if paid_until is None else paid_until
            when = base + device.params.rx_demux_cost
            vi = self._demux_data(packet)
            yield device.host.copy_at(packet.payload_bytes, when)
            self._finish_data(vi, packet)
            return
        if paid_until is not None:
            yield sim.sleep_until(paid_until)
        yield sim.timeout(device.params.rx_demux_cost)
        vi = self._demux_data(packet)
        # The M-VIA single receive copy: ring buffer -> user buffer,
        # performed by the kernel at interrupt level.
        if device.params.recv_copy and packet.payload_bytes:
            yield from device.host.copy(packet.payload_bytes,
                                        hold_cpu=False)
        self._finish_data(vi, packet)

    def _demux_data(self, packet: ViaPacket) -> VI:
        device = self.device
        vi = device.vis.get(packet.dst_vi)
        if vi is None:
            raise ViaError(
                f"node {device.rank}: DATA for unknown VI {packet.dst_vi}"
            )
        if packet.frag_index == 0:
            if vi._reassembly is not None:
                raise ViaError(f"{vi!r}: interleaved messages on one VI")
            if not vi.recv_queue:
                raise ViaDescriptorError(
                    f"{vi!r}: DATA arrived with empty receive queue "
                    "(flow control violated)"
                )
            descriptor: RecvDescriptor = vi.recv_queue.popleft()
            if packet.msg_bytes > descriptor.nbytes:
                raise TruncationError(
                    f"{vi!r}: message of {packet.msg_bytes} bytes into "
                    f"{descriptor.nbytes}-byte buffer"
                )
            vi._reassembly = [packet.msg_id, 0, descriptor]
        reassembly = vi._reassembly
        if reassembly is None or reassembly[0] != packet.msg_id:
            raise ViaError(f"{vi!r}: fragment for wrong message")
        if reassembly[1] != packet.frag_index:
            raise ViaError(
                f"{vi!r}: out-of-order fragment {packet.frag_index}, "
                f"expected {reassembly[1]}"
            )
        reassembly[1] += 1
        return vi

    def _finish_data(self, vi: VI, packet: ViaPacket) -> None:
        if packet.frag_index == packet.num_frags - 1:
            if vi._reassembly is None and vi.state is ViState.ERROR:
                # A death notice tore this VI down (draining the
                # in-progress reassembly) while the receive copy held
                # the irq process; the frame's work is already failed.
                self.stats["dropped_dead"] += 1
                return
            descriptor = vi._reassembly[2]
            descriptor.received_bytes = packet.msg_bytes
            descriptor.received_payload = packet.payload
            descriptor.received_immediate = packet.immediate
            if self.sim.recorder is not None:
                descriptor.trace = packet.trace
            vi._reassembly = None
            vi.complete_recv(descriptor)

    def _handle_rma(self, packet: ViaPacket,
                    paid_until: Optional[float] = None):
        """Remote-DMA write.

        On a commodity GigE adapter every incoming frame is DMA'd into
        the kernel ring buffers, so "remote DMA" still pays the single
        kernel copy into the target region (M-VIA's unavoidable "one
        memory copy on receiving").  What RMA eliminates is the
        *user-level* staging: no bounce buffer, no library copy, no
        receive-descriptor consumption except for the final notify.
        """
        self.stats["rma_frames"] += 1
        device = self.device
        sim = self.sim
        if (sim._fast and device.params.recv_copy and packet.payload_bytes
                and device.host.membus.setup):
            # Same demux fold as _handle_data: safe because the CPU is
            # held at IRQ level until the batch completes.
            base = sim._now if paid_until is None else paid_until
            when = base + device.params.rx_demux_cost
            demux = self._demux_rma_safe(packet)
            if demux is None:
                yield sim.sleep_until(paid_until or sim._now)
                return
            vi, region = demux
            yield device.host.copy_at(packet.payload_bytes, when)
            self._finish_rma(vi, region, packet)
            return
        if paid_until is not None:
            yield sim.sleep_until(paid_until)
        yield sim.timeout(device.params.rx_demux_cost)
        demux = self._demux_rma_safe(packet)
        if demux is None:
            return
        vi, region = demux
        if device.params.recv_copy and packet.payload_bytes:
            yield from device.host.copy(packet.payload_bytes,
                                        hold_cpu=False)
        self._finish_rma(vi, region, packet)

    def _demux_rma_safe(self, packet: ViaPacket):
        """Demux, tolerating stale frames once node faults are armed.

        A death notice tears down pending receives (deregistering their
        landing regions) while the matching RMA data can already be in
        flight; under node faults such a frame is dropped like any
        other traffic addressed to torn-down state, never an error.
        """
        try:
            return self._demux_rma(packet)
        except ViaError:
            health = self.device._fabric_health
            if health is not None and getattr(health, "has_node_faults",
                                              False):
                self.stats["dropped_dead"] += 1
                return None
            raise

    def _demux_rma(self, packet: ViaPacket):
        device = self.device
        vi = device.vis.get(packet.dst_vi)
        if vi is None:
            raise ViaError(
                f"node {device.rank}: RMA for unknown VI {packet.dst_vi}"
            )
        region = device.memory.find(
            packet.remote_addr, packet.payload_bytes, vi.tag,
            for_rma_write=True,
        )
        return vi, region

    def _finish_rma(self, vi: VI, region, packet: ViaPacket) -> None:
        if packet.frag_index == packet.num_frags - 1:
            if packet.payload is not None:
                region.data = packet.payload
            if packet.notify:
                if not vi.recv_queue:
                    raise ViaDescriptorError(
                        f"{vi!r}: RMA notify with empty receive queue"
                    )
                descriptor = vi.recv_queue.popleft()
                descriptor.received_bytes = packet.msg_bytes
                descriptor.received_payload = packet.payload
                descriptor.received_immediate = packet.immediate
                if self.sim.recorder is not None:
                    descriptor.trace = packet.trace
                vi.complete_recv(descriptor)

    def _handle_connect(self, packet: ViaPacket):
        self.stats["connects"] += 1
        yield self.sim.timeout(self.CONNECT_HANDLING_COST)
        discriminator = packet.payload
        try:
            accepted = self._accepted.get(
                (packet.src_node, packet.src_vi, discriminator)
            )
        except TypeError:
            accepted = None
        if accepted is not None:
            # Retransmitted CONNECT for a handshake we already
            # completed (our ACCEPT was lost): answer with a duplicate
            # ACCEPT, do not consume a listener.
            self.stats["dup_connects"] += 1
            yield from self.device.transmit_control(
                packet.src_node, PacketKind.ACCEPT,
                dst_vi=packet.src_vi, src_vi=accepted.vi_id,
            )
            return
        listener = self._listeners.pop(discriminator, None)
        if listener is None:
            early = self._early_connects.setdefault(discriminator, [])
            if any(p.src_node == packet.src_node
                   and p.src_vi == packet.src_vi for p in early):
                # Retransmitted CONNECT already queued.
                self.stats["dup_connects"] += 1
                return
            early.append(packet)
            return
        _vi, wake = listener
        wake.succeed(packet)

    def _handle_accept(self, packet: ViaPacket):
        yield self.sim.timeout(self.CONNECT_HANDLING_COST)
        wake = self._connectors.pop(packet.dst_vi, None)
        if wake is None:
            vi = self.device.vis.get(packet.dst_vi)
            if (vi is not None and vi.state is ViState.CONNECTED
                    and vi.peer == (packet.src_node, packet.src_vi)):
                # Duplicate ACCEPT (the peer answered a retransmitted
                # CONNECT): the handshake already completed, ignore.
                self.stats["dup_accepts"] += 1
                return
            raise ViaError(
                f"node {self.device.rank}: ACCEPT for VI {packet.dst_vi} "
                "with no pending connect"
            )
        wake.succeed((packet.src_node, packet.src_vi))

    def _handle_disconnect(self, packet: ViaPacket):
        yield self.sim.timeout(self.CONNECT_HANDLING_COST)
        vi = self.device.vis.get(packet.dst_vi)
        if vi is not None:
            vi.state = ViState.IDLE
            vi.peer = None

    def _kernel_collective(self):
        collective = getattr(self.device, "kernel_collective", None)
        if collective is None:
            raise ViaError(
                f"node {self.device.rank}: kernel-collective packet "
                "but interrupt-level collectives not enabled"
            )
        return collective

    # ------------------------------------------------------------------
    # The mesh packet switch.
    # ------------------------------------------------------------------
    def _forward(self, frame: Frame, packet: ViaPacket,
                 paid_until: Optional[float] = None):
        """Store-and-forward one transit frame at interrupt level."""
        self.stats["forwarded"] += 1
        device = self.device
        rec = self.sim.recorder
        if rec is not None:
            t0 = paid_until if paid_until is not None else self.sim._now
        if paid_until is not None:
            # Folds the dispatcher's per-frame cost: same instant as
            # sleeping to paid_until and then the forward timeout.
            yield self.sim.sleep_until(
                paid_until + device.params.switch_forward_cost
            )
        else:
            yield self.sim.timeout(device.params.switch_forward_cost)
        if rec is not None and packet.trace is not None:
            rec.span(packet.trace, _SWITCH_FORWARD, f"n{device.rank}",
                     f"n{device.rank}", t0, self.sim._now)
        if packet.route:
            # Source-routed (OPT scatter): take the named hop, then
            # consume it for downstream switches.
            port_index = packet.route[0]
            packet.route = packet.route[1:] or None
            egress = device.ports.get(port_index)
            if egress is None:
                raise ViaError(
                    f"node {device.rank}: source route names missing "
                    f"port {port_index}"
                )
        else:
            egress = device.egress_port(packet.dst_node, packet=packet)
        out = Frame(
            payload_bytes=frame.payload_bytes,
            header_bytes=frame.header_bytes,
            payload=packet,
            kind=frame.kind,
        )
        # Preserve ordering: once anything is backlogged, everything
        # queues behind it.
        if len(self._switch_backlog) > 0 or not egress.try_enqueue_tx(out):
            self.stats["backlogged"] += 1
            self._switch_backlog.items.append((out, egress))
            self._switch_backlog._dispatch()

    def _backlog_drain(self):
        """Kernel thread that drains switch frames blocked on full
        egress rings."""
        while True:
            frame, egress = yield self._switch_backlog.get()
            yield from egress.enqueue_tx(frame)

    # ------------------------------------------------------------------
    # Node-failure handling (engaged only with node faults configured).
    # ------------------------------------------------------------------
    def start_failure_detector(self, cluster) -> None:
        """Arm the keepalive failure detector (cluster builder hook)."""
        if self._fd is None:
            self._fd = _FailureDetector(self, cluster)

    def _inbound_alive(self, packet: ViaPacket) -> bool:
        """May this frame be processed, or is an endpoint torn down?

        False when this node has crashed (fail-stop: the NIC goes
        silent with it) or when the frame targets a local VI already
        moved to ERROR by a death notice.  Always True without node
        faults — one short-circuited check on the hot path.
        """
        health = self.device._fabric_health
        if health is None or not getattr(health, "has_node_faults",
                                         False):
            return True
        if not health.node_alive(self.device.rank):
            return False
        if packet.dst_node == self.device.rank and packet.kind in (
                PacketKind.DATA, PacketKind.RMA_WRITE):
            vi = self.device.vis.get(packet.dst_vi)
            if vi is not None and vi.state is ViState.ERROR:
                return False
        return True

    def report_retry_exhausted(self, vi: VI) -> None:
        """Reliable-channel evidence: a whole retry budget burned.

        With the failure detector armed this is treated as a death
        verdict for the peer node; without it (plain link faults, PR 3
        semantics) it stays a per-VI error.
        """
        if self._fd is not None and vi.peer is not None:
            self._fd.suspect(vi.peer[0], "retry budget exhausted")

    def on_peer_dead(self, dead_rank: int, reason: str = "declared dead"
                     ) -> None:
        """Local teardown for a remote node's death (idempotent).

        Every VI connected to the dead node moves to ERROR: unACKed
        sends and pre-posted receive buffers drain through the normal
        completion surfaces with ``DescriptorStatus.ERROR`` so blocked
        waits return, then the kernel collective engine and the
        registered death callbacks (messaging engine) get their turn.
        """
        if dead_rank in self._known_dead or dead_rank == self.device.rank:
            return
        self._known_dead.add(dead_rank)
        self.stats["peers_declared_dead"] += 1
        device = self.device
        for vi in list(device.vis.values()):
            if vi.peer is not None and vi.peer[0] == dead_rank:
                self._fail_vi(vi, ViaError(
                    f"{vi!r}: peer node {dead_rank} {reason}"
                ))
        if device.kernel_collective is not None:
            device.kernel_collective.on_peer_dead(dead_rank, reason)
        if device.nic_collective is not None:
            device.nic_collective.on_peer_dead(dead_rank, reason)
        for callback in list(self.death_callbacks):
            callback(dead_rank)

    def on_local_crash(self, reason: str = "node crashed") -> None:
        """Fail-stop teardown of this node's own endpoints.

        Run at the crash instant so the victim's pending operations
        surface errors at the victim too ("raises at every affected
        rank") instead of silently freezing.
        """
        device = self.device
        for vi in list(device.vis.values()):
            self._fail_vi(vi, ViaError(f"{vi!r}: local {reason}"))
        for vi_id in list(self._connectors):
            wake = self._connectors.pop(vi_id)
            vi = device.vis.get(vi_id)
            if vi is not None and vi.error is None:
                vi.error = ViaError(f"{vi!r}: local {reason}")
            wake.succeed(None)
        if device.kernel_collective is not None:
            device.kernel_collective.on_local_crash(reason)
        if device.nic_collective is not None:
            device.nic_collective.on_local_crash(reason)
        for callback in list(self.death_callbacks):
            callback(device.rank)

    def _fail_vi(self, vi: VI, error: ViaError) -> None:
        """Move one VI to ERROR and drain both completion directions."""
        if vi.state is not ViState.ERROR:
            vi.state = ViState.ERROR
            vi.error = error
        channel = self._channels.get(vi.vi_id)
        if channel is not None:
            channel.fail_peer_dead(vi.error)
        while vi.recv_queue:
            descriptor = vi.recv_queue.popleft()
            self.stats["recv_drained"] += 1
            vi.fail_recv(descriptor)
        if vi._reassembly is not None:
            descriptor = vi._reassembly[2]
            vi._reassembly = None
            self.stats["recv_drained"] += 1
            vi.fail_recv(descriptor)

    def _send_control_safe(self, dst_node: int, kind: PacketKind,
                           payload=None):
        """Process: best-effort control frame; unreachable peers are
        dropped silently (keepalives and death gossip are datagrams)."""
        try:
            yield from self.device.transmit_control(
                dst_node, kind, dst_vi=0, src_vi=-1, payload=payload,
            )
        except ViaError:
            pass


class _FailureDetector:
    """Timeout-based failure detector over torus-neighbor keepalives.

    Each node heartbeats its distinct torus neighbors every
    ``fd_interval`` us; ``fd_timeout`` us of silence from a live
    neighbor is a death verdict.  Verdicts (from silence or from
    retry-budget exhaustion) update the mesh-wide alive-set on the
    cluster, tear down local endpoints, and gossip ``DEADNOTICE``
    frames along :func:`~repro.topology.routing.alive_path` routes so
    non-neighbors learn of the death with realistic propagation delay.
    """

    def __init__(self, agent: KernelAgent, cluster) -> None:
        self.agent = agent
        self.cluster = cluster
        self.device = agent.device
        self.sim = agent.sim
        self.interval = self.device.params.fd_interval
        self.timeout = self.device.params.fd_timeout
        rank = self.device.rank
        self.neighbor_ranks = sorted({
            neighbor for _d, neighbor in cluster.torus.neighbors(rank)
            if neighbor != rank
        })
        self.last_heard = {n: 0.0 for n in self.neighbor_ranks}
        self.sim.spawn(self._loop(), name=f"fd[{rank}]")

    def heard(self, rank: int) -> None:
        if rank in self.last_heard:
            self.last_heard[rank] = self.sim.now

    def suspect(self, rank: int, reason: str) -> None:
        """Out-of-band evidence (retry exhaustion) of a dead peer."""
        self._declare(rank, reason)

    def _declare(self, rank: int, reason: str) -> None:
        agent = self.agent
        if rank == self.device.rank or rank in agent._known_dead:
            return
        if not self.cluster.node_alive(self.device.rank):
            return  # a crashed node renders no verdicts
        self.cluster.declare_dead(rank, by=self.device.rank,
                                  reason=reason)
        agent.on_peer_dead(rank, f"declared dead ({reason})")
        # Gossip to every other live rank along alive paths; peers cut
        # off by the same failure are unreachable and dropped.
        for peer in self.cluster.alive_ranks():
            if peer == self.device.rank or peer == rank:
                continue
            agent.stats["dead_notices_sent"] += 1
            self.sim.spawn(
                agent._send_control_safe(
                    peer, PacketKind.DEADNOTICE, payload=(rank, reason),
                ),
                name=f"gossip[{self.device.rank}->{peer}]",
            )

    def _loop(self):
        sim = self.sim
        cluster = self.cluster
        agent = self.agent
        rank = self.device.rank
        now = sim.now
        for neighbor in self.neighbor_ranks:
            self.last_heard[neighbor] = now
        while cluster.node_alive(rank):
            # Deliberately consult only the agent's *local* death record
            # (_known_dead), never the cluster's god view: a crash
            # updates the global alive-set instantly, but survivors may
            # only learn of it through missing keepalives or gossip.
            for neighbor in self.neighbor_ranks:
                if neighbor in agent._known_dead:
                    continue
                agent.stats["keepalives_sent"] += 1
                sim.spawn(
                    agent._send_control_safe(
                        neighbor, PacketKind.KEEPALIVE,
                    ),
                    name=f"ka[{rank}->{neighbor}]",
                )
            yield sim.timeout(self.interval)
            if not cluster.node_alive(rank):
                return
            now = sim.now
            for neighbor in self.neighbor_ranks:
                silence = now - self.last_heard[neighbor]
                if (neighbor not in agent._known_dead
                        and silence > self.timeout):
                    self._declare(
                        neighbor, f"no keepalive for {silence:.0f}us",
                    )
