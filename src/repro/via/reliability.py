"""Per-VI reliable-delivery channels: go-back-N over the lossy mesh.

The modified M-VIA's checksums (section 4) only give *detection* — a
damaged frame is dropped, and without recovery the message is gone.
This module supplies the recovery half, in the style of the go-back-N
retransmission the related PM/Ethernet and APENet clusters layered
over their unreliable mesh links:

* every DATA/RMA fragment carries a per-VI sequence number
  (:attr:`~repro.via.packet.ViaPacket.seq`);
* the sender keeps a bounded window of unacknowledged fragments, with
  a retransmission timer and exponential backoff; a bounded budget of
  consecutive timeouts without progress transitions the VI to ERROR
  and fails its pending sends (the VIA error surface);
* the receiver delivers strictly in order: duplicates and
  out-of-order fragments are dropped (and re-ACKed), so the existing
  reassembly machinery sees exactly the lossless frame stream;
* ACKs are cumulative, delayed (every ``rel_ack_every`` frames or
  ``rel_ack_delay`` us), and piggybacked on reverse-direction data
  (:attr:`~repro.via.packet.ViaPacket.ack`).

Channels live in the node's :class:`~repro.via.kernel_agent.KernelAgent`
(one per local VI) and hold both the transmit state for the VI's
outgoing sequence space and the receive state for frames addressed to
it.  All timer and ACK scheduling uses the deterministic simulation
clock, so a given fault seed reproduces the identical recovery
schedule on every run.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import ViaError
from repro.hw.link import Frame
from repro.obs.recorder import ACK as _ACK, \
    DESC_QUEUED as _DESC_QUEUED, RETRANSMIT as _RETRANSMIT, \
    TIMEOUT as _TIMEOUT
from repro.sim.events import Callback
from repro.via.packet import PacketKind, ViaPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.kernel_agent import KernelAgent
    from repro.via.descriptors import Descriptor
    from repro.via.vi import VI


class _SendEntry:
    """One unacknowledged fragment: pristine packet template plus the
    frame metadata needed to rebuild a wire copy per attempt."""

    __slots__ = ("seq", "packet", "frame_kind", "route", "descriptor")

    def __init__(self, seq: int, packet: ViaPacket, frame_kind: str,
                 route: Optional[tuple],
                 descriptor: Optional["Descriptor"]) -> None:
        self.seq = seq
        self.packet = packet
        self.frame_kind = frame_kind
        #: Full source route (first hop included) of the original
        #: attempt; retransmissions under a dead-link fabric drop it
        #: and let fault-aware routing find a live path.
        self.route = route
        #: Completed (or failed) when this entry's seq is cumulatively
        #: ACKed; only the final fragment of a message carries one.
        self.descriptor = descriptor


class ReliableChannel:
    """Reliable-delivery state of one VI (both directions)."""

    def __init__(self, agent: "KernelAgent", vi: "VI") -> None:
        self.agent = agent
        self.vi = vi
        self.sim = agent.sim
        self.params = agent.device.params
        # -- transmit side -------------------------------------------------
        self.next_seq = 0
        self.unacked: deque = deque()
        self.rto = self.params.rel_rto
        #: Consecutive timeouts without cumulative-ACK progress.
        self.retries = 0
        self._deadline = 0.0
        self._timer_running = False
        self._window_waiters: list = []
        # -- receive side --------------------------------------------------
        #: Next in-order sequence number expected from the peer.
        self.rx_expected = 0
        self._pending_ack = 0
        self._ack_gen = 0
        self._ack_armed = False
        self.stats = {
            "retransmits": 0, "timeouts": 0, "dup_frames": 0,
            "ooo_dropped": 0, "acks_sent": 0, "max_retry_streak": 0,
        }

    # ------------------------------------------------------------------
    # Transmit side.
    # ------------------------------------------------------------------
    def admit(self):
        """Process: block until the send window has room."""
        while len(self.unacked) >= self.params.rel_window:
            self._check_error()
            waiter = self.sim.event(name=f"relwin:{self.vi.vi_id}")
            self._window_waiters.append(waiter)
            yield waiter
        self._check_error()

    def _check_error(self) -> None:
        from repro.via.vi import ViState

        if self.vi.state is ViState.ERROR:
            raise self.vi.error or ViaError(
                f"{self.vi!r}: reliable channel failed"
            )

    def transmit(self, packet: ViaPacket, frame_kind: str,
                 route: Optional[tuple],
                 descriptor: Optional["Descriptor"]):
        """Process: sequence, track, and enqueue one fragment."""
        packet.seq = self.next_seq
        self.next_seq += 1
        entry = _SendEntry(packet.seq, packet, frame_kind, route,
                           descriptor)
        self.unacked.append(entry)
        rec = self.sim.recorder
        if rec is not None:
            rank = self.agent.device.rank
            if packet.trace is not None:
                rec.event(packet.trace, _DESC_QUEUED,
                          f"vi{self.vi.vi_id} seq{packet.seq}",
                          f"n{rank}", self.sim.now)
            rec.metrics.observe(
                f"window:n{rank}-vi{self.vi.vi_id}", self.sim.now,
                float(len(self.unacked)),
            )
        yield from self._send_entry(entry, route)
        self._ensure_timer()

    def _send_entry(self, entry: _SendEntry, route: Optional[tuple]):
        """Process: put one wire copy of ``entry`` on the egress ring."""
        device = self.agent.device
        packet = entry.packet.clone()
        packet.route = route[1:] if route else None
        packet.ack = self.rx_expected - 1
        packet.seal()
        # Piggybacked ACK information: anything delivered so far is
        # now acknowledged, so the delayed-ACK timer can stand down.
        self._note_ack_carried()
        frame = Frame(
            payload_bytes=packet.payload_bytes,
            header_bytes=device.params.header_bytes,
            payload=packet,
            kind=entry.frame_kind,
        )
        if route:
            port = device.ports.get(route[0])
            if port is None:
                raise ViaError(
                    f"node {device.rank}: route starts on missing "
                    f"port {route[0]}"
                )
        else:
            peer_node, _peer_vi = self.vi.peer
            try:
                port = device.egress_port(peer_node, packet=packet)
            except ViaError:
                # No live route (the peer's node died and took every
                # path with it): drop this attempt.  Either a later
                # retry finds a route or the failure detector tears
                # the VI down and fails the pending sends.
                return
        yield from port.enqueue_tx(frame)

    # -- retransmission timer ----------------------------------------------
    def _ensure_timer(self) -> None:
        if not self._timer_running and self.unacked:
            self._timer_running = True
            self._deadline = self.sim.now + self.rto
            self.sim.spawn(
                self._timer_loop(),
                name=f"rel-rto[{self.agent.device.rank}:{self.vi.vi_id}]",
            )

    def _timer_loop(self):
        params = self.params
        agent = self.agent
        while self.unacked:
            if self.sim.now < self._deadline:
                yield self.sim.sleep_until(self._deadline)
                continue
            # The timer expired with fragments still unacknowledged.
            self.retries += 1
            if self.retries > self.stats["max_retry_streak"]:
                self.stats["max_retry_streak"] = self.retries
            self.stats["timeouts"] += 1
            agent.stats["timeouts"] += 1
            rec = self.sim.recorder
            if rec is not None and self.unacked:
                head = self.unacked[0].packet
                if head.trace is not None:
                    rec.event(head.trace, _TIMEOUT,
                              f"vi{self.vi.vi_id} rto{self.retries}",
                              f"n{agent.device.rank}", self.sim.now)
            if self.retries > params.rel_max_retries:
                self._fail()
                break
            self.rto = min(self.rto * params.rel_rto_backoff,
                           params.rel_rto_max)
            self._deadline = self.sim.now + self.rto
            # Go-back-N: resend the whole outstanding window.  Snapshot
            # first — ACKs may arrive while the resends queue.
            batch = list(self.unacked)
            self.stats["retransmits"] += len(batch)
            agent.stats["retransmits"] += len(batch)
            if rec is not None:
                for entry in batch:
                    if entry.packet.trace is not None:
                        rec.event(entry.packet.trace, _RETRANSMIT,
                                  f"vi{self.vi.vi_id} seq{entry.seq}",
                                  f"n{agent.device.rank}", self.sim.now)
            dead_fabric = agent.device.fabric_degraded()
            for entry in batch:
                # Under a degraded fabric the original source route may
                # cross a dead link; fall back to fault-aware routing.
                route = None if dead_fabric else entry.route
                yield from self._send_entry(entry, route)
        self._timer_running = False

    def _fail(self) -> None:
        """Retry budget exhausted: surface a VIA error on the VI."""
        from repro.via.vi import ViState

        vi = self.vi
        agent = self.agent
        vi.state = ViState.ERROR
        vi.error = ViaError(
            f"{vi!r}: reliable delivery failed after "
            f"{self.params.rel_max_retries} retransmission timeouts "
            f"(seq {self.unacked[0].seq if self.unacked else '?'} "
            f"unacknowledged)"
        )
        agent.stats["rel_failures"] += 1
        while self.unacked:
            entry = self.unacked.popleft()
            if entry.descriptor is not None:
                vi.fail_send(entry.descriptor)
        self._wake_window_waiters()
        # A whole retry budget burned without one ACK is strong
        # evidence the peer is gone — hand it to the failure detector
        # (a no-op unless the cluster carries node faults).
        agent.report_retry_exhausted(vi)

    def fail_peer_dead(self, error: ViaError) -> None:
        """Tear down the transmit side: the peer was declared dead.

        Unacknowledged sends fail through the normal completion path
        (``DescriptorStatus.ERROR``) and window waiters wake into
        ``_check_error`` so blocked senders raise instead of hanging.
        """
        from repro.via.vi import ViState

        vi = self.vi
        if vi.state is not ViState.ERROR:
            vi.state = ViState.ERROR
            vi.error = error
        while self.unacked:
            entry = self.unacked.popleft()
            if entry.descriptor is not None:
                vi.fail_send(entry.descriptor)
        self._wake_window_waiters()

    def _wake_window_waiters(self) -> None:
        waiters, self._window_waiters = self._window_waiters, []
        for waiter in waiters:
            waiter.succeed()

    # -- ACK processing ------------------------------------------------------
    def process_ack(self, ack: int) -> None:
        """Cumulative ACK: retire entries, complete descriptors."""
        progressed = False
        vi = self.vi
        rec = self.sim.recorder
        while self.unacked and self.unacked[0].seq <= ack:
            entry = self.unacked.popleft()
            progressed = True
            if rec is not None and entry.packet.trace is not None:
                rec.event(entry.packet.trace, _ACK,
                          f"vi{vi.vi_id} seq{entry.seq}",
                          f"n{self.agent.device.rank}", self.sim.now)
            if entry.descriptor is not None:
                vi.complete_send(entry.descriptor)
        if progressed:
            self.retries = 0
            self.rto = self.params.rel_rto
            self._deadline = self.sim.now + self.rto
            self._wake_window_waiters()

    # ------------------------------------------------------------------
    # Receive side.
    # ------------------------------------------------------------------
    def rx_gate(self, packet: ViaPacket) -> bool:
        """Sequence check for an arriving fragment.

        Returns True when the fragment is the next in order and should
        be delivered; duplicates and out-of-order fragments are
        dropped (go-back-N keeps no reorder buffer) and re-ACKed so
        the sender resynchronizes.
        """
        agent = self.agent
        if packet.seq == self.rx_expected:
            self.rx_expected += 1
            self._pending_ack += 1
            if self._pending_ack >= self.params.rel_ack_every:
                self._send_ack_now()
            elif not self._ack_armed:
                self._ack_armed = True
                gen = self._ack_gen
                Callback(self.sim,
                         lambda: self._ack_timer_fired(gen),
                         delay=self.params.rel_ack_delay)
            return True
        if packet.seq < self.rx_expected:
            self.stats["dup_frames"] += 1
            agent.stats["dup_frames"] += 1
        else:
            self.stats["ooo_dropped"] += 1
            agent.stats["ooo_dropped"] += 1
        # Re-ACK immediately: a gap or duplicate means the sender is
        # (or soon will be) retransmitting; the cumulative ACK tells it
        # exactly where to resume.
        self._send_ack_now()
        return False

    def _ack_timer_fired(self, gen: int) -> None:
        if gen != self._ack_gen:
            return
        self._ack_armed = False
        if self._pending_ack > 0:
            self._send_ack_now()

    def _note_ack_carried(self) -> None:
        """A piggybacked ACK went out; cancel the delayed-ACK timer."""
        if self._pending_ack or self._ack_armed:
            self._pending_ack = 0
            self._ack_gen += 1
            self._ack_armed = False

    def _send_ack_now(self) -> None:
        self._pending_ack = 0
        self._ack_gen += 1
        self._ack_armed = False
        self.stats["acks_sent"] += 1
        self.agent.stats["acks_sent"] += 1
        self.sim.spawn(
            self._ack_process(),
            name=f"rel-ack[{self.agent.device.rank}:{self.vi.vi_id}]",
        )

    def _ack_process(self):
        """Process: transmit one explicit cumulative-ACK packet."""
        device = self.agent.device
        vi = self.vi
        if vi.peer is None:  # pragma: no cover - defensive
            return
        peer_node, peer_vi = vi.peer
        packet = ViaPacket(
            kind=PacketKind.ACK,
            src_node=device.rank,
            dst_node=peer_node,
            dst_vi=peer_vi,
            src_vi=vi.vi_id,
            msg_id=device.next_msg_id(),
            payload_bytes=0,
            ack=self.rx_expected - 1,
        ).seal()
        frame = Frame(0, device.params.header_bytes, payload=packet,
                      kind="via-ack")
        try:
            port = device.egress_port(peer_node, packet=packet)
        except ViaError:
            # ACK to an unreachable peer: nothing to acknowledge to.
            return
        yield from port.enqueue_tx(frame)
