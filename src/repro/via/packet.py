"""VIA wire packets.

Every Ethernet frame the M-VIA device sends carries one
:class:`ViaPacket` — the header the modified M-VIA prepends: source and
destination *node* (mesh rank, so the packet switch can route),
destination VI number, message sequencing and fragmentation fields, and
a checksum.  The Jlab modification made the Intel hardware checksum
each packet (section 4); software checksumming is modeled as a CPU cost
in the NIC when offload is disabled.
"""

from __future__ import annotations

import enum
import itertools
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Optional

_msg_ids = itertools.count()


class PacketKind(enum.Enum):
    """Wire packet types of the modified M-VIA."""

    DATA = "data"              # two-sided send fragment
    RMA_WRITE = "rma_write"    # remote DMA write fragment
    CONNECT = "connect"        # connection request
    ACCEPT = "accept"          # connection accept
    DISCONNECT = "disconnect"  # teardown
    REDUCE = "reduce"          # interrupt-level partial reduction (s7)
    CBCAST = "cbcast"          # interrupt-level result broadcast (s7)
    ACK = "ack"                # reliable-delivery cumulative ACK
    KEEPALIVE = "keepalive"    # failure-detector neighbor heartbeat
    DEADNOTICE = "deadnotice"  # failure-detector death gossip
    NIC_REDUCE = "nic_reduce"  # NIC-resident partial reduction
    NIC_CBCAST = "nic_cbcast"  # NIC-resident result/broadcast wave
    NIC_ACK = "nic_ack"        # NIC-resident go-back-N cumulative ACK


#: Wire kinds owned by the NIC-resident collective engine
#: (:mod:`repro.hw.nic_collective`): the port-level hook consumes them
#: before the host rx path; a node without the engine rejects them.
NIC_COLLECTIVE_KINDS = (
    PacketKind.NIC_REDUCE, PacketKind.NIC_CBCAST, PacketKind.NIC_ACK,
)


@dataclass
class ViaPacket:
    """One frame's worth of VIA traffic.

    ``frag_index``/``num_frags`` implement fragmentation of descriptors
    larger than the per-frame payload; fragments of one message travel
    the same deterministic route, so reassembly may assume ordering
    (asserted by the kernel agent).
    """

    kind: PacketKind
    src_node: int
    dst_node: int
    dst_vi: int
    #: Sender's VI id (connection handshake and completion routing).
    src_vi: int = -1
    msg_id: int = 0
    frag_index: int = 0
    num_frags: int = 1
    payload_bytes: int = 0
    #: Byte offset of this fragment within the whole message.
    msg_offset: int = 0
    #: Total message length (so the receiver can check truncation
    #: before the last fragment arrives).
    msg_bytes: int = 0
    #: RMA destination address (RMA_WRITE only).
    remote_addr: int = 0
    #: Remote completion requested (RMA write with immediate).
    notify: bool = False
    immediate: Optional[int] = None
    #: Explicit source route: remaining egress ports, consumed one per
    #: hop by the kernel switch (the OPT scatter injects these; when
    #: None the switch falls back to Shortest-Direction-First).  Being
    #: hop-mutable, the route is excluded from the end-to-end checksum.
    route: Optional[tuple] = None
    #: Reliable-delivery sequence number of this frame on its VI
    #: channel (-1 = unsequenced, the unreliable/legacy wire format).
    seq: int = -1
    #: Piggybacked cumulative ACK: highest in-order sequence number the
    #: sender of *this* packet has received on the destination VI's
    #: channel (-1 = no ACK information).
    ack: int = -1
    payload: Any = field(default=None, repr=False)
    checksum: Optional[int] = None
    #: Flight-recorder trace id of the message this fragment belongs
    #: to (observability only; not a wire header field, so it is
    #: excluded from the checksum and never affects simulation state).
    trace: Any = field(default=None, repr=False, compare=False)

    @classmethod
    def next_msg_id(cls) -> int:
        """Process-global fallback allocator (hand-built packets only).

        Real senders draw from ``ViaDevice.next_msg_id`` — per-device
        streams are what lets a checkpoint replay reproduce the exact
        ids of the original run (see ``docs/CHECKPOINT.md``).
        """
        return next(_msg_ids)

    def compute_checksum(self) -> int:
        """Header checksum over the routing-relevant fields.

        Payloads are Python objects, not bytes, so the checksum covers
        the header exactly — which is what protects against the
        misrouting/corruption bugs checksums caught in the real system.
        """
        header = (
            f"{self.kind.value}|{self.src_node}|{self.dst_node}|"
            f"{self.dst_vi}|{self.src_vi}|{self.msg_id}|{self.frag_index}|"
            f"{self.num_frags}|{self.payload_bytes}|{self.msg_offset}|"
            f"{self.msg_bytes}|{self.remote_addr}|{self.notify}|"
            f"{self.immediate}|{self.seq}|{self.ack}"
        ).encode()
        return zlib.crc32(header)

    def clone(self) -> "ViaPacket":
        """Fresh shallow copy for (re)transmission.

        The kernel switch consumes ``route`` hop by hop on the wire
        copy, so the reliable sender keeps a pristine template and
        transmits a clone per attempt.
        """
        return replace(self)

    def seal(self) -> "ViaPacket":
        """Stamp the checksum (sender side)."""
        self.checksum = self.compute_checksum()
        return self

    def verify(self) -> bool:
        """Receiver-side checksum verification."""
        return self.checksum == self.compute_checksum()
