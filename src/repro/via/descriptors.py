"""VIP-style descriptors.

A descriptor describes one data-transfer request: control fields
(status, completion hook) plus a data segment (registered buffer,
length).  Send descriptors may carry 32-bit immediate data — the
MPI/QMP layer piggybacks flow-control tokens there, exactly as the
paper describes ("piggybacked application message").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ViaDescriptorError
from repro.via.memory import MemoryRegion

_desc_ids = itertools.count()


class DescriptorStatus(enum.Enum):
    """Completion status of a descriptor."""

    PENDING = "pending"
    DONE = "done"
    ERROR = "error"


@dataclass
class Descriptor:
    """Common descriptor fields."""

    region: MemoryRegion
    offset: int
    nbytes: int
    status: DescriptorStatus = field(default=DescriptorStatus.PENDING)
    #: Simulated completion timestamp (us), set by the device.
    completed_at: Optional[float] = None
    #: Arbitrary payload object riding with the bytes.
    payload: Any = None
    #: 32-bit immediate data (piggybacked tokens etc.).
    immediate: Optional[int] = None
    #: Optional completion hook: when set, invoked with the descriptor
    #: *instead of* queueing the completion (callback-driven consumers
    #: like the messaging core use this to avoid drain loops).
    on_complete: Optional[object] = None
    #: Explicit source route (egress port per hop, first hop included);
    #: None routes Shortest-Direction-First.
    route: Optional[tuple] = None
    #: Transport error that failed this descriptor (status ERROR).
    error: Optional[Exception] = None
    desc_id: int = field(default_factory=lambda: next(_desc_ids))
    #: Flight-recorder trace id (observability only).
    trace: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ViaDescriptorError(f"negative length {self.nbytes}")
        if self.offset < 0 or self.offset + self.nbytes > self.region.nbytes:
            raise ViaDescriptorError(
                f"segment [{self.offset}, +{self.nbytes}) outside region "
                f"of {self.region.nbytes} bytes"
            )

    @property
    def addr(self) -> int:
        return self.region.addr + self.offset

    def mark_done(self, now: float) -> None:
        if self.status is not DescriptorStatus.PENDING:
            raise ViaDescriptorError(f"descriptor {self.desc_id} completed twice")
        self.status = DescriptorStatus.DONE
        self.completed_at = now

    def mark_error(self, now: float) -> None:
        self.status = DescriptorStatus.ERROR
        self.completed_at = now


@dataclass
class SendDescriptor(Descriptor):
    """An ordinary (two-sided) send."""


@dataclass
class RecvDescriptor(Descriptor):
    """A posted receive buffer.

    ``received_bytes``/``received_payload`` are filled at completion;
    ``received_immediate`` carries the sender's immediate data.
    """

    received_bytes: int = 0
    received_payload: Any = None
    received_immediate: Optional[int] = None


@dataclass
class RmaWriteDescriptor(Descriptor):
    """A remote-DMA write: local segment -> remote registered address.

    ``remote_addr`` must fall inside an RMA-write-enabled region on the
    peer.  ``notify`` requests remote completion (consumes a receive
    descriptor there), which VIA calls "RDMA write with immediate".
    """

    remote_addr: int = 0
    notify: bool = False
