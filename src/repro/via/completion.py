"""VIA completion queues.

A CQ aggregates completions from any number of VI work queues; the
consumer blocks on :meth:`wait` (VipCQWait) or polls with
:meth:`poll` (VipCQDone).  Entries are ``(vi, queue_kind, descriptor)``
tuples, matching VIPL's (VI handle, queue selector) return.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.sim import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.descriptors import Descriptor
    from repro.via.vi import VI

Completion = Tuple["VI", str, "Descriptor"]

SEND_QUEUE = "send"
RECV_QUEUE = "recv"


class CompletionQueue:
    """FIFO of completed descriptors across attached VIs."""

    def __init__(self, sim: Simulator, name: str = "cq") -> None:
        self.sim = sim
        self.name = name
        self._store = Store(sim, name=name)

    def push(self, vi: "VI", queue: str, descriptor: "Descriptor") -> None:
        """Device-side: enqueue a completion."""
        self._store.items.append((vi, queue, descriptor))
        self._store._dispatch()

    def wait(self):
        """Process: block until a completion is available; returns it."""
        completion = yield self._store.get()
        return completion

    def poll(self) -> Optional[Completion]:
        """Non-blocking: a completion or None."""
        return self._store.try_get()

    def __len__(self) -> int:
        return len(self._store)
