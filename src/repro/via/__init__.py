"""Modified M-VIA model — the paper's low-level communication software.

The Virtual Interface Architecture gives each process a protected,
directly accessible interface to the NIC: descriptors are posted to
per-VI send/receive queues from user space, the NIC DMAs straight to
and from registered memory, and the kernel is only involved in
connection setup, memory registration, and — in the paper's *modified*
M-VIA — the interrupt-level packet switch that forwards frames for
non-nearest-neighbor destinations across the mesh.

Layer map (mirrors Figure 1 of the paper):

* :mod:`repro.via.memory` — memory registration (kernel agent, slow path);
* :mod:`repro.via.descriptors` — VIP-style descriptors;
* :mod:`repro.via.completion` — completion queues;
* :mod:`repro.via.packet` — wire packet framing with checksum;
* :mod:`repro.via.vi` — the Virtual Interface endpoint (send/recv
  queues, RMA);
* :mod:`repro.via.kernel_agent` — connection management, rx dispatch,
  the mesh packet switch;
* :mod:`repro.via.device` — per-node binding of VIA onto the GigE
  ports (the Jlab e1000 M-VIA driver's role);
* :mod:`repro.via.vipl` — thin VIPL-style functional facade.
"""

from repro.via.memory import MemoryRegion, ProtectionTag, RegisteredSpace
from repro.via.descriptors import (
    Descriptor,
    DescriptorStatus,
    RecvDescriptor,
    RmaWriteDescriptor,
    SendDescriptor,
)
from repro.via.completion import CompletionQueue
from repro.via.packet import PacketKind, ViaPacket
from repro.via.vi import VI, ViState, RELIABILITY_LEVELS
from repro.via.device import ViaDevice
from repro.via.kernel_agent import KernelAgent

__all__ = [
    "MemoryRegion",
    "ProtectionTag",
    "RegisteredSpace",
    "Descriptor",
    "SendDescriptor",
    "RecvDescriptor",
    "RmaWriteDescriptor",
    "DescriptorStatus",
    "CompletionQueue",
    "ViaPacket",
    "PacketKind",
    "VI",
    "ViState",
    "RELIABILITY_LEVELS",
    "ViaDevice",
    "KernelAgent",
]
