"""The per-node VIA device — the role of the Jlab e1000 M-VIA driver.

A :class:`ViaDevice` binds the VIA object model onto a node's GigE
ports: it fragments descriptors into checksummed wire packets, picks
the egress port with the Shortest-Direction-First rule (direct port for
nearest neighbors, first SDF hop otherwise), installs the receive
driver on every port, and owns the node's kernel agent and registered
memory space.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.errors import ConfigurationError, ViaError
from repro.hw.link import Frame
from repro.hw.nic import GigEPort
from repro.hw.node import Host
from repro.hw.params import ViaParams
from repro.sim import Simulator
from repro.topology.routing import alive_path, sdf_next_direction
from repro.topology.torus import Torus
from repro.via.completion import CompletionQueue
from repro.via.descriptors import RmaWriteDescriptor, SendDescriptor
from repro.via.kernel_agent import KernelAgent
from repro.via.memory import MemoryRegion, ProtectionTag, RegisteredSpace
from repro.via.packet import PacketKind, ViaPacket
from repro.obs.recorder import DESC_QUEUED as _DESC_QUEUED
from repro.via.vi import VI, Reliability


class ViaDevice:
    """VIA provider instance on one mesh node.

    Parameters
    ----------
    sim, host:
        Simulation and host resources for this node.
    rank, torus:
        The node's position in the mesh (drives routing).
    ports:
        Mapping from port index (:attr:`Direction.port
        <repro.topology.torus.Direction.port>`) to the GigE port wired
        in that direction.
    params:
        M-VIA cost constants.
    """

    def __init__(self, sim: Simulator, host: Host, rank: int, torus: Torus,
                 ports: Dict[int, GigEPort],
                 params: Optional[ViaParams] = None) -> None:
        if not ports:
            raise ConfigurationError(f"node {rank}: VIA device with no ports")
        self.sim = sim
        self.host = host
        self.rank = rank
        self.torus = torus
        self.ports = dict(ports)
        self.params = params or ViaParams()
        self.memory = RegisteredSpace()
        self.agent = KernelAgent(self)
        self._vi_ids = itertools.count(1)
        # Message ids are allocated per device, not process-globally:
        # a shard runtime rebuilt mid-process (checkpoint replay) must
        # reproduce the exact ids of its first life, or fragments
        # resent across a shard boundary would mismatch the peer's
        # in-progress reassembly.  Per-VI streams never interleave
        # messages, so cross-device collisions are harmless.  A plain
        # int (not itertools.count) so state digests can cover it.
        self._next_msg_id = 0
        self.vis: Dict[int, VI] = {}
        #: User payload bytes per Ethernet frame after the VIA header.
        mtu = next(iter(self.ports.values())).params.mtu
        self.frame_payload = mtu - self.params.header_bytes
        if self.frame_payload <= 0:
            raise ConfigurationError("VIA header larger than MTU")
        #: Interrupt-level collective engine (paper section 7 future
        #: work); created by :meth:`enable_kernel_collectives`.
        self.kernel_collective = None
        #: NIC-resident collective engine (Yu et al. offload); created
        #: by :meth:`enable_nic_collectives`.
        self.nic_collective = None
        #: Reliable delivery: explicit knob, else automatic — engage
        #: exactly when some attached link can *lose* frames (the
        #: legacy ``corrupt_every`` detect-and-drop knob deliberately
        #: does not trigger it, preserving its original semantics).
        self.reliable = (
            self.params.reliable
            if self.params.reliable is not None
            else any(port.link is not None and port.link.lossy
                     for port in self.ports.values())
        )
        #: Cluster-wide link-health view (set by the builder when the
        #: fault model can kill links); None = fabric always healthy.
        self._fabric_health = None
        for port in self.ports.values():
            driver = (
                lambda frame, paid_until=None, _port=port:
                self.agent.handle_frame(frame, _port, paid_until)
            )
            # Advertises the paid_until protocol to the interrupt
            # dispatcher (fold of the per-frame cost, fast path only).
            driver.folds_irq_cost = True
            port.set_driver(driver)

    def enable_kernel_collectives(self, root: int = 0):
        """Inject the reduction tree into the kernel (section 7).

        Idempotent for the same ``root``.  Re-enabling with a different
        root (which used to silently clobber the engine and orphan its
        in-flight state) and mixing offload tiers on one device (both
        engines would claim the same collective traffic) raise instead.
        """
        from repro.via.kernel_collective import KernelCollective

        if self.nic_collective is not None:
            raise ViaError(
                f"node {self.rank}: kernel collectives requested but "
                f"NIC collectives are already enabled (offload tiers "
                f"are mutually exclusive per device)"
            )
        existing = self.kernel_collective
        if existing is not None:
            if existing.root != root:
                raise ViaError(
                    f"node {self.rank}: kernel collectives already "
                    f"enabled with root {existing.root}; refusing to "
                    f"silently re-root to {root}"
                )
            return existing
        self.kernel_collective = KernelCollective(self, root=root)
        return self.kernel_collective

    def enable_nic_collectives(self):
        """Load the NIC-resident collective engine onto every port.

        Installs the :class:`~repro.hw.nic_collective.NicCollective`
        firmware hook on each attached GigE port so collective frames
        are consumed at wire level.  Idempotent; mutually exclusive
        with :meth:`enable_kernel_collectives`.
        """
        from repro.hw.nic_collective import NicCollective

        if self.kernel_collective is not None:
            raise ViaError(
                f"node {self.rank}: NIC collectives requested but "
                f"kernel collectives are already enabled (offload "
                f"tiers are mutually exclusive per device)"
            )
        if self.nic_collective is not None:
            return self.nic_collective
        engine = NicCollective(self)
        self.nic_collective = engine
        for port in self.ports.values():
            port.collective_hook = engine.handle_rx
        return engine

    # -- user-facing object factory ---------------------------------------------
    def create_protection_tag(self) -> ProtectionTag:
        return ProtectionTag.create()

    def next_msg_id(self) -> int:
        """Allocate a message id from this device's own stream."""
        value = self._next_msg_id
        self._next_msg_id = value + 1
        return value

    def create_vi(self, tag: ProtectionTag,
                  send_cq: Optional[CompletionQueue] = None,
                  recv_cq: Optional[CompletionQueue] = None,
                  reliability: Reliability = Reliability.RELIABLE_DELIVERY,
                  ) -> VI:
        vi = VI(self, next(self._vi_ids), tag, send_cq=send_cq,
                recv_cq=recv_cq, reliability=reliability)
        self.vis[vi.vi_id] = vi
        return vi

    def create_cq(self, name: str = "") -> CompletionQueue:
        return CompletionQueue(self.sim, name=name or f"cq[{self.rank}]")

    def register_memory(self, nbytes: int, tag: ProtectionTag,
                        rma_write: bool = False):
        """Process: pin ``nbytes`` (kernel slow path, pays real time)."""
        yield from self.host.cpu_work(self.memory.register_cost(nbytes))
        return self.memory.register(nbytes, tag, rma_write=rma_write)

    def register_memory_now(self, nbytes: int, tag: ProtectionTag,
                            rma_write: bool = False) -> MemoryRegion:
        """Zero-time registration, for setup phases the paper's
        benchmarks exclude from timing."""
        return self.memory.register(nbytes, tag, rma_write=rma_write)

    # -- routing ------------------------------------------------------------
    def set_fabric_health(self, health) -> None:
        """Install the cluster's link-health view (``degraded(now)`` /
        ``alive(rank, direction, now)``) for dead-link rerouting."""
        self._fabric_health = health

    def fabric_degraded(self) -> bool:
        """Any permanently dead link in the fabric right now?"""
        health = self._fabric_health
        return health is not None and health.degraded(self.sim.now)

    def egress_port(self, dst_node: int,
                    packet: Optional[ViaPacket] = None) -> GigEPort:
        """Port on the first SDF hop toward ``dst_node``.

        While the fabric is degraded (a link died permanently), routing
        switches to a deterministic breadth-first search over the live
        links; the possibly non-minimal detour is stamped onto
        ``packet.route`` as an explicit source route so downstream
        switches follow it instead of re-deriving (possibly looping)
        per-hop choices.  The route field is excluded from the packet
        checksum precisely so it can be rewritten after sealing.
        """
        health = self._fabric_health
        if health is not None and health.degraded(self.sim.now):
            now = self.sim.now
            path = alive_path(
                self.torus, self.rank, dst_node,
                lambda rank, d: health.alive(rank, d, now),
            )
            if not path:
                raise ViaError(
                    f"node {self.rank}: no live route to {dst_node}"
                )
            direction = path[0]
            if packet is not None:
                packet.route = (
                    tuple(d.port for d in path[1:]) if len(path) > 1
                    else None
                )
        else:
            direction = sdf_next_direction(self.torus, self.rank, dst_node)
            if direction is None:
                raise ViaError(f"node {self.rank}: no route to {dst_node}")
        port = self.ports.get(direction.port)
        if port is None:
            raise ConfigurationError(
                f"node {self.rank}: no adapter on port {direction.port} "
                f"({direction})"
            )
        return port

    # -- transmit paths ------------------------------------------------------
    def _fragments(self, nbytes: int):
        """Yield (offset, frag_bytes) pairs covering ``nbytes``."""
        if nbytes == 0:
            yield (0, 0)
            return
        offset = 0
        while offset < nbytes:
            yield (offset, min(self.frame_payload, nbytes - offset))
            offset += self.frame_payload

    def _route_egress(self, dst_node: int, route) -> "GigEPort":
        """Egress port: first hop of an explicit route, else SDF."""
        if route:
            port = self.ports.get(route[0])
            if port is None:
                raise ConfigurationError(
                    f"node {self.rank}: route starts on missing port "
                    f"{route[0]}"
                )
            return port
        return self.egress_port(dst_node)

    def _use_reliable(self, vi: VI) -> bool:
        from repro.via.vi import Reliability

        return self.reliable and vi.reliability is not Reliability.UNRELIABLE

    def transmit_send(self, vi: VI, descriptor: SendDescriptor):
        """Process: fragment and enqueue a two-sided send."""
        peer_node, peer_vi = vi.peer
        route = tuple(descriptor.route) if descriptor.route else None
        msg_id = self.next_msg_id()
        frags = list(self._fragments(descriptor.nbytes))
        packets = []
        for index, (offset, frag_bytes) in enumerate(frags):
            last = index == len(frags) - 1
            packets.append(ViaPacket(
                kind=PacketKind.DATA,
                src_node=self.rank,
                dst_node=peer_node,
                dst_vi=peer_vi,
                src_vi=vi.vi_id,
                msg_id=msg_id,
                frag_index=index,
                num_frags=len(frags),
                payload_bytes=frag_bytes,
                msg_offset=offset,
                msg_bytes=descriptor.nbytes,
                immediate=descriptor.immediate if last else None,
                route=route[1:] if route else None,
                payload=descriptor.payload if last else None,
            ))
        rec = self.sim.recorder
        if rec is not None and descriptor.trace is not None:
            for packet in packets:
                packet.trace = descriptor.trace
        if self._use_reliable(vi):
            yield from self.agent.reliable_transmit(
                vi, packets, "via-data", route, descriptor,
            )
            return
        port = self._route_egress(peer_node, route)
        frames = []
        for index, packet in enumerate(packets):
            last = index == len(packets) - 1
            packet.seal()
            frames.append(Frame(
                payload_bytes=packet.payload_bytes,
                header_bytes=self.params.header_bytes,
                payload=packet,
                kind="via-data",
                on_fetched=(
                    (lambda v=vi, d=descriptor: v.complete_send(d))
                    if last else None
                ),
            ))
        if rec is not None and descriptor.trace is not None:
            rec.event(descriptor.trace, _DESC_QUEUED, port.name,
                      f"n{self.rank}", self.sim.now)
            rec.metrics.observe(
                "ring:" + port.name, self.sim.now,
                float(len(port.tx_queue) + port._tx_extra),
            )
        yield from port.send_frames(frames)

    def transmit_rma(self, vi: VI, descriptor: RmaWriteDescriptor):
        """Process: fragment and enqueue a remote-DMA write."""
        peer_node, peer_vi = vi.peer
        route = tuple(descriptor.route) if descriptor.route else None
        msg_id = self.next_msg_id()
        frags = list(self._fragments(descriptor.nbytes))
        packets = []
        for index, (offset, frag_bytes) in enumerate(frags):
            last = index == len(frags) - 1
            packets.append(ViaPacket(
                kind=PacketKind.RMA_WRITE,
                src_node=self.rank,
                dst_node=peer_node,
                dst_vi=peer_vi,
                src_vi=vi.vi_id,
                msg_id=msg_id,
                frag_index=index,
                num_frags=len(frags),
                payload_bytes=frag_bytes,
                msg_offset=offset,
                msg_bytes=descriptor.nbytes,
                remote_addr=descriptor.remote_addr + offset,
                notify=descriptor.notify and last,
                immediate=descriptor.immediate if last else None,
                route=route[1:] if route else None,
                payload=descriptor.payload if last else None,
            ))
        rec = self.sim.recorder
        if rec is not None and descriptor.trace is not None:
            for packet in packets:
                packet.trace = descriptor.trace
        if self._use_reliable(vi):
            yield from self.agent.reliable_transmit(
                vi, packets, "via-rma", route, descriptor,
            )
            return
        port = self._route_egress(peer_node, route)
        frames = []
        for index, packet in enumerate(packets):
            last = index == len(packets) - 1
            packet.seal()
            frames.append(Frame(
                payload_bytes=packet.payload_bytes,
                header_bytes=self.params.header_bytes,
                payload=packet,
                kind="via-rma",
                on_fetched=(
                    (lambda v=vi, d=descriptor: v.complete_send(d))
                    if last else None
                ),
            ))
        if rec is not None and descriptor.trace is not None:
            rec.event(descriptor.trace, _DESC_QUEUED, port.name,
                      f"n{self.rank}", self.sim.now)
            rec.metrics.observe(
                "ring:" + port.name, self.sim.now,
                float(len(port.tx_queue) + port._tx_extra),
            )
        yield from port.send_frames(frames)

    def transmit_control(self, dst_node: int, kind: PacketKind,
                         dst_vi: int, src_vi: int, payload=None):
        """Process: one-frame control packet (connect/accept/teardown)."""
        packet = ViaPacket(
            kind=kind,
            src_node=self.rank,
            dst_node=dst_node,
            dst_vi=dst_vi,
            src_vi=src_vi,
            msg_id=self.next_msg_id(),
            payload_bytes=0,
            payload=payload,
        ).seal()
        port = self.egress_port(dst_node, packet=packet)
        frame = Frame(0, self.params.header_bytes, payload=packet,
                      kind=f"via-{kind.value}")
        yield from port.enqueue_tx(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ViaDevice(rank={self.rank}, ports={sorted(self.ports)})"
