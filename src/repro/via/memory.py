"""VIA memory registration.

VIA requires every buffer the NIC touches to be registered (pinned)
ahead of time through the kernel agent; registration returns a memory
handle bound to a protection tag.  RMA additionally requires the region
to be enabled for remote writes.  We model a per-node virtual address
space with bump allocation — addresses are plain integers, and "data"
is never materialized at this layer (byte counts drive the timing
model; actual payloads ride alongside as Python objects).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ViaProtectionError

_tag_counter = itertools.count(1)


@dataclass(frozen=True)
class ProtectionTag:
    """VIA protection tag: descriptors, regions and VIs must agree."""

    value: int

    @classmethod
    def create(cls) -> "ProtectionTag":
        return cls(next(_tag_counter))


@dataclass
class MemoryRegion:
    """A registered (pinned) memory region.

    Attributes
    ----------
    addr, nbytes:
        Placement in the node's simulated address space.
    tag:
        Protection tag the region was registered under.
    rma_write_enabled:
        Whether remote DMA writes may target this region.
    """

    addr: int
    nbytes: int
    tag: ProtectionTag
    rma_write_enabled: bool = False
    #: Python-object storage for payloads RMA-written into the region.
    data: Optional[object] = field(default=None, repr=False)

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def contains(self, addr: int, nbytes: int) -> bool:
        return self.addr <= addr and addr + nbytes <= self.end


class RegisteredSpace:
    """Per-node registry of pinned regions (the kernel agent's table).

    Lookup is by bisection over the (non-overlapping, sorted) region
    start addresses — the model's stand-in for the kernel's TPT — so
    per-fragment RMA protection checks stay O(log n).
    """

    #: Registration cost: pinning pages through the kernel (us per call
    #: plus per-4KiB-page cost). Paid on the slow path only.
    REGISTER_BASE_COST = 15.0
    REGISTER_PER_PAGE = 0.4

    def __init__(self) -> None:
        self._regions: Dict[int, MemoryRegion] = {}
        self._addrs: list = []  # sorted region start addresses
        self._next_addr = 0x1000

    def register(self, nbytes: int, tag: ProtectionTag,
                 rma_write: bool = False) -> MemoryRegion:
        """Pin ``nbytes`` and return the region (bump allocation)."""
        if nbytes <= 0:
            raise ViaProtectionError(f"cannot register {nbytes} bytes")
        region = MemoryRegion(self._next_addr, nbytes, tag,
                              rma_write_enabled=rma_write)
        self._regions[region.addr] = region
        # Bump allocation is monotone, so a plain append keeps the
        # address list sorted.
        self._addrs.append(region.addr)
        # Keep regions page-aligned and non-adjacent to catch any code
        # that computes addresses rather than using region handles.
        self._next_addr += ((nbytes + 4095) // 4096 + 1) * 4096
        return region

    def deregister(self, region: MemoryRegion) -> None:
        if self._regions.pop(region.addr, None) is None:
            raise ViaProtectionError(
                f"region at {region.addr:#x} not registered"
            )
        index = bisect.bisect_left(self._addrs, region.addr)
        del self._addrs[index]

    def register_cost(self, nbytes: int) -> float:
        """Kernel time (us) for registering ``nbytes``."""
        pages = (nbytes + 4095) // 4096
        return self.REGISTER_BASE_COST + self.REGISTER_PER_PAGE * pages

    def find(self, addr: int, nbytes: int, tag: ProtectionTag,
             for_rma_write: bool = False) -> MemoryRegion:
        """The region covering ``[addr, addr+nbytes)`` or raise.

        Enforces protection-tag match and, for RMA, write enablement —
        the checks the VIA hardware model performs on every access.
        """
        index = bisect.bisect_right(self._addrs, addr) - 1
        region = (
            self._regions.get(self._addrs[index]) if index >= 0 else None
        )
        if region is None or not region.contains(addr, nbytes):
            raise ViaProtectionError(
                f"no registered region covers [{addr:#x}, +{nbytes})"
            )
        if region.tag != tag:
            raise ViaProtectionError(
                f"protection tag mismatch at {addr:#x}"
            )
        if for_rma_write and not region.rma_write_enabled:
            raise ViaProtectionError(
                f"region at {region.addr:#x} not RMA-write enabled"
            )
        return region

    def __len__(self) -> int:
        return len(self._regions)
