"""The Virtual Interface endpoint.

A VI is a pair of work queues (send, receive) plus connection state.
Descriptors are posted from user space; the device DMAs straight from
or into the registered buffers.  Completions land either on the VI's
own queues or on an attached :class:`~repro.via.completion.CompletionQueue`.

Cost model (user-level library, runs at ``PRIO_USER``):

* ``post_send`` / ``post_rma_write`` pay the send-side host overhead
  (descriptor build + doorbell, ~2.4 us);
* ``recv_wait``/``send_wait`` pay the receive-side completion overhead
  when they *consume* a completion (~3.4 us for receives — together
  with the send side this is the paper's ~6 us host overhead);
* ``post_recv`` is cheap (pre-posting buffers is how VIA amortizes it)
  and modeled as free.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    ViaDescriptorError,
    ViaNotConnectedError,
)
from repro.hw.node import PRIO_USER
from repro.obs.recorder import API_CALL as _API_CALL, \
    COMPLETION as _COMPLETION
from repro.sim import Store
from repro.via.completion import CompletionQueue, RECV_QUEUE, SEND_QUEUE
from repro.via.descriptors import (
    Descriptor,
    RecvDescriptor,
    RmaWriteDescriptor,
    SendDescriptor,
)
from repro.via.memory import ProtectionTag

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.device import ViaDevice


class ViState(enum.Enum):
    IDLE = "idle"
    CONNECT_PENDING = "connect-pending"
    CONNECTED = "connected"
    ERROR = "error"


class Reliability(enum.Enum):
    """VIA reliability levels (section 2)."""

    UNRELIABLE = "unreliable-delivery"
    RELIABLE_DELIVERY = "reliable-delivery"
    RELIABLE_RECEPTION = "reliable-reception"


RELIABILITY_LEVELS = tuple(Reliability)


class VI:
    """One communication endpoint.  Create via ``ViaDevice.create_vi``."""

    def __init__(self, device: "ViaDevice", vi_id: int, tag: ProtectionTag,
                 send_cq: Optional[CompletionQueue] = None,
                 recv_cq: Optional[CompletionQueue] = None,
                 reliability: Reliability = Reliability.RELIABLE_DELIVERY,
                 ) -> None:
        self.device = device
        self.vi_id = vi_id
        self.tag = tag
        self.reliability = reliability
        self.state = ViState.IDLE
        #: The ViaError that moved the VI to ERROR (reliable-delivery
        #: retry budget exhausted, failed handshake), if any.
        self.error: Optional[Exception] = None
        #: (peer node rank, peer vi id) once connected.
        self.peer: Optional[Tuple[int, int]] = None
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        sim = device.sim
        self._send_done = Store(sim, name=f"vi{vi_id}:sdone")
        self._recv_done = Store(sim, name=f"vi{vi_id}:rdone")
        #: Posted receive buffers, consumed strictly in FIFO order
        #: (VIA has no matching; tags live in the layers above).
        self.recv_queue: deque = deque()
        #: In-flight reassembly: (msg_id, next_frag, descriptor).
        self._reassembly: Optional[list] = None
        self.stats = {"sends": 0, "recvs": 0, "rma_writes": 0,
                      "send_bytes": 0, "recv_bytes": 0}

    # -- connection -----------------------------------------------------------
    def require_connected(self) -> None:
        if self.state is not ViState.CONNECTED:
            raise ViaNotConnectedError(
                f"VI {self.vi_id} on node {self.device.rank} is "
                f"{self.state.value}"
            )

    # -- posting ------------------------------------------------------------
    def post_recv(self, descriptor: RecvDescriptor) -> None:
        """Pre-post a receive buffer (cheap, non-blocking)."""
        if not isinstance(descriptor, RecvDescriptor):
            raise ViaDescriptorError(
                f"post_recv needs a RecvDescriptor, got {type(descriptor)}"
            )
        if descriptor.region.tag != self.tag:
            raise ViaDescriptorError("descriptor/VI protection tag mismatch")
        if len(self.recv_queue) >= self.device.params.recv_queue_depth:
            raise ViaDescriptorError(
                f"VI {self.vi_id} receive queue full "
                f"({self.device.params.recv_queue_depth})"
            )
        self.recv_queue.append(descriptor)

    def post_send(self, descriptor: SendDescriptor):
        """Process: post a send; returns once handed to the device.

        Completion (buffer reusable) is reported separately through
        :meth:`send_wait` / the send CQ.
        """
        self.require_connected()
        if not isinstance(descriptor, SendDescriptor):
            raise ViaDescriptorError(
                f"post_send needs a SendDescriptor, got {type(descriptor)}"
            )
        if descriptor.region.tag != self.tag:
            raise ViaDescriptorError("descriptor/VI protection tag mismatch")
        self.stats["sends"] += 1
        self.stats["send_bytes"] += descriptor.nbytes
        rec = self.device.sim.recorder
        if rec is not None:
            if descriptor.trace is None:
                # Raw VIA entry point: this is where the message is born.
                descriptor.trace = rec.start_trace(
                    f"via-send vi{self.vi_id} {descriptor.nbytes}B",
                    f"n{self.device.rank}", self.device.sim.now,
                )
            t0 = self.device.sim.now
        yield from self.device.host.cpu_work(
            self.device.params.send_overhead, PRIO_USER
        )
        if rec is not None:
            rec.span(descriptor.trace, _API_CALL, "post_send",
                     f"n{self.device.rank}", t0, self.device.sim.now)
        yield from self.device.transmit_send(self, descriptor)

    def post_rma_write(self, descriptor: RmaWriteDescriptor):
        """Process: post a remote-DMA write (zero-copy on both ends)."""
        self.require_connected()
        if not isinstance(descriptor, RmaWriteDescriptor):
            raise ViaDescriptorError(
                f"post_rma_write needs RmaWriteDescriptor, "
                f"got {type(descriptor)}"
            )
        self.stats["rma_writes"] += 1
        self.stats["send_bytes"] += descriptor.nbytes
        rec = self.device.sim.recorder
        if rec is not None:
            if descriptor.trace is None:
                descriptor.trace = rec.start_trace(
                    f"via-rma vi{self.vi_id} {descriptor.nbytes}B",
                    f"n{self.device.rank}", self.device.sim.now,
                )
            t0 = self.device.sim.now
        yield from self.device.host.cpu_work(
            self.device.params.send_overhead, PRIO_USER
        )
        if rec is not None:
            rec.span(descriptor.trace, _API_CALL, "post_rma_write",
                     f"n{self.device.rank}", t0, self.device.sim.now)
        yield from self.device.transmit_rma(self, descriptor)

    # -- completion consumption ---------------------------------------------
    def send_wait(self):
        """Process: next send completion (descriptor)."""
        if self.send_cq is not None:
            raise ViaDescriptorError(
                f"VI {self.vi_id} send completions go to its CQ"
            )
        descriptor = yield self._send_done.get()
        return descriptor

    def recv_wait(self):
        """Process: next receive completion; pays the recv overhead."""
        if self.recv_cq is not None:
            raise ViaDescriptorError(
                f"VI {self.vi_id} recv completions go to its CQ"
            )
        descriptor = yield self._recv_done.get()
        rec = self.device.sim.recorder
        if rec is not None:
            t0 = self.device.sim.now
        yield from self.device.host.cpu_work(
            self.device.params.recv_overhead, PRIO_USER
        )
        if rec is not None and descriptor.trace is not None:
            rec.span(descriptor.trace, _API_CALL, "recv_wait",
                     f"n{self.device.rank}", t0, self.device.sim.now)
        return descriptor

    def recv_poll(self) -> Optional[RecvDescriptor]:
        """Non-blocking receive-completion check (no overhead charged
        until the caller treats it as consumed via
        ``consume_recv_cost``)."""
        return self._recv_done.try_get()

    def consume_recv_cost(self):
        """Process: pay the user-level completion-processing overhead
        for a completion obtained through :meth:`recv_poll` or a CQ."""
        yield from self.device.host.cpu_work(
            self.device.params.recv_overhead, PRIO_USER
        )

    # -- device-side completion delivery -------------------------------------
    def _record_completion(self, descriptor, name: str) -> None:
        rec = self.device.sim.recorder
        if rec is not None and descriptor.trace is not None:
            rec.event(descriptor.trace, _COMPLETION, name,
                      f"n{self.device.rank}", self.device.sim.now)

    def complete_send(self, descriptor: Descriptor) -> None:
        self.device.sim.progress += 1
        self._record_completion(descriptor, "send-complete")
        descriptor.mark_done(self.device.sim.now)
        if descriptor.on_complete is not None:
            descriptor.on_complete(descriptor)
        elif self.send_cq is not None:
            self.send_cq.push(self, SEND_QUEUE, descriptor)
        else:
            self._send_done.items.append(descriptor)
            self._send_done._dispatch()

    def fail_send(self, descriptor: Descriptor) -> None:
        """Deliver a failed send completion (reliable-delivery retry
        budget exhausted).  The descriptor is marked errored and still
        pushed to the normal completion surface, mirroring how VIA
        reports transport errors through the completion path."""
        self.device.sim.progress += 1
        self._record_completion(descriptor, "send-error")
        descriptor.error = self.error
        descriptor.mark_error(self.device.sim.now)
        if descriptor.on_complete is not None:
            descriptor.on_complete(descriptor)
        elif self.send_cq is not None:
            self.send_cq.push(self, SEND_QUEUE, descriptor)
        else:
            self._send_done.items.append(descriptor)
            self._send_done._dispatch()

    def fail_recv(self, descriptor: RecvDescriptor) -> None:
        """Deliver a failed receive completion (peer declared dead).

        Draining posted receive buffers with ``DescriptorStatus.ERROR``
        through the normal completion surface is what lets a blocked
        ``recv_wait()``/CQ ``wait()`` return instead of hanging when
        the peer node dies.
        """
        self.device.sim.progress += 1
        self._record_completion(descriptor, "recv-error")
        descriptor.error = self.error
        descriptor.mark_error(self.device.sim.now)
        if descriptor.on_complete is not None:
            descriptor.on_complete(descriptor)
        elif self.recv_cq is not None:
            self.recv_cq.push(self, RECV_QUEUE, descriptor)
        else:
            self._recv_done.items.append(descriptor)
            self._recv_done._dispatch()

    def complete_recv(self, descriptor: RecvDescriptor) -> None:
        self.device.sim.progress += 1
        self._record_completion(descriptor, "recv-complete")
        self.stats["recvs"] += 1
        self.stats["recv_bytes"] += descriptor.received_bytes
        descriptor.mark_done(self.device.sim.now)
        if descriptor.on_complete is not None:
            descriptor.on_complete(descriptor)
        elif self.recv_cq is not None:
            self.recv_cq.push(self, RECV_QUEUE, descriptor)
        else:
            self._recv_done.items.append(descriptor)
            self._recv_done._dispatch()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"VI(id={self.vi_id}, node={self.device.rank}, "
            f"state={self.state.value})"
        )
