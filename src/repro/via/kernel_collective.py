"""Interrupt-level global reduction — the paper's section 7 plan.

"we are working on a scheme of interrupt-level based collective
communication, in which intermediate collective communications are
carried out in the kernel space.  This method eliminates the overhead
of copying data to user space for the intermediate steps, therefore
reduces the overall latency."

Implementation: the dimension-order reduction/broadcast tree is
injected into the kernel agent (like the mesh geometry was).  Each
node's kernel combines its children's partial values with the local
contribution at interrupt level and forwards one REDUCE packet to its
parent; the root turns the result around as a CBCAST wave that
completes every node's waiting user call — so intermediate nodes never
pay the user-space crossing (the ~6 us host overhead plus wakeups),
only the ~12.5 us interrupt-level per-hop path.

Values are Python numbers/arrays combined with a caller-supplied
commutative operator; ``nbytes`` drives the timing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.collectives.tree import (
    dimension_order_children,
    dimension_order_parent,
)
from repro.errors import ViaError
from repro.hw.node import PRIO_USER
from repro.obs.recorder import (
    API_CALL as _API_CALL,
    COMPLETION as _COMPLETION,
)
from repro.via.packet import PacketKind, ViaPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.device import ViaDevice

#: Kernel cost of one combine step (us): arithmetic on a small value
#: plus bookkeeping, at interrupt level.
COMBINE_COST = 0.5
#: Kernel cost of completing the local waiter from the CBCAST handler.
COMPLETE_COST = 0.8


class _OpState:
    """Per-reduction in-flight state on one node."""

    __slots__ = ("partial", "pending", "have_local", "children_seen",
                 "waiter", "op", "nbytes", "trace")

    def __init__(self) -> None:
        self.partial: Any = None
        #: Child values that arrived before the local contribution
        #: supplied the operator.
        self.pending: list = []
        self.have_local = False
        self.children_seen = 0
        self.waiter = None
        self.op: Optional[Callable] = None
        self.nbytes = 0
        self.trace = None


class KernelCollective:
    """Kernel-space reduction engine bound to one node's VIA device."""

    def __init__(self, device: "ViaDevice", root: int = 0) -> None:
        self.device = device
        self.sim = device.sim
        self.root = root
        torus = device.torus
        rank = device.rank
        self.parent = dimension_order_parent(torus, root, rank)
        self.children = dimension_order_children(torus, root, rank)
        self._sequence = 0
        self._ops: Dict[int, _OpState] = {}
        self.stats = {"reductions": 0, "combines": 0, "aborted": 0}

    def _check_alive(self) -> None:
        """Schedule-time alive-set check: refuse to start a reduction
        that already has a dead participant (every node contributes)."""
        health = self.device._fabric_health
        if health is None or not getattr(health, "has_node_faults",
                                         False):
            return
        dead = [rank for rank in range(self.device.torus.size)
                if not health.node_alive(rank)]
        if dead:
            raise ViaError(
                f"node {self.device.rank}: kernel collective with dead "
                f"participant(s) {dead}"
            )

    def _fail_pending(self, error: ViaError) -> None:
        for sequence, state in list(self._ops.items()):
            waiter = state.waiter
            if waiter is not None and not waiter.triggered:
                self.stats["aborted"] += 1
                del self._ops[sequence]
                waiter.fail(error)

    def on_peer_dead(self, dead_rank: int, reason: str = "") -> None:
        """Abort in-flight reductions: a participant died mid-wave."""
        self._fail_pending(ViaError(
            f"node {self.device.rank}: kernel collective aborted, "
            f"node {dead_rank} {reason or 'declared dead'}"
        ))

    def on_local_crash(self, reason: str = "node crashed") -> None:
        self._fail_pending(ViaError(
            f"node {self.device.rank}: kernel collective aborted, "
            f"local {reason}"
        ))

    # -- user API ---------------------------------------------------------
    def global_sum(self, value: Any, op: Callable[[Any, Any], Any],
                   nbytes: int = 8):
        """Process: contribute to the next reduction; returns the
        globally combined value.

        Collective: every node must call this the same number of times
        with the same operator.  The user pays one kernel crossing to
        deposit the contribution and is woken by the kernel broadcast.
        """
        self._sequence += 1
        sequence = self._sequence
        state = self._ops.setdefault(sequence, _OpState())
        state.op = op
        state.nbytes = nbytes
        state.waiter = self.sim.event(name=f"kcoll[{self.device.rank}]")
        self.stats["reductions"] += 1
        self._check_alive()
        rec = self.sim.recorder
        if rec is not None:
            state.trace = rec.start_trace(
                f"kcoll-{sequence}", f"n{self.device.rank}",
                self.sim.now)
            t0 = self.sim.now
        # Depositing the contribution crosses into the kernel.
        yield from self.device.host.cpu_work(
            self.device.host.params.syscall_cost, PRIO_USER
        )
        if rec is not None:
            rec.span(state.trace, _API_CALL, "kcoll-deposit",
                     f"n{self.device.rank}", t0, self.sim.now)
        self._contribute_local(sequence, value)
        result = yield state.waiter
        del self._ops[sequence]
        return result

    # -- kernel paths --------------------------------------------------------
    def _contribute_local(self, sequence: int, value: Any) -> None:
        state = self._ops.setdefault(sequence, _OpState())
        state.partial = value
        for early in state.pending:
            state.partial = state.op(state.partial, early)
        state.pending.clear()
        state.have_local = True
        self._maybe_forward(sequence)

    def handle_reduce(self, packet: ViaPacket):
        """Kernel handler: a child's partial value arrived (IRQ ctx)."""
        sequence, value = packet.payload
        yield self.sim.timeout(COMBINE_COST)
        self.stats["combines"] += 1
        state = self._ops.setdefault(sequence, _OpState())
        if state.op is None:
            # A child beat our local contribution; stash until
            # global_sum supplies the operator.
            state.pending.append(value)
        else:
            state.partial = state.op(state.partial, value)
        state.children_seen += 1
        self._maybe_forward(sequence)

    def _maybe_forward(self, sequence: int) -> None:
        state = self._ops.get(sequence)
        if state is None or not state.have_local:
            return
        if state.children_seen < len(self.children):
            return
        if self.parent is None:
            # Root: subtree complete == global result; broadcast it.
            self._broadcast(sequence, state.partial)
        else:
            self.sim.spawn(
                self._send(PacketKind.REDUCE, self.parent, sequence,
                           state.partial, state.nbytes, state.trace),
                name=f"kreduce[{self.device.rank}]",
            )

    def handle_cbcast(self, packet: ViaPacket):
        """Kernel handler: the combined result coming down (IRQ ctx)."""
        sequence, value = packet.payload
        yield self.sim.timeout(COMPLETE_COST)
        self._broadcast(sequence, value)

    def _broadcast(self, sequence: int, value: Any) -> None:
        state = self._ops.setdefault(sequence, _OpState())
        for child in self.children:
            self.sim.spawn(
                self._send(PacketKind.CBCAST, child, sequence, value,
                           state.nbytes or 8, state.trace),
                name=f"kcbcast[{self.device.rank}]",
            )
        rec = self.sim.recorder
        if rec is not None and state.trace is not None:
            rec.event(state.trace, _COMPLETION, "kcoll",
                      f"n{self.device.rank}", self.sim.now)
        if state.waiter is None:
            # Impossible in a correct collective: the root only
            # broadcasts after every node contributed, and contributing
            # sets the waiter.
            raise ViaError(
                f"node {self.device.rank}: collective result with no "
                "local participant"
            )
        self.sim.progress += 1
        state.waiter.succeed(value)

    def _send(self, kind: PacketKind, dst: int, sequence: int,
              value: Any, nbytes: int, trace=None):
        """Process: one kernel-level collective packet."""
        device = self.device
        try:
            port = device.egress_port(dst)
        except ViaError:
            # Destination unreachable (node death partitioned it off):
            # drop; the failure notice aborts the op at every waiter.
            return
        packet = ViaPacket(
            kind=kind,
            src_node=device.rank,
            dst_node=dst,
            dst_vi=0,
            msg_id=device.next_msg_id(),
            payload_bytes=nbytes,
            payload=(sequence, value),
        ).seal()
        if self.sim.recorder is not None:
            packet.trace = trace
        from repro.hw.link import Frame

        frame = Frame(nbytes, device.params.header_bytes,
                      payload=packet, kind=f"via-{kind.value}")
        yield from port.enqueue_tx(frame)
