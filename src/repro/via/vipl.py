"""VIPL-style functional facade over the VIA object model.

The VIA Developer's Guide defines a C API (VipCreateVi, VipPostSend,
...); this module mirrors those entry points for code ported from real
VIPL programs.  Each function is a thin forwarding wrapper — the object
API in :mod:`repro.via` is the primary surface.

Functions that block are generator processes, like everything else in
the simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.via.completion import CompletionQueue
from repro.via.descriptors import (
    RecvDescriptor,
    RmaWriteDescriptor,
    SendDescriptor,
)
from repro.via.device import ViaDevice
from repro.via.memory import MemoryRegion, ProtectionTag
from repro.via.vi import VI, Reliability


def VipCreatePtag(nic: ViaDevice) -> ProtectionTag:
    return nic.create_protection_tag()


def VipRegisterMem(nic: ViaDevice, nbytes: int, ptag: ProtectionTag,
                   enable_rdma_write: bool = False):
    """Process: register (pin) memory through the kernel agent."""
    region = yield from nic.register_memory(nbytes, ptag,
                                            rma_write=enable_rdma_write)
    return region


def VipDeregisterMem(nic: ViaDevice, region: MemoryRegion) -> None:
    nic.memory.deregister(region)


def VipCreateVi(nic: ViaDevice, ptag: ProtectionTag,
                send_cq: Optional[CompletionQueue] = None,
                recv_cq: Optional[CompletionQueue] = None,
                reliability: Reliability = Reliability.RELIABLE_DELIVERY,
                ) -> VI:
    return nic.create_vi(ptag, send_cq=send_cq, recv_cq=recv_cq,
                         reliability=reliability)


def VipCreateCQ(nic: ViaDevice, name: str = "") -> CompletionQueue:
    return nic.create_cq(name=name)


def VipConnectRequest(vi: VI, remote_node: int, discriminator):
    """Process: active connection establishment (request + wait)."""
    result = yield from vi.device.agent.connect_request(
        vi, remote_node, discriminator
    )
    return result


def VipConnectWait(vi: VI, discriminator):
    """Process: passive connection establishment (wait + accept)."""
    result = yield from vi.device.agent.connect_wait(vi, discriminator)
    return result


def VipPostSend(vi: VI, descriptor: SendDescriptor):
    """Process: post a send descriptor."""
    yield from vi.post_send(descriptor)


def VipPostRecv(vi: VI, descriptor: RecvDescriptor) -> None:
    vi.post_recv(descriptor)


def VipRdmaWrite(vi: VI, descriptor: RmaWriteDescriptor):
    """Process: post a remote-DMA write."""
    yield from vi.post_rma_write(descriptor)


def VipSendWait(vi: VI):
    """Process: wait for the next send completion."""
    descriptor = yield from vi.send_wait()
    return descriptor


def VipRecvWait(vi: VI):
    """Process: wait for the next receive completion."""
    descriptor = yield from vi.recv_wait()
    return descriptor


def VipCQWait(cq: CompletionQueue):
    """Process: wait on a completion queue."""
    completion = yield from cq.wait()
    return completion


def VipCQDone(cq: CompletionQueue):
    """Nonblocking CQ poll (None when empty)."""
    return cq.poll()
