"""SU(3) matrix algebra on numpy arrays, with flop accounting.

LQCD's inner kernels are products of 3x3 complex matrices (gauge
links) with matrices and 3-vectors (color vectors).  Everything here
is vectorized over a leading "site" axis: a field of SU(3) matrices is
an array of shape ``(V, 3, 3)`` complex.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Flops for one 3x3 complex matrix-matrix multiply:
#: 27 complex mul (6 flops) + 18 complex add (2 flops).
SU3_MULTIPLY_FLOPS = 27 * 6 + 18 * 2  # = 198

#: Flops for a 3x3 complex matrix times color 3-vector:
#: 9 cmul + 6 cadd.
SU3_MATVEC_FLOPS = 9 * 6 + 6 * 2  # = 66


def random_su3(num: int, rng: Optional[np.random.Generator] = None,
               dtype=np.complex128) -> np.ndarray:
    """``num`` Haar-ish random SU(3) matrices, shape (num, 3, 3).

    Gram-Schmidt orthonormalization of a random complex matrix, with
    the third row fixed by unitarity (the standard lattice trick) and
    the determinant phase removed so det == 1.
    """
    rng = rng or np.random.default_rng(0)
    m = rng.normal(size=(num, 3, 3)) + 1j * rng.normal(size=(num, 3, 3))
    return reunitarize(m.astype(dtype))


def reunitarize(m: np.ndarray) -> np.ndarray:
    """Project (V, 3, 3) matrices onto SU(3).

    Row-wise Gram-Schmidt for the first two rows, third row = conjugate
    cross product, then divide by the cube root of the determinant
    phase.
    """
    out = np.array(m, copy=True)
    r0 = out[:, 0, :]
    r0 /= np.linalg.norm(r0, axis=1, keepdims=True)
    r1 = out[:, 1, :]
    overlap = np.sum(np.conj(r0) * r1, axis=1, keepdims=True)
    r1 -= overlap * r0
    r1 /= np.linalg.norm(r1, axis=1, keepdims=True)
    out[:, 2, :] = np.conj(np.cross(r0, r1))
    # Remove any residual determinant phase (should already be ~1).
    det = np.linalg.det(out)
    out /= np.cbrt(np.abs(det))[:, None, None] * np.exp(
        1j * np.angle(det) / 3
    )[:, None, None]
    return out


def su3_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Site-wise 3x3 complex matrix product: (V,3,3) x (V,3,3)."""
    return np.einsum("vij,vjk->vik", a, b)


def su3_matvec(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Site-wise matrix times color vector: (V,3,3) x (V,3) -> (V,3)."""
    return np.einsum("vij,vj->vi", u, v)


def su3_dagger(u: np.ndarray) -> np.ndarray:
    """Site-wise Hermitian conjugate."""
    return np.conj(np.swapaxes(u, -1, -2))


def is_su3(u: np.ndarray, tol: float = 1e-10) -> bool:
    """Are all matrices unitary with determinant 1?"""
    identity = np.eye(3)
    uu = su3_multiply(u, su3_dagger(u))
    if not np.allclose(uu, identity[None, :, :], atol=tol):
        return False
    return np.allclose(np.linalg.det(u), 1.0, atol=tol)
