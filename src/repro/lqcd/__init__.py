"""Lattice QCD application benchmark (paper sections 1, 6).

The clusters' primary mission is LQCD: each node operates on a regular
4-D sub-lattice, computing with 3x3 complex (SU(3)) matrices,
exchanging 3-D hypersurface data with its six mesh neighbors each
iteration, then performing a global reduction.  This package implements
that workload for real:

* :mod:`repro.lqcd.su3` — SU(3) matrix algebra (numpy) with flop
  accounting;
* :mod:`repro.lqcd.lattice` — 4-D domain decomposition onto the 3-D
  machine grid, surface-to-volume analysis;
* :mod:`repro.lqcd.dslash` — a Wilson-type hopping (dslash) operator
  on the local sub-lattice with halo dependencies;
* :mod:`repro.lqcd.halo` — the hypersurface exchange over QMP/MPI;
* :mod:`repro.lqcd.solver` — conjugate-gradient iteration with global
  sums;
* :mod:`repro.lqcd.benchmark` — the Table 1 harness: Gflops per node
  and $/Mflops for the GigE mesh vs the Myrinet comparator.
"""

from repro.lqcd.su3 import (
    SU3_MULTIPLY_FLOPS,
    random_su3,
    reunitarize,
    su3_multiply,
)
from repro.lqcd.lattice import LocalLattice, SubLatticeDecomposition
from repro.lqcd.dslash import WilsonDslash, DSLASH_FLOPS_PER_SITE
from repro.lqcd.wilson import WilsonFermionOperator, WILSON_FLOPS_PER_SITE
from repro.lqcd.solver import cg_solve
from repro.lqcd.benchmark import LqcdBenchmark, LqcdResult

__all__ = [
    "random_su3",
    "su3_multiply",
    "reunitarize",
    "SU3_MULTIPLY_FLOPS",
    "LocalLattice",
    "SubLatticeDecomposition",
    "WilsonDslash",
    "DSLASH_FLOPS_PER_SITE",
    "WilsonFermionOperator",
    "WILSON_FLOPS_PER_SITE",
    "cg_solve",
    "LqcdBenchmark",
    "LqcdResult",
]
