"""Conjugate-gradient solver for the normal equations D†D x = b.

The per-iteration pattern is the paper's: apply the hopping operator
(with halo exchanges when parallel), then perform global reductions
for the inner products — "utilizing nearest-neighbor communication in
each iterative step after which a global reduction ... is carried
out" (section 1).

The plain-numpy single-node version here is the physics reference the
tests validate against; :mod:`repro.lqcd.benchmark` runs the same
iteration structure on the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.lqcd.dslash import WilsonDslash


@dataclass
class CgResult:
    """Outcome of a CG solve."""

    solution: np.ndarray
    iterations: int
    residual: float
    converged: bool


def _dot(dslash: WilsonDslash, a: np.ndarray, b: np.ndarray) -> complex:
    own_a = dslash.interior(a)
    own_b = dslash.interior(b)
    return complex(np.sum(np.conj(own_a) * own_b))


def cg_solve(dslash: WilsonDslash, b: np.ndarray,
             tol: float = 1e-8, max_iters: int = 500) -> CgResult:
    """Solve D†D x = b on a single node (periodic halos)."""
    if tol <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tol}")
    x = dslash.zeros_field()
    r = b.copy()
    p = b.copy()
    rsq = _dot(dslash, r, r).real
    bsq = rsq
    if bsq == 0:
        return CgResult(x, 0, 0.0, True)
    own = (slice(1, -1), slice(1, -1), slice(1, -1))
    for iteration in range(1, max_iters + 1):
        ap = dslash.normal_op(p)
        alpha = rsq / _dot(dslash, p, ap).real
        x[own] += alpha * p[own]
        r[own] -= alpha * ap[own]
        new_rsq = _dot(dslash, r, r).real
        if new_rsq / bsq < tol * tol:
            return CgResult(x, iteration, np.sqrt(new_rsq / bsq), True)
        beta = new_rsq / rsq
        p[own] = r[own] + beta * p[own]
        rsq = new_rsq
    return CgResult(x, max_iters, np.sqrt(rsq / bsq), False)
