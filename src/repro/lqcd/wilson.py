"""The full Wilson dslash operator (4-spinor, gamma matrices).

The staggered-type operator in :mod:`repro.lqcd.dslash` carries the
benchmark; this module adds the Wilson fermion action the original
LQCD production codes used, with the standard flop count of 1320 per
site per application:

    D psi(x) = psi(x) - kappa * sum_mu [
        (1 - gamma_mu) U_mu(x)        psi(x + mu)
      + (1 + gamma_mu) U_mu(x-mu)^dag psi(x - mu) ]

Fields: gauge links as in :class:`~repro.lqcd.dslash.WilsonDslash`
(shape ``(4, lx+2, ly+2, lz+2, lt, 3, 3)``), spinors of shape
``(lx+2, ly+2, lz+2, lt, 4, 3)`` (spin x color) with one-site halo
shells on the three distributed axes.

Gamma matrices use the Euclidean DeGrand-Rossi basis; the defining
identities (Clifford algebra, hermiticity, gamma5 anticommutation) and
the operator's gamma5-hermiticity ``g5 D g5 = D^dagger`` are enforced
by the test suite — the strongest single correctness check a lattice
Dirac operator has.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lqcd.lattice import LocalLattice
from repro.lqcd.su3 import random_su3

#: Standard Wilson dslash flop count per site per application.
WILSON_FLOPS_PER_SITE = 1320


def _gamma_matrices() -> np.ndarray:
    """Euclidean gamma matrices, DeGrand-Rossi basis: shape (5,4,4),
    index 4 holding gamma5 = g0 g1 g2 g3 (diagonal in this basis)."""
    s0 = np.array([[1, 0], [0, 1]], dtype=complex)
    sx = np.array([[0, 1], [1, 0]], dtype=complex)
    sy = np.array([[0, -1j], [1j, 0]], dtype=complex)
    sz = np.array([[1, 0], [0, -1]], dtype=complex)
    zero = np.zeros((2, 2), dtype=complex)

    def block(upper_right, lower_left):
        return np.block([[zero, upper_right], [lower_left, zero]])

    gammas = np.empty((5, 4, 4), dtype=complex)
    # Spatial: gamma_k = offdiag(-i sigma_k, +i sigma_k).
    gammas[0] = block(-1j * sx, 1j * sx)
    gammas[1] = block(-1j * sy, 1j * sy)
    gammas[2] = block(-1j * sz, 1j * sz)
    # Temporal: gamma_t = offdiag(1, 1).
    gammas[3] = block(s0, s0)
    gammas[4] = gammas[0] @ gammas[1] @ gammas[2] @ gammas[3]
    return gammas


GAMMA = _gamma_matrices()
IDENTITY4 = np.eye(4, dtype=complex)


class WilsonFermionOperator:
    """Wilson D bound to one node's sub-lattice (periodic halos for
    single-node use; the parallel halo machinery of
    :mod:`repro.lqcd.halo` applies unchanged since the field layout
    matches the staggered operator's)."""

    def __init__(self, local: LocalLattice, kappa: float = 0.12,
                 rng: Optional[np.random.Generator] = None,
                 dtype=np.complex128) -> None:
        self.local = local
        self.kappa = float(kappa)
        self.dtype = dtype
        lx, ly, lz, lt = local.dims
        rng = rng or np.random.default_rng(4242)
        self.U = np.zeros((4, lx + 2, ly + 2, lz + 2, lt, 3, 3),
                          dtype=dtype)
        links = random_su3(4 * local.volume, rng=rng, dtype=dtype)
        self.U[:, 1:-1, 1:-1, 1:-1] = links.reshape(
            4, lx, ly, lz, lt, 3, 3
        )
        self._fill_gauge_halo()
        #: Projector pairs per direction: (1 - gamma_mu), (1 + gamma_mu).
        self._minus = np.array([IDENTITY4 - GAMMA[mu] for mu in range(4)])
        self._plus = np.array([IDENTITY4 + GAMMA[mu] for mu in range(4)])

    # -- fields -----------------------------------------------------------
    def random_spinor(self, rng: Optional[np.random.Generator] = None,
                      ) -> np.ndarray:
        rng = rng or np.random.default_rng(99)
        lx, ly, lz, lt = self.local.dims
        psi = np.zeros((lx + 2, ly + 2, lz + 2, lt, 4, 3),
                       dtype=self.dtype)
        psi[1:-1, 1:-1, 1:-1] = (
            rng.normal(size=(lx, ly, lz, lt, 4, 3))
            + 1j * rng.normal(size=(lx, ly, lz, lt, 4, 3))
        )
        return psi

    def zeros_spinor(self) -> np.ndarray:
        lx, ly, lz, lt = self.local.dims
        return np.zeros((lx + 2, ly + 2, lz + 2, lt, 4, 3),
                        dtype=self.dtype)

    def interior(self, field: np.ndarray) -> np.ndarray:
        return field[1:-1, 1:-1, 1:-1]

    # -- halos -------------------------------------------------------------
    def _shell(self, axis: int, side: int, boundary: bool):
        index = [slice(1, -1)] * 3
        if boundary:
            index[axis] = -2 if side > 0 else 1
        else:
            index[axis] = -1 if side > 0 else 0
        return tuple(index)

    def fill_halo_periodic(self, field: np.ndarray) -> None:
        for axis in range(3):
            field[self._shell(axis, +1, False)] = field[
                self._shell(axis, -1, True)
            ]
            field[self._shell(axis, -1, False)] = field[
                self._shell(axis, +1, True)
            ]

    def _fill_gauge_halo(self) -> None:
        for axis in range(3):
            hi = (slice(None),) + self._shell(axis, +1, False)
            lo_b = (slice(None),) + self._shell(axis, -1, True)
            lo = (slice(None),) + self._shell(axis, -1, False)
            hi_b = (slice(None),) + self._shell(axis, +1, True)
            self.U[hi] = self.U[lo_b]
            self.U[lo] = self.U[hi_b]

    # -- the operator ------------------------------------------------------
    def apply(self, psi: np.ndarray, halo_filled: bool = False,
              ) -> np.ndarray:
        """D psi over owned sites (halo shells of the result are zero)."""
        if not halo_filled:
            self.fill_halo_periodic(psi)
        own = (slice(1, -1), slice(1, -1), slice(1, -1))
        result = psi[own].copy()
        hop = np.zeros_like(result)
        for mu in range(4):
            if mu < 3:
                fwd = [slice(1, -1)] * 3
                bwd = [slice(1, -1)] * 3
                fwd[mu] = slice(2, None)
                bwd[mu] = slice(0, -2)
                psi_fwd = psi[tuple(fwd)]
                psi_bwd = psi[tuple(bwd)]
                u_fwd = self.U[(mu,) + own]
                u_bwd = self.U[(mu,) + tuple(bwd)]
            else:
                psi_own = psi[own]
                psi_fwd = np.roll(psi_own, -1, axis=3)
                psi_bwd = np.roll(psi_own, 1, axis=3)
                u_fwd = self.U[(mu,) + own]
                u_bwd = np.roll(u_fwd, 1, axis=3)
            # (1 - gamma_mu) U_mu(x) psi(x+mu): spin matrix x color
            # matrix, acting on (site..., spin a, color j).
            hop += np.einsum(
                "ab,xyztij,xyztbj->xyztai",
                self._minus[mu], u_fwd, psi_fwd,
            )
            hop += np.einsum(
                "ab,xyztji,xyztbj->xyztai",
                self._plus[mu], np.conj(u_bwd), psi_bwd,
            )
        result -= self.kappa * hop
        out = self.zeros_spinor()
        out[own] = result
        return out

    def apply_dagger(self, psi: np.ndarray) -> np.ndarray:
        """D^dagger via gamma5-hermiticity: D^dag = g5 D g5."""
        rotated = self._gamma5(psi)
        applied = self.apply(rotated)
        return self._gamma5(applied)

    def _gamma5(self, psi: np.ndarray) -> np.ndarray:
        out = self.zeros_spinor()
        own = (slice(1, -1), slice(1, -1), slice(1, -1))
        out[own] = np.einsum("ab,xyztbi->xyztai", GAMMA[4], psi[own])
        return out

    def normal_op(self, psi: np.ndarray) -> np.ndarray:
        """D^dagger D psi (positive definite; CG-able)."""
        return self.apply_dagger(self.apply(psi))

    # Field-protocol aliases so :func:`repro.lqcd.solver.cg_solve`
    # works on either fermion action.
    def zeros_field(self) -> np.ndarray:
        return self.zeros_spinor()

    def random_field(self, rng: Optional[np.random.Generator] = None,
                     ) -> np.ndarray:
        return self.random_spinor(rng)

    def flops_per_application(self) -> int:
        return WILSON_FLOPS_PER_SITE * self.local.volume
