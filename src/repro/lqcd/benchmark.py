"""The Table 1 benchmark: LQCD Gflops/node and $/Mflops, GigE mesh vs
Myrinet switched cluster.

Per CG-style iteration each rank:

1. starts the six-face halo exchange (nonblocking),
2. computes the interior sites (overlapping communication and
   computation — a stated design goal of MPI/QMP, section 5),
3. waits for the halos, computes the boundary sites,
4. repeats for the second operator application (the normal equations
   apply D twice),
5. performs the fused global reduction of the iteration's inner
   products.

Computation is charged against a sustained single-node kernel rate;
per the paper's "normalized to a single node for a fair comparison",
the same per-node kernel rate is used for both machines so the
comparison isolates the interconnect.  Communication is fully
simulated: the GigE run exercises MPI/QMP over the modified M-VIA on
the mesh; the Myrinet run uses the message-level Clos fabric model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.costmodel import (
    GIGE_MESH_COSTS,
    MYRINET_COSTS,
    ClusterCosts,
    dollars_per_mflops,
)
from repro.cluster.builder import MeshCluster, build_mesh
from repro.cluster.myrinet_world import MyriWorld
from repro.cluster.process_api import build_world, run_mpi
from repro.errors import BenchmarkError
from repro.lqcd.dslash import CG_LINALG_FLOPS_PER_SITE, DSLASH_FLOPS_PER_SITE
from repro.lqcd.halo import HaloExchanger
from repro.lqcd.lattice import HALF_SPINOR_BYTES, LocalLattice
from repro.sim import Simulator
from repro.topology.torus import Direction, Torus

#: Sustained single-node kernel rate (Gflops).  SSE-optimized
#: staggered/Wilson kernels on a 2.67 GHz P4 Xeon ran ~1.4-1.5.
DEFAULT_COMPUTE_GFLOPS = 1.45


@dataclass(frozen=True)
class LqcdResult:
    """One Table 1 cell pair."""

    label: str
    local: LocalLattice
    iteration_us: float
    gflops_per_node: float
    dollars_per_mflops: float

    @property
    def efficiency(self) -> float:
        return self.gflops_per_node / DEFAULT_COMPUTE_GFLOPS


def _neighbors_map(torus: Torus, rank: int) -> Dict[Tuple[int, int], int]:
    out = {}
    for axis in range(3):
        for sign in (+1, -1):
            out[(axis, sign)] = torus.neighbor(rank, Direction(axis, sign))
    return out


def flops_per_iteration(local: LocalLattice) -> int:
    """Two operator applications plus the CG linear algebra."""
    return local.volume * (
        2 * DSLASH_FLOPS_PER_SITE + CG_LINALG_FLOPS_PER_SITE
    )


def _lqcd_program(comm, torus: Torus, local: LocalLattice,
                  compute_gflops: float, iterations: int,
                  compute_fn, results: list):
    """SPMD benchmark iteration loop (transport-agnostic)."""
    rank = comm.rank
    exchanger = HaloExchanger(comm, _neighbors_map(torus, rank), local,
                              site_bytes=HALF_SPINOR_BYTES)
    volume = local.volume
    boundary = local.total_surface_sites()
    interior = max(volume - boundary, 0)
    rate = compute_gflops * 1000.0  # flops per us
    interior_us = interior * DSLASH_FLOPS_PER_SITE / rate
    boundary_us = boundary * DSLASH_FLOPS_PER_SITE / rate
    linalg_us = volume * CG_LINALG_FLOPS_PER_SITE / rate
    yield from comm.barrier()
    start = comm_now(comm)
    for _ in range(iterations):
        for _application in range(2):
            recvs, sends = exchanger.start(None)
            yield from compute_fn(comm, interior_us)
            yield from exchanger.finish(recvs, sends)
            yield from compute_fn(comm, boundary_us)
        yield from compute_fn(comm, linalg_us)
        # Fused global reduction of the iteration's inner products.
        yield from comm.allreduce(nbytes=16, data=None)
    elapsed = comm_now(comm) - start
    results.append(elapsed / iterations)
    return elapsed / iterations


def comm_now(comm) -> float:
    """Simulated time, for either transport."""
    if hasattr(comm, "engine"):
        return comm.engine.sim.now
    return comm.sim.now


def _gige_compute(comm, duration: float):
    """GigE nodes: computation contends with protocol work on the one
    CPU (lowest priority, as a compute loop would be)."""
    if duration > 0:
        yield from comm.engine.device.host.compute(duration)


def _myri_compute(comm, duration: float):
    """Myrinet/GM offloads protocol to the LaNai; plain wall time."""
    if duration > 0:
        yield from comm.compute(duration)


class LqcdBenchmark:
    """Builds clusters and produces Table 1 rows."""

    def __init__(self, gige_dims: Sequence[int] = (4, 8, 8),
                 myrinet_hosts: int = 128,
                 myrinet_logical_dims: Sequence[int] = (4, 4, 8),
                 compute_gflops: float = DEFAULT_COMPUTE_GFLOPS,
                 iterations: int = 4) -> None:
        self.gige_dims = tuple(gige_dims)
        self.myrinet_hosts = myrinet_hosts
        self.myrinet_logical = Torus(myrinet_logical_dims)
        if self.myrinet_logical.size != myrinet_hosts:
            raise BenchmarkError(
                f"logical dims {myrinet_logical_dims} != {myrinet_hosts} "
                f"hosts"
            )
        self.compute_gflops = compute_gflops
        self.iterations = iterations
        self._gige_cluster: Optional[MeshCluster] = None
        self._gige_comms = None

    # -- GigE mesh ------------------------------------------------------------
    def _gige_world(self):
        if self._gige_cluster is None:
            self._gige_cluster = build_mesh(self.gige_dims, wrap=True)
            self._gige_comms = build_world(self._gige_cluster)
        return self._gige_cluster, self._gige_comms

    def run_gige(self, local: LocalLattice) -> LqcdResult:
        cluster, comms = self._gige_world()
        results: list = []
        run_mpi(
            cluster, _lqcd_program,
            args=(cluster.torus, local, self.compute_gflops,
                  self.iterations, _gige_compute, results),
            comms=comms,
        )
        iteration_us = max(results)
        return self._result("GigE mesh", GIGE_MESH_COSTS, local,
                            iteration_us)

    # -- Myrinet comparator -----------------------------------------------------
    def run_myrinet(self, local: LocalLattice) -> LqcdResult:
        sim = Simulator()
        world = MyriWorld(sim, self.myrinet_hosts)
        results: list = []
        processes = [
            sim.spawn(
                _lqcd_program(comm, self.myrinet_logical, local,
                              self.compute_gflops, self.iterations,
                              _myri_compute, results),
                name=f"lqcd-myri[{comm.rank}]",
            )
            for comm in world.comms
        ]
        for process in processes:
            sim.run_until_complete(process)
        iteration_us = max(results)
        return self._result("Myrinet switched", MYRINET_COSTS, local,
                            iteration_us)

    def _result(self, label: str, costs: ClusterCosts,
                local: LocalLattice, iteration_us: float) -> LqcdResult:
        flops = flops_per_iteration(local)
        gflops = flops / iteration_us / 1000.0
        return LqcdResult(
            label=label,
            local=local,
            iteration_us=iteration_us,
            gflops_per_node=gflops,
            dollars_per_mflops=dollars_per_mflops(costs, gflops),
        )

    # -- Table 1 ---------------------------------------------------------------
    def table1(self, locals_: Optional[Sequence[LocalLattice]] = None,
               ) -> List[Tuple[LqcdResult, LqcdResult]]:
        """(Myrinet, GigE) result pairs per lattice size."""
        if locals_ is None:
            locals_ = [LocalLattice(L, L, L, L) for L in (6, 8, 10, 12)]
        rows = []
        for local in locals_:
            myri = self.run_myrinet(local)
            gige = self.run_gige(local)
            rows.append((myri, gige))
        return rows
