"""A staggered-type 4-D hopping (dslash) operator on the local lattice.

The paper doesn't pin the fermion action; what matters for the
reproduction is the computational shape it describes — SU(3) matrices
applied site-wise, nearest-neighbor 4-D stencil, 3-D hypersurface
halos.  A staggered-type operator delivers exactly that with the
standard flop count (~570 flops/site/application) at a fraction of the
code of full Wilson spin projection:

    D psi(x) = m psi(x) + (1/2) sum_mu eta_mu(x) [
        U_mu(x) psi(x+mu) - U_mu(x-mu)^dagger psi(x-mu) ]

Fields are numpy arrays over the local volume with one-site halo
shells on the three machine-distributed axes (t wraps locally):

* gauge field ``U``: shape (4, lx+2, ly+2, lz+2, lt, 3, 3)
* color field ``psi``: shape (lx+2, ly+2, lz+2, lt, 3)

The operator reads neighbor values out of the halo shells; the
exchange in :mod:`repro.lqcd.halo` fills them.  For single-node runs
:meth:`WilsonDslash.fill_halo_periodic` wraps the shells locally so
the operator is exactly the periodic-lattice dslash (used by the
physics tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lqcd.lattice import LocalLattice
from repro.lqcd.su3 import random_su3

#: Standard staggered dslash flop count per site per application:
#: 8 SU(3) matrix-vector products (66 flops) + 7 3-vector complex adds
#: (6 flops) = 570.
DSLASH_FLOPS_PER_SITE = 8 * 66 + 7 * 6

#: Per-site flops of the CG linear algebra (3 axpy-like updates on
#: color vectors + 2 local dot products): 3*12 + 2*12 = 60... counted
#: as complex ops on 3 components: axpy = 3 comps * (cmul 6 + cadd 2),
#: dot = 3 comps * 8.
CG_LINALG_FLOPS_PER_SITE = 3 * 3 * 8 + 2 * 3 * 8


class WilsonDslash:
    """The hopping operator bound to one node's sub-lattice.

    (Named for the paper's Wilson-era context; the action implemented
    is the staggered-type operator documented above.)
    """

    def __init__(self, local: LocalLattice, mass: float = 0.5,
                 rng: Optional[np.random.Generator] = None,
                 dtype=np.complex128) -> None:
        self.local = local
        self.mass = float(mass)
        self.dtype = dtype
        lx, ly, lz, lt = local.dims
        rng = rng or np.random.default_rng(12345)
        #: Gauge links with halo shells on x, y, z.
        self.U = np.zeros((4, lx + 2, ly + 2, lz + 2, lt, 3, 3),
                          dtype=dtype)
        links = random_su3(4 * local.volume, rng=rng, dtype=dtype)
        self.U[:, 1:-1, 1:-1, 1:-1, :, :, :] = links.reshape(
            4, lx, ly, lz, lt, 3, 3
        )
        self.fill_gauge_halo_periodic()
        #: Staggered phases eta_mu(x) = (-1)^(x0+..+x_{mu-1}).
        self._eta = self._staggered_phases()

    # -- construction helpers --------------------------------------------------
    def _staggered_phases(self) -> np.ndarray:
        lx, ly, lz, lt = self.local.dims
        x = np.arange(lx)[:, None, None, None]
        y = np.arange(ly)[None, :, None, None]
        z = np.arange(lz)[None, None, :, None]
        t = np.arange(lt)[None, None, None, :]
        eta = np.empty((4, lx, ly, lz, lt))
        eta[0] = 1.0
        eta[1] = (-1.0) ** x
        eta[2] = (-1.0) ** (x + y)
        eta[3] = (-1.0) ** (x + y + z)
        return eta

    def random_field(self, rng: Optional[np.random.Generator] = None,
                     ) -> np.ndarray:
        """A random color field with (empty) halo shells."""
        rng = rng or np.random.default_rng(777)
        lx, ly, lz, lt = self.local.dims
        psi = np.zeros((lx + 2, ly + 2, lz + 2, lt, 3), dtype=self.dtype)
        psi[1:-1, 1:-1, 1:-1] = (
            rng.normal(size=(lx, ly, lz, lt, 3))
            + 1j * rng.normal(size=(lx, ly, lz, lt, 3))
        )
        return psi

    def zeros_field(self) -> np.ndarray:
        lx, ly, lz, lt = self.local.dims
        return np.zeros((lx + 2, ly + 2, lz + 2, lt, 3), dtype=self.dtype)

    # -- halo handling ---------------------------------------------------------
    def interior(self, field: np.ndarray) -> np.ndarray:
        """View of the owned sites (no halo shells)."""
        return field[1:-1, 1:-1, 1:-1]

    def boundary_slice(self, axis: int, side: int) -> Tuple:
        """Index of the owned boundary plane to *send* (axis 0..2,
        side +1 = high face, -1 = low face)."""
        index = [slice(1, -1)] * 3
        index[axis] = -2 if side > 0 else 1
        return tuple(index)

    def halo_slice(self, axis: int, side: int) -> Tuple:
        """Index of the halo shell to *fill* from the neighbor on
        ``side`` of ``axis``."""
        index = [slice(1, -1)] * 3
        index[axis] = -1 if side > 0 else 0
        return tuple(index)

    def fill_halo_periodic(self, field: np.ndarray) -> None:
        """Single-node wrap: copy boundary planes into opposite shells."""
        for axis in range(3):
            field[self.halo_slice(axis, +1)] = field[
                self.boundary_slice(axis, -1)
            ]
            field[self.halo_slice(axis, -1)] = field[
                self.boundary_slice(axis, +1)
            ]

    def fill_gauge_halo_periodic(self) -> None:
        for axis in range(3):
            hi = self.halo_slice(axis, +1)
            lo_b = self.boundary_slice(axis, -1)
            lo = self.halo_slice(axis, -1)
            hi_b = self.boundary_slice(axis, +1)
            self.U[(slice(None),) + hi] = self.U[(slice(None),) + lo_b]
            self.U[(slice(None),) + lo] = self.U[(slice(None),) + hi_b]

    # -- the operator ----------------------------------------------------------
    def apply(self, psi: np.ndarray, halo_filled: bool = False,
              ) -> np.ndarray:
        """D psi over the owned sites; halos of ``psi`` must be filled
        (or pass ``halo_filled=False`` to wrap periodically first).

        Returns a fresh field with owned sites set (halo shells zero).
        """
        if not halo_filled:
            self.fill_halo_periodic(psi)
        out = self.zeros_field()
        own = (slice(1, -1), slice(1, -1), slice(1, -1))
        result = self.mass * psi[own]
        # Spatial (distributed) axes: neighbors may live in the halo.
        for mu in range(3):
            fwd = [slice(1, -1)] * 3
            bwd = [slice(1, -1)] * 3
            fwd[mu] = slice(2, None)
            bwd[mu] = slice(0, -2)
            u_fwd = self.U[(mu,) + own]
            u_bwd = self.U[(mu,) + tuple(bwd)]
            hop = (
                np.einsum("xyztij,xyztj->xyzti", u_fwd, psi[tuple(fwd)])
                - np.einsum(
                    "xyztij,xyzti->xyztj", np.conj(u_bwd),
                    psi[tuple(bwd)],
                )
            )
            result = result + 0.5 * self._eta[mu, ..., None] * hop
        # Time axis: node-local, periodic via roll.
        u_t = self.U[(3,) + own]
        psi_own = psi[own]
        psi_tfwd = np.roll(psi_own, -1, axis=3)
        psi_tbwd = np.roll(psi_own, 1, axis=3)
        u_tbwd = np.roll(u_t, 1, axis=3)
        hop_t = (
            np.einsum("xyztij,xyztj->xyzti", u_t, psi_tfwd)
            - np.einsum("xyztij,xyzti->xyztj", np.conj(u_tbwd), psi_tbwd)
        )
        result = result + 0.5 * self._eta[3, ..., None] * hop_t
        out[own] = result
        return out

    def apply_dagger(self, psi: np.ndarray, halo_filled: bool = False,
                     ) -> np.ndarray:
        """D^dagger psi = (2m - D) psi for this anti-Hermitian-hopping
        operator (hopping part changes sign under dagger)."""
        d_psi = self.apply(psi, halo_filled=halo_filled)
        out = self.zeros_field()
        own = (slice(1, -1), slice(1, -1), slice(1, -1))
        out[own] = 2.0 * self.mass * psi[own] - d_psi[own]
        return out

    def normal_op(self, psi: np.ndarray) -> np.ndarray:
        """D^dagger D psi (the positive-definite CG operator)."""
        return self.apply_dagger(self.apply(psi))

    # -- accounting -------------------------------------------------------------
    def flops_per_application(self) -> int:
        return DSLASH_FLOPS_PER_SITE * self.local.volume
