"""4-D lattice domain decomposition onto the 3-D machine mesh.

"An LQCD calculation is carried out in a 4-dimensional box of points
... each node in a cluster operates on a regular 4-D sub-lattice ...
communicating 3-dimensional hyper-surface data to adjacent nodes"
(section 1).  Three lattice axes (x, y, z) are distributed over the
machine's three mesh axes; the time axis stays node-local.

Surface-to-volume: per iteration a node communicates
``2 * (ly*lz*lt + lx*lz*lt + lx*ly*lt)`` boundary sites out of
``lx*ly*lz*lt`` — the ratio falls as the local volume grows, which is
exactly the effect Table 1 shows ("gradual increase of GigE
performance with respect to the lattice size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.topology.torus import Torus

#: Bytes per boundary site on the wire: a spin-projected half spinor,
#: 2 spins x 3 colors complex single precision (the production codes
#: communicated 32-bit).
HALF_SPINOR_BYTES = 2 * 3 * 2 * 4  # = 48
#: Bytes per color-vector site (staggered-type field, complex single).
COLOR_VECTOR_BYTES = 3 * 2 * 4  # = 24


@dataclass(frozen=True)
class LocalLattice:
    """One node's sub-lattice: local extents (lx, ly, lz, lt)."""

    lx: int
    ly: int
    lz: int
    lt: int

    def __post_init__(self) -> None:
        for extent in (self.lx, self.ly, self.lz, self.lt):
            if extent < 2:
                raise ConfigurationError(
                    f"local extents must be >= 2, got {self.dims}"
                )

    @property
    def dims(self) -> Tuple[int, int, int, int]:
        return (self.lx, self.ly, self.lz, self.lt)

    @property
    def volume(self) -> int:
        return self.lx * self.ly * self.lz * self.lt

    def surface_sites(self, axis: int) -> int:
        """Boundary sites on one face perpendicular to machine ``axis``
        (0 -> x, 1 -> y, 2 -> z; t is never distributed)."""
        if axis == 0:
            return self.ly * self.lz * self.lt
        if axis == 1:
            return self.lx * self.lz * self.lt
        if axis == 2:
            return self.lx * self.ly * self.lt
        raise ConfigurationError(f"axis {axis} not distributed")

    def total_surface_sites(self) -> int:
        """All boundary sites exchanged per iteration (both faces,
        three distributed axes)."""
        return 2 * sum(self.surface_sites(axis) for axis in range(3))

    def surface_to_volume(self) -> float:
        return self.total_surface_sites() / self.volume

    def halo_bytes(self, axis: int,
                   site_bytes: int = HALF_SPINOR_BYTES) -> int:
        """Message size for one face exchange along machine ``axis``."""
        return self.surface_sites(axis) * site_bytes


@dataclass(frozen=True)
class SubLatticeDecomposition:
    """A global lattice split over a 3-D machine torus."""

    machine: Torus
    local: LocalLattice

    def __post_init__(self) -> None:
        if self.machine.ndim != 3:
            raise ConfigurationError(
                f"LQCD decomposition needs a 3-D machine, got "
                f"{self.machine.ndim}-D"
            )

    @property
    def global_dims(self) -> Tuple[int, int, int, int]:
        mx, my, mz = self.machine.dims
        return (self.local.lx * mx, self.local.ly * my,
                self.local.lz * mz, self.local.lt)

    @property
    def global_volume(self) -> int:
        gx, gy, gz, gt = self.global_dims
        return gx * gy * gz * gt

    def node_origin(self, rank: int) -> Tuple[int, int, int, int]:
        """Global coordinates of this node's first site."""
        cx, cy, cz = self.machine.coords(rank)
        return (cx * self.local.lx, cy * self.local.ly,
                cz * self.local.lz, 0)

    def halo_plan(self) -> Dict[int, int]:
        """Per-axis halo message bytes (one face)."""
        return {
            axis: self.local.halo_bytes(axis) for axis in range(3)
        }


def standard_local_lattices() -> Sequence[LocalLattice]:
    """The per-node sub-lattice sizes for the Table 1 sweep.

    The paper's lattice-size column grows so the surface-to-volume
    ratio falls; symmetric local volumes L^4 serve that purpose.
    """
    return tuple(LocalLattice(L, L, L, L) for L in (4, 6, 8, 10, 12))
