"""Hypersurface (halo) exchange over the message-passing layer.

Each iteration every node swaps its six boundary planes with its mesh
neighbors — the nearest-neighbor communication pattern that motivates
the whole cluster design.  The exchange is written against the small
transport interface both :class:`repro.mpi.Communicator` and the
Myrinet comparator world implement (``isend``/``irecv`` with
tags + ``torus``-style neighbor ranks supplied by the caller), so the
same application code runs on either interconnect.

Two modes:

* **data mode** — numpy boundary planes really travel (used by the
  correctness tests and examples);
* **timing mode** (``data=None``) — only byte counts travel (used by
  the Table 1 benchmark where per-iteration data content is
  irrelevant).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.lqcd.dslash import WilsonDslash
from repro.lqcd.lattice import LocalLattice
from repro.mpi.request import waitall

#: Tag base for halo traffic; encodes (axis, direction).
_TAG_HALO = 300


def halo_tag(axis: int, sign: int) -> int:
    return _TAG_HALO + 2 * axis + (0 if sign > 0 else 1)


class HaloExchanger:
    """Persistent halo-exchange plan for one node.

    Parameters
    ----------
    comm:
        Transport (Communicator-compatible).
    neighbors:
        Mapping (axis, sign) -> neighbor rank.
    local:
        The node's sub-lattice (for message sizes).
    site_bytes:
        Wire bytes per boundary site.
    """

    def __init__(self, comm, neighbors: Dict[Tuple[int, int], int],
                 local: LocalLattice, site_bytes: int = 48) -> None:
        self.comm = comm
        self.neighbors = dict(neighbors)
        self.local = local
        self.site_bytes = site_bytes
        self.stats = {"exchanges": 0, "bytes": 0}

    def face_bytes(self, axis: int) -> int:
        return self.local.surface_sites(axis) * self.site_bytes

    def start(self, planes: Optional[Dict[Tuple[int, int], Any]] = None):
        """Begin the 6-face exchange; returns (recv_reqs, send_reqs).

        ``planes`` maps (axis, sign) -> the boundary plane to send in
        that direction (None for timing mode).  Receives are posted
        first (pre-posted receives keep the eager path fast).
        """
        recvs = {}
        sends = []
        for (axis, sign), peer in self.neighbors.items():
            recvs[(axis, sign)] = self.comm.irecv(
                peer, halo_tag(axis, -sign),
                nbytes=self.face_bytes(axis),
            )
        for (axis, sign), peer in self.neighbors.items():
            plane = None if planes is None else planes.get((axis, sign))
            sends.append(self.comm.isend(
                peer, halo_tag(axis, sign),
                nbytes=self.face_bytes(axis), data=plane,
            ))
            self.stats["bytes"] += self.face_bytes(axis)
        self.stats["exchanges"] += 1
        return recvs, sends

    def finish(self, recvs, sends):
        """Process: wait for the whole exchange; returns received
        planes keyed by (axis, sign) of the face they fill."""
        yield from waitall(sends)
        yield from waitall(list(recvs.values()))
        return {
            key: request.received_data for key, request in recvs.items()
        }

    def exchange(self, planes: Optional[Dict[Tuple[int, int], Any]] = None):
        """Process: blocking 6-face exchange."""
        recvs, sends = self.start(planes)
        received = yield from self.finish(recvs, sends)
        return received


def field_planes(dslash: WilsonDslash,
                 field: np.ndarray) -> Dict[Tuple[int, int], np.ndarray]:
    """Boundary planes of ``field`` to send: (axis, sign) -> array.

    The plane sent toward ``sign`` is the owned face on that side; the
    neighbor installs it in its opposite halo shell.
    """
    planes = {}
    for axis in range(3):
        for sign in (+1, -1):
            planes[(axis, sign)] = np.ascontiguousarray(
                field[dslash.boundary_slice(axis, sign)]
            )
    return planes


def install_planes(dslash: WilsonDslash, field: np.ndarray,
                   received: Dict[Tuple[int, int], np.ndarray]) -> None:
    """Install received planes into the halo shells.

    A plane received from the neighbor on side ``sign`` of ``axis``
    fills our shell on that same side.
    """
    for (axis, sign), plane in received.items():
        if plane is not None:
            field[dslash.halo_slice(axis, sign)] = plane


def parallel_halo_fill(dslash: WilsonDslash, exchanger: HaloExchanger,
                       field: np.ndarray):
    """Process: one full data-mode halo fill of ``field``."""
    received = yield from exchanger.exchange(field_planes(dslash, field))
    install_planes(dslash, field, received)
