"""repro — reproduction of *Message Passing for Linux Clusters with
Gigabit Ethernet Mesh Connections* (Chen, Watson, Edwards, Mao; IPPS 2005).

The package builds, in pure Python, every system the paper describes:

* a deterministic discrete-event simulator (:mod:`repro.sim`),
* calibrated hardware models for GigE adapters, links, the PCI-X bus and
  a Myrinet comparator (:mod:`repro.hw`),
* torus/mesh topology machinery (:mod:`repro.topology`),
* a modified-M-VIA model with OS-bypass semantics and kernel-level
  packet switching (:mod:`repro.via`) and a TCP baseline
  (:mod:`repro.tcpip`),
* the common messaging core with eager/rendezvous protocols and token
  flow control (:mod:`repro.core`),
* MPI-1.1-style and QMP-style message-passing libraries
  (:mod:`repro.mpi`, :mod:`repro.qmp`),
* torus collective algorithms including the paper's optimal scatter
  (:mod:`repro.collectives`),
* an LQCD application benchmark with real SU(3) numpy kernels
  (:mod:`repro.lqcd`),
* cluster builders and a parallel-program API (:mod:`repro.cluster`),
* the benchmark harness regenerating every figure and table
  (:mod:`repro.bench`).

Quickstart::

    from repro.cluster import build_torus_cluster
    from repro.mpi import run_mpi

    cluster = build_torus_cluster((4, 4))
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(b"hello", dest=1, tag=7)
        elif comm.rank == 1:
            msg = yield from comm.recv(source=0, tag=7)
    results = run_mpi(cluster, program)
"""

from repro._version import __version__

__all__ = ["__version__"]
