"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so applications can
catch everything from this package with one handler.  Layer-specific
errors mirror the error surfaces of the real systems the paper used:
VIA status codes, MPI error classes, and QMP status values.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class HangError(SimulationError):
    """The watchdog saw no application progress for too long.

    Raised by :class:`repro.sim.monitor.Watchdog` when the event queue
    is still busy (keepalive timers, retransmission timers) but no
    descriptor, request, or collective has completed within the hang
    window — the distributed-hang analogue of :class:`DeadlockError`,
    which can never fire while periodic timers keep the queue nonempty.

    ``config_hash`` and ``fault_seed`` identify the exact run (canonical
    configuration digest + deterministic fault-stream seed) so a hung
    run is reproducible from the error alone; both also appear in the
    message text via the cluster's ``hang_report``.

    ``checkpoint_id`` and ``checkpoint_index`` name the most recent
    durable checkpoint of the run, when one exists — exactly where a
    resumed run will pick up (see :mod:`repro.ckpt`).
    """

    def __init__(self, message: str,
                 config_hash: Optional[str] = None,
                 fault_seed: Optional[int] = None,
                 checkpoint_id: Optional[str] = None,
                 checkpoint_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.config_hash = config_hash
        self.fault_seed = fault_seed
        self.checkpoint_id = checkpoint_id
        self.checkpoint_index = checkpoint_index


class ShardCrashed(SimulationError):
    """A PDES shard worker died mid-run (pipe EOF / killed process).

    Distinct from a shard *reporting* an error (which stays a plain
    :class:`SimulationError` and is never retried): a crash says
    nothing about the simulation itself, so the coordinator may recover
    the shard from its checkpoint log (:mod:`repro.ckpt`) and replay.
    """

    def __init__(self, message: str, shard_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class CheckpointError(ReproError):
    """Base class for checkpoint/restore failures (:mod:`repro.ckpt`)."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint does not match the run trying to restore from it.

    Raised when the stored config hash or code version disagrees with
    the restoring run's identity, or when a replayed shard's state
    digest diverges from the digest captured at checkpoint time — in
    either case resuming would silently break the determinism contract,
    so the restore is refused instead.
    """


class InterruptError(SimulationError):
    """A process was interrupted while waiting on an event.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ConfigurationError(ReproError):
    """Invalid hardware/topology/cluster configuration."""


class TopologyError(ReproError):
    """Invalid coordinates, ranks, or dimensions for a topology."""


class ViaError(ReproError):
    """Base class for VIA-layer errors (mirrors VIP_* status codes)."""


class ViaNotConnectedError(ViaError):
    """Operation attempted on a VI that is not in the connected state."""


class ViaDescriptorError(ViaError):
    """Malformed or exhausted descriptor (e.g. receive queue empty)."""


class ViaProtectionError(ViaError):
    """RMA access outside a registered/enabled memory region."""


class TcpError(ReproError):
    """Errors from the TCP baseline stack."""


class MessagingError(ReproError):
    """Base class for the common messaging-core errors."""


class FlowControlError(MessagingError):
    """Credit/token accounting violated an invariant."""


class MpiError(ReproError):
    """MPI-level error (mirrors MPI error classes)."""

    def __init__(self, message: str, error_class: str = "MPI_ERR_OTHER") -> None:
        super().__init__(message)
        self.error_class = error_class


class TruncationError(MpiError):
    """Received message longer than the posted receive buffer."""

    def __init__(self, message: str) -> None:
        super().__init__(message, error_class="MPI_ERR_TRUNCATE")


class MpiProcFailed(MpiError):
    """An operation touched a failed rank (ULFM MPI_ERR_PROC_FAILED).

    Raised instead of hanging when the failure detector has declared a
    peer dead, or when a pending operation is aborted by a failure
    notice mid-flight.  ``dead_rank`` names the failed world rank when
    known (None for blanket aborts where several deaths coincide).
    """

    def __init__(self, message: str, dead_rank: Optional[int] = None) -> None:
        super().__init__(message, error_class="MPI_ERR_PROC_FAILED")
        self.dead_rank = dead_rank


class MpiRevoked(MpiError):
    """The communicator was revoked (ULFM MPI_ERR_REVOKED)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, error_class="MPI_ERR_REVOKED")


class QmpError(ReproError):
    """QMP-level error (mirrors QMP_status_t)."""


class BenchmarkError(ReproError):
    """Benchmark harness failure (bad sweep, missing experiment id)."""
