"""Canonical serialization and stable content hashing.

The simulator is deterministic: a run is fully identified by its
configuration (hardware params, topology, workload, seed) plus the
code version.  That makes results *content-addressable* — the service
layer caches them under a hash of the canonicalized configuration —
but only if the serialization is genuinely stable:

* dict keys are emitted sorted, so field ordering can never drift;
* dataclasses are tagged with their class name, so two different
  param types with identical field values never collide;
* floats are hashed through ``float.hex()`` (exact, locale- and
  platform-independent) rather than ``repr``, so ``0.30000000000000004``
  and friends can never round differently across Python builds;
* only JSON scalars, lists/tuples, dicts, dataclasses and numpy
  scalars are accepted — anything else raises instead of picking up
  ``repr``-dependent bytes.

``tests/test_canonical_hash.py`` pins the digest of the default
:class:`~repro.hw.params.GigEParams` so accidental drift (a renamed
field, a changed default, a new float formatting) fails loudly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Union

from repro.errors import ConfigurationError

Jsonable = Union[None, bool, int, float, str, List[Any], Dict[str, Any]]


def to_canonical(obj: Any) -> Jsonable:
    """Recursively convert ``obj`` to a canonical JSON-able structure.

    Dataclass instances become dicts tagged with ``"__class__"``;
    tuples become lists; numpy scalars collapse to Python scalars.
    Unsupported types raise :class:`ConfigurationError`.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__class__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = to_canonical(getattr(obj, field.name))
        return out
    if isinstance(obj, dict):
        converted = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"canonical dict keys must be str, got {key!r}"
                )
            converted[key] = to_canonical(value)
        return converted
    if isinstance(obj, (list, tuple)):
        return [to_canonical(value) for value in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # numpy scalars (np.float64, np.int64, ...) expose .item().
    item = getattr(obj, "item", None)
    if callable(item) and type(obj).__module__.startswith("numpy"):
        return to_canonical(obj.item())
    raise ConfigurationError(
        f"cannot canonicalize {type(obj).__name__}: {obj!r}"
    )


def _hash_form(obj: Jsonable) -> Jsonable:
    """Replace floats with their explicit hex form for hashing.

    ``float.hex()`` is an exact, unambiguous textual form;
    ``["~f", ...]`` tags it so the string ``"0x1.8p+1"`` and the float
    ``3.0`` can never collide.  Booleans are checked before ints
    (``bool`` is an ``int`` subclass) so ``True`` != ``1``.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return ["~f", float(obj).hex()]
    if isinstance(obj, list):
        return [_hash_form(value) for value in obj]
    if isinstance(obj, dict):
        return {key: _hash_form(value) for key, value in obj.items()}
    raise ConfigurationError(f"non-canonical value {obj!r}")  # pragma: no cover


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of ``obj`` (sorted keys, no whitespace,
    floats in explicit hex form).  Equal objects always produce equal
    text; this is the hashing pre-image."""
    return json.dumps(_hash_form(to_canonical(obj)), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


def stable_json(obj: Any) -> str:
    """Deterministic *readable* JSON of ``obj`` (sorted keys, plain
    float repr).  Used to freeze result payloads: two bit-identical
    results produce byte-identical text."""
    return json.dumps(to_canonical(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


class Canonical:
    """Mixin giving a dataclass canonical-dict and content-hash views."""

    def to_canonical_dict(self) -> Jsonable:
        """This object as a canonical (sorted, tagged) plain structure."""
        return to_canonical(self)

    def content_hash(self) -> str:
        """Stable SHA-256 identity of this object's configuration."""
        return content_hash(self)


__all__ = [
    "Canonical",
    "canonical_json",
    "content_hash",
    "stable_json",
    "to_canonical",
]
