"""Message envelopes, request handles, and core tuning parameters."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import Event

#: MPI-style wildcards.
ANY_SOURCE = -1
ANY_TAG = -1

_req_ids = itertools.count()


class MsgType(enum.Enum):
    """Core protocol message types carried over the channel VIs."""

    EAGER = "eager"          # small message, data inline
    RTS = "rts"              # request-to-send for a large message
    ADVERT = "advert"        # receiver buffer advertisement (CTS)
    TOKENS = "tokens"        # explicit flow-control credit return
    RMA_DATA = "rma-data"    # the zero-copy payload (notify completes it)


@dataclass
class Envelope:
    """The core's message header (rides as the VIA payload object).

    ``data_tokens``/``ctrl_tokens`` are the piggybacked credit returns
    the paper describes ("this number is constantly updated to the
    sender by either a piggybacked application message or an explicit
    control message").
    """

    msg_type: MsgType
    src_rank: int
    tag: int
    context: int
    nbytes: int
    #: Application payload object (eager) or None.
    data: Any = field(default=None, repr=False)
    #: Rendezvous bookkeeping.
    send_id: int = -1
    recv_id: int = -1
    remote_addr: int = 0
    #: Piggybacked credit returns.
    data_tokens: int = 0
    ctrl_tokens: int = 0
    #: Flight-recorder trace id (observability only; not part of the
    #: wire header).
    trace: Any = field(default=None, repr=False)

    #: Wire size of the core header inside the VIA payload.
    HEADER_BYTES = 32


@dataclass(frozen=True)
class CoreParams:
    """Tuning constants of the messaging core (paper section 5.1)."""

    #: Eager/rendezvous switch point ("messages of small sizes
    #: (<16K bytes)").
    eager_threshold: int = 16384
    #: Flow-control tokens per channel == pre-posted eager buffers.
    data_tokens: int = 32
    #: Credits for control messages (adverts, RTS, token updates).
    ctrl_tokens: int = 64
    #: Return credits explicitly once this many are owed and no
    #: application traffic has piggybacked them.
    token_return_threshold: int = 8
    #: Library matching cost per message (us, user level).
    match_cost: float = 0.3
    #: Library cost of handling a control message (us).
    ctrl_cost: float = 0.4
    #: Eager bounce-buffer slot size (must cover threshold + header).
    eager_slot_bytes: int = 16384 + 64
    #: Sender-side matching (proactive buffer adverts on posted
    #: receives).  On: a large send finding an advert starts its RMA
    #: immediately (saves half a round trip); adverted receives become
    #: *bound* and only complete via their RMA, which can reorder
    #: matches when small and large sends mix on one (src, tag).  Off:
    #: pure in-band RTS rendezvous with strict MPI arrival-order
    #: matching.
    proactive_adverts: bool = True


class Request(Event):
    """Base class for nonblocking-operation handles.

    A Request *is* a simulation event: programs ``yield request`` (or
    call :meth:`wait`) to block until completion.
    """

    def __init__(self, sim, kind: str) -> None:
        super().__init__(sim, name=f"{kind}-req")
        # Ids come from the simulator's own stream (falling back to the
        # process-global counter for bare Events in unit tests) so that
        # a checkpoint replay reproduces the exact rendezvous ids the
        # original run put on the wire.
        if hasattr(sim, "_req_ids"):
            self.req_id = sim._req_ids
            sim._req_ids += 1
        else:  # pragma: no cover - hand-built test doubles
            self.req_id = next(_req_ids)
        self.kind = kind

    def wait(self):
        """Process: block until this request completes.

        A failed request raises its exception — including when the
        failure already landed before ``wait`` was called (the yield
        path throws; the already-processed path must match it).
        """
        if not self.processed:
            yield self
        if self._ok is False:
            raise self.value
        return self.value

    @property
    def complete(self) -> bool:
        return self.triggered


class SendRequest(Request):
    """Handle for a send in progress."""

    def __init__(self, sim, dst: int, tag: int, context: int,
                 nbytes: int, data: Any = None) -> None:
        super().__init__(sim, "send")
        self.dst = dst
        self.tag = tag
        self.context = context
        self.nbytes = nbytes
        self.data = data
        #: Optional explicit source route (egress ports per hop).
        self.route = None
        #: MPI_Ssend semantics: complete only once matched (forces the
        #: rendezvous protocol regardless of size).
        self.synchronous = False
        #: Derived-datatype packing bytes (0 = contiguous buffer).
        self.pack_bytes = 0


class RecvRequest(Request):
    """Handle for a receive in progress.

    Completion value is the request itself; inspect ``received_*``.
    """

    def __init__(self, sim, src: int, tag: int, context: int,
                 nbytes: int) -> None:
        super().__init__(sim, "recv")
        self.src = src
        self.tag = tag
        self.context = context
        self.nbytes = nbytes
        self.received_bytes = 0
        self.received_data: Any = None
        self.received_src: Optional[int] = None
        self.received_tag: Optional[int] = None
        #: Set once an advert has been issued for this request.
        self.adverted = False
        #: Pinned landing region while a rendezvous is outstanding.
        self.rma_region = None
        #: Derived-datatype unpacking bytes (0 = contiguous buffer).
        self.unpack_bytes = 0
