"""The common messaging core MPI and QMP share (paper section 5).

Both of the paper's message-passing systems are thin APIs over one
core, and this package is that core:

* per-neighbor **channels** over VIA connections, each with pre-posted
  eager buffers (:mod:`repro.core.channel`);
* **token flow control** — M-VIA has none, so the core tracks the
  receive buffers available at the peer, returns credits by piggyback
  or explicit update, and blocks senders when out of tokens;
* two **protocols** switched at 16 KB: an *eager* path (copy into
  pre-registered bounce buffers, one extra copy each side) and a
  *rendezvous RMA* path (zero-copy remote write with sender-side
  matching [FMPL-style]: receivers advertise posted buffers to the
  expected sender, so a large send that finds an advert starts its RMA
  immediately);
* receiver-side **matching** with MPI semantics — (source, tag,
  context) with wildcards, FIFO per key, unexpected-message queue
  (:mod:`repro.core.matching`);
* a per-node **progress engine** draining VIA completions
  (:mod:`repro.core.engine`).
"""

from repro.core.message import (
    ANY_SOURCE,
    ANY_TAG,
    CoreParams,
    Envelope,
    MsgType,
    RecvRequest,
    Request,
    SendRequest,
)
from repro.core.matching import MatchQueue, match
from repro.core.channel import Channel
from repro.core.engine import MessagingEngine

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CoreParams",
    "Envelope",
    "MsgType",
    "Request",
    "SendRequest",
    "RecvRequest",
    "MatchQueue",
    "match",
    "Channel",
    "MessagingEngine",
]
