"""The per-node progress engine: protocols, matching, rendezvous.

One :class:`MessagingEngine` runs on each node.  It owns the channels,
the posted-receive and unexpected-message queues, and a progress
process that drains the node's VIA receive completion queue.  MPI
(:mod:`repro.mpi`) and QMP (:mod:`repro.qmp`) are thin facades over
this engine — the paper's design exactly ("both systems are derived
from a common core").

Protocol summary (paper section 5.1):

* eager (< 16 KB): sender copies into a bounce buffer, VIA send; the
  send request completes as soon as the copy is staged (user buffer
  reusable).  Receiver matches at the library level and pays one more
  copy bounce -> user buffer.
* rendezvous RMA (>= 16 KB): receiver advertises its (registered)
  buffer to the expected sender when it posts the receive — the
  *sender-side matching* technique [Tatebe et al.] — so a send that
  finds an advert issues the zero-copy remote write immediately.  A
  send with no advert yet sends a small RTS; the receiver answers with
  the advert once a matching receive is posted (this path also covers
  MPI_ANY_SOURCE receives).  The RMA write carries remote completion
  (notify), which consumes one pre-posted descriptor, so it also costs
  one data token.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.channel import Channel
from repro.core.matching import MatchQueue, match
from repro.core.message import (
    ANY_SOURCE,
    ANY_TAG,
    CoreParams,
    Envelope,
    MsgType,
    RecvRequest,
    SendRequest,
)
from repro.errors import (
    MessagingError,
    MpiError,
    MpiProcFailed,
    MpiRevoked,
    ViaError,
)
from repro.hw.node import PRIO_USER
from repro.obs.recorder import API_CALL as _API_CALL
from repro.sim import Event
from repro.via.descriptors import (
    RecvDescriptor,
    RmaWriteDescriptor,
    SendDescriptor,
)
from repro.via.device import ViaDevice


class ConnectionManager:
    """Out-of-band channel coordination (the real system bootstrapped
    connections over a TCP service at MPI_Init time)."""

    def __init__(self) -> None:
        self.engines: Dict[int, "MessagingEngine"] = {}
        #: Revoked communicator contexts (ULFM MPI_Comm_revoke),
        #: context -> epoch at revocation.  Revocation rides the same
        #: out-of-band control plane as the bootstrap notifications, so
        #: it reaches every engine even when the fabric is broken.
        self.revoked: Dict[int, int] = {}
        #: Fault-tolerant agreement deposits (ULFM MPI_Comm_agree):
        #: (context, seq) -> (flag, survivors).  Written exactly once
        #: per agreement, by the first tree root to decide; every
        #: participant that completes returns the deposited value, so
        #: the result is uniform no matter how many roots die mid-way.
        self.agreements: Dict = {}

    def register(self, engine: "MessagingEngine") -> None:
        self.engines[engine.rank] = engine

    def notify(self, from_rank: int, to_rank: int) -> None:
        """Ask ``to_rank``'s engine to open its side of a channel."""
        peer = self.engines.get(to_rank)
        if peer is None:
            raise MessagingError(f"no engine registered for rank {to_rank}")
        peer.open_channel_from(from_rank)

    def revoke(self, context: int, epoch: int) -> None:
        """Propagate a communicator revocation to every engine."""
        if context in self.revoked:
            return
        self.revoked[context] = epoch
        for engine in self.engines.values():
            engine.revoke_context(context)

    def deposit_agreement(self, key, flag: bool, survivors) -> tuple:
        """Record (first-writer-wins) one agreement's decision.

        Returns the authoritative ``(flag, survivors)``.  On a fresh
        deposit every engine's pending traffic for this agreement is
        kicked: the decision is final, so participants still blocked in
        the message protocol re-check the registry instead of waiting
        for peers that may never send.
        """
        existing = self.agreements.get(key)
        if existing is not None:
            return existing
        decision = (flag, tuple(survivors))
        self.agreements[key] = decision
        context, seq = key
        ft_context = -2 * context - 2
        for engine in self.engines.values():
            engine.kick_agreement(ft_context, key)
        return decision


class MessagingEngine:
    """The messaging core instance of one node."""

    def __init__(self, device: ViaDevice, manager: ConnectionManager,
                 params: Optional[CoreParams] = None) -> None:
        self.device = device
        self.sim = device.sim
        self.rank = device.rank
        self.manager = manager
        self.params = params or CoreParams()
        self.ptag = device.create_protection_tag()
        self.recv_cq = device.create_cq(name=f"core-rcq[{self.rank}]")
        #: peer rank -> Channel, or a pending Event during handshake.
        self.channels: Dict[int, Union[Channel, Event]] = {}
        self._vi_to_channel: Dict[int, Channel] = {}
        self.posted = MatchQueue()
        self.unexpected = MatchQueue()
        #: Blocked MPI_Probe callers, woken on unexpected arrivals.
        self._probe_waiters: list = []
        #: recv_id -> RecvRequest with an outstanding advert.
        self.rendezvous_recvs: Dict[int, RecvRequest] = {}
        #: Orphaned RMA payloads (advert consumed by a stale receiver
        #: state); they re-enter matching as unexpected messages.
        self.stats = {"sends": 0, "recvs": 0, "eager_sent": 0,
                      "rma_sent": 0, "rts_sent": 0, "adverts_sent": 0,
                      "unexpected": 0, "orphaned_rma": 0,
                      "failed_requests": 0, "errored_completions": 0}
        #: Diagnostics back-reference (hang reports walk
        #: device -> engine -> pending_requests()).
        device.engine = self
        #: Fault-tolerance mode: on only when the cluster carries node
        #: faults.  Off, the engine does zero extra work per request
        #: and produces bit-identical event traces.
        self._ft = bool(getattr(device._fabric_health, "has_node_faults",
                                False))
        #: World ranks known dead (mirrors the kernel agent's view; the
        #: agent's death callback keeps it current).
        self._dead_peers: set = set()
        #: In-flight requests, tracked only in FT mode so a death
        #: notice can fail exactly the doomed ones.
        self._pending: set = set()
        #: Communicator contexts revoked via the connection manager.
        self.revoked: set = set()
        manager.register(self)
        if self._ft and getattr(device, "agent", None) is not None:
            device.agent.death_callbacks.append(self._on_peer_dead)
        self.sim.spawn(self._progress(), name=f"engine[{self.rank}]")

    # ------------------------------------------------------------------
    # Channel management.
    # ------------------------------------------------------------------
    def ensure_channel(self, peer: int):
        """Process: the channel to ``peer``, creating it if needed."""
        if peer == self.rank:
            raise MessagingError(f"rank {self.rank}: self-channel")
        if self._ft and peer in self._dead_peers:
            raise MpiProcFailed(
                f"rank {self.rank}: channel to failed rank {peer}",
                dead_rank=peer,
            )
        existing = self.channels.get(peer)
        if isinstance(existing, Channel):
            return existing
        if existing is not None:
            yield existing
            return self.channels[peer]
        pending = self.sim.event(name=f"chan{self.rank}-{peer}")
        self.channels[peer] = pending
        self.manager.notify(self.rank, peer)
        channel = Channel(self, peer)
        self._vi_to_channel[channel.data_vi.vi_id] = channel
        self._vi_to_channel[channel.ctrl_vi.vi_id] = channel
        try:
            yield from channel.connect(active=self.rank < peer)
        except (ViaError, MessagingError, MpiError) as exc:
            # Handshake failed (peer dead, fabric partitioned).  The
            # failed event stays as a tombstone: later callers yield it
            # and raise instead of re-dialing a dead peer.
            if not pending.triggered:
                pending.fail(exc)
            raise
        self.channels[peer] = channel
        if not pending.triggered:
            pending.succeed()
        return channel

    def open_channel_from(self, peer: int) -> None:
        """Manager callback: open our side of a peer-initiated channel."""
        if peer not in self.channels:
            self.sim.spawn(self._accept_channel(peer),
                           name=f"accept[{self.rank}<-{peer}]")

    def _accept_channel(self, peer: int):
        """Process shell: accept with no waiter to throw into.

        The peer can die between dialing us and our ACCEPT going out;
        the tombstoned channel event already records the failure for
        anyone who later wants this peer, so the accept itself just
        stops.
        """
        try:
            yield from self.ensure_channel(peer)
        except (ViaError, MessagingError, MpiError):
            if not self._ft:
                raise

    # ------------------------------------------------------------------
    # Public nonblocking API (used by the MPI and QMP facades).
    # ------------------------------------------------------------------
    def isend(self, dst: int, tag: int, context: int, nbytes: int,
              data=None, route=None, synchronous: bool = False,
              pack_bytes: int = 0) -> SendRequest:
        """Start a send; returns immediately with the request handle.

        ``route`` is an explicit source route (egress port per hop,
        first hop included) that the kernel switch follows instead of
        SDF — the OPT scatter's region-constrained paths use it.
        ``synchronous`` gives MPI_Ssend semantics: the request only
        completes once the receiver has matched (always rendezvous).
        """
        request = SendRequest(self.sim, dst, tag, context, nbytes, data)
        request.route = tuple(route) if route else None
        request.synchronous = synchronous
        request.pack_bytes = pack_bytes
        rec = self.sim.recorder
        if rec is not None:
            # MPI/QMP entry point: the message is born here; the trace
            # id rides the envelope, descriptor, and every fragment.
            request.trace = rec.start_trace(
                f"msg[{self.rank}->{dst}] tag{tag} {nbytes}B",
                f"n{self.rank}", self.sim.now,
            )
        self.stats["sends"] += 1
        if self._ft:
            self._track(request)
        self.sim.spawn(self._send_process(request),
                       name=f"send[{self.rank}->{dst}]")
        return request

    def iprobe(self, src: int, tag: int, context: int):
        """MPI_Iprobe: the first matching unexpected envelope or None.

        Only messages that have *arrived* are visible, matching MPI
        semantics (a sent-but-in-flight message is not probeable).
        """
        for entry, esrc, etag, ectx in self.unexpected:
            envelope = entry[0]
            if match(src, tag, context, esrc, etag, ectx):
                return envelope
        return None

    def probe(self, src: int, tag: int, context: int):
        """Process: MPI_Probe — block until a matching message is
        queued; returns its envelope without consuming it."""
        while True:
            envelope = self.iprobe(src, tag, context)
            if envelope is not None:
                return envelope
            wake = self.sim.event(name=f"probe[{self.rank}]")
            self._probe_waiters.append(wake)
            yield wake

    def irecv(self, src: int, tag: int, context: int, nbytes: int,
              unpack_bytes: int = 0) -> RecvRequest:
        """Post a receive; returns immediately with the request handle."""
        request = RecvRequest(self.sim, src, tag, context, nbytes)
        request.unpack_bytes = unpack_bytes
        self.stats["recvs"] += 1
        if self._ft:
            self._track(request)
        self.sim.spawn(self._recv_process(request),
                       name=f"recv[{self.rank}<-{src}]")
        return request

    # ------------------------------------------------------------------
    # Send side.
    # ------------------------------------------------------------------
    def _send_process(self, request: SendRequest):
        """Process shell: surface failures on the request.

        The body runs as a spawned process with no waiter, so an
        unhandled raise would take down the whole simulation; a VIA or
        channel failure (peer death, partitioned fabric) instead fails
        the request, which throws into whoever waits on it.
        """
        try:
            yield from self._send_body(request)
        except (ViaError, MessagingError, MpiError) as exc:
            self._fail_request(request, exc)

    def _send_body(self, request: SendRequest):
        channel = yield from self.ensure_channel(request.dst)
        # Non-contiguous user buffers are packed into contiguous
        # staging before transmission (derived-datatype cost).  The
        # eager path's bounce copy subsumes packing, so only the
        # rendezvous path pays it separately.
        if (request.nbytes < self.params.eager_threshold
                and not request.synchronous):
            lock = channel.send_lock.request()
            yield lock
            try:
                yield from self._send_eager(channel, request)
            finally:
                channel.send_lock.release(lock)
        else:
            yield from self._send_rendezvous(channel, request)

    def _send_eager(self, channel: Channel, request: SendRequest):
        self.stats["eager_sent"] += 1
        yield from channel.take_data_token()
        # Copy into the pre-registered bounce buffer.
        if request.nbytes:
            yield from self.device.host.copy(request.nbytes, PRIO_USER)
        envelope = Envelope(
            MsgType.EAGER, self.rank, request.tag, request.context,
            request.nbytes, data=request.data, send_id=request.req_id,
        )
        channel.piggyback(envelope)
        descriptor = SendDescriptor(
            channel.bounce_region, 0,
            min(request.nbytes + Envelope.HEADER_BYTES,
                channel.bounce_region.nbytes),
            payload=envelope, on_complete=_noop,
            route=request.route,
        )
        if self.sim.recorder is not None:
            ctx = getattr(request, "trace", None)
            envelope.trace = ctx
            descriptor.trace = ctx
        yield from channel.data_vi.post_send(descriptor)
        # Eager semantics: user buffer already staged -> send complete.
        # (Guarded: a death notice may have failed the request while
        # this process was blocked on tokens or the host bus.)
        if not request.triggered:
            request.succeed(request)

    def _send_rendezvous(self, channel: Channel, request: SendRequest):
        self.stats["rma_sent"] += 1
        if request.pack_bytes:
            yield from self.device.host.copy(request.pack_bytes,
                                             PRIO_USER)
        lock = channel.send_lock.request()
        yield lock
        try:
            advert = channel.advert_queue.pop_first_match(
                0, request.tag, request.context
            )
            if advert is None:
                channel.pending_sends.append(request, 0, request.tag,
                                             request.context)
                self.stats["rts_sent"] += 1
                # The RTS travels IN-BAND on the data VI so it reaches
                # the receiver's matching logic in channel-FIFO order
                # with eager traffic — this is what keeps mixed
                # small/large sends on one (src, tag) matching in MPI
                # send order.
                yield from channel.take_data_token()
                envelope = Envelope(
                    MsgType.RTS, self.rank, request.tag,
                    request.context, request.nbytes,
                    send_id=request.req_id,
                )
                channel.piggyback(envelope)
                descriptor = SendDescriptor(
                    channel.bounce_region, 0, Envelope.HEADER_BYTES,
                    payload=envelope, on_complete=_noop,
                )
                if self.sim.recorder is not None:
                    ctx = getattr(request, "trace", None)
                    envelope.trace = ctx
                    descriptor.trace = ctx
                yield from channel.data_vi.post_send(descriptor)
                # The advert handler performs the RMA on arrival.
                return
        finally:
            channel.send_lock.release(lock)
        yield from self._rma_write(channel, request, advert)

    def _rma_write(self, channel: Channel, request: SendRequest,
                   advert: Envelope):
        """Process shell for :meth:`_rma_body` (spawned from the
        progress loop, so failures must land on the request)."""
        try:
            yield from self._rma_body(channel, request, advert)
        except (ViaError, MessagingError, MpiError) as exc:
            self._fail_request(request, exc)

    def _rma_body(self, channel: Channel, request: SendRequest,
                  advert: Envelope):
        """Process: the zero-copy remote write for a matched pair.

        Takes the channel send lock: the RMA fragments must not
        interleave with another message's fragments on the data VI.
        """
        if request.nbytes > advert.nbytes:
            if not request.triggered:
                request.fail(MessagingError(
                    f"send of {request.nbytes} bytes into adverted "
                    f"buffer of {advert.nbytes}"
                ))
            return
        lock = channel.send_lock.request()
        yield lock
        try:
            yield from channel.take_data_token()  # the notify uses one
            envelope = Envelope(
                MsgType.RMA_DATA, self.rank, request.tag,
                request.context, request.nbytes, data=request.data,
                send_id=request.req_id, recv_id=advert.recv_id,
            )
            channel.piggyback(envelope)
            region = self.device.register_memory_now(
                max(request.nbytes, 1), self.ptag
            )

            def complete(_descriptor, region=region, request=request):
                # Registration-cache style: release the pin once the
                # buffer has been DMA'd out.
                self.device.memory.deregister(region)
                if not request.triggered:
                    request.succeed(request)

            descriptor = RmaWriteDescriptor(
                region, 0, request.nbytes,
                payload=envelope, remote_addr=advert.remote_addr,
                notify=True,
                on_complete=complete,
                route=request.route,
            )
            if self.sim.recorder is not None:
                ctx = getattr(request, "trace", None)
                envelope.trace = ctx
                descriptor.trace = ctx
            yield from channel.data_vi.post_rma_write(descriptor)
        finally:
            channel.send_lock.release(lock)

    def _send_ctrl(self, channel: Channel, envelope: Envelope,
                   is_token_msg: bool = False):
        yield from channel.take_ctrl_token(for_token_msg=is_token_msg)
        channel.piggyback(envelope)
        channel.stats["ctrl"] += 1
        descriptor = SendDescriptor(
            channel.bounce_region, 0, Envelope.HEADER_BYTES,
            payload=envelope, on_complete=_noop,
        )
        yield from channel.ctrl_vi.post_send(descriptor)

    # ------------------------------------------------------------------
    # Receive side.
    # ------------------------------------------------------------------
    def _recv_process(self, request: RecvRequest):
        """Process shell: surface failures on the request (see
        :meth:`_send_process`)."""
        try:
            yield from self._recv_body(request)
        except (ViaError, MessagingError, MpiError) as exc:
            self._fail_request(request, exc)

    def _recv_body(self, request: RecvRequest):
        yield from self.device.host.cpu_work(self.params.match_cost,
                                             PRIO_USER)
        entry = self.unexpected.pop_first_match_by_probe(
            request.src, request.tag, request.context
        )
        if entry is not None:
            envelope = entry[0]
            if envelope.msg_type is MsgType.RTS:
                # A large send is waiting for a buffer: answer it.
                yield from self._bind_to_rts(request, entry)
            else:
                yield from self._deliver_unexpected(request, entry)
            return
        self.posted.append(request, request.src, request.tag,
                           request.context)
        if (self.params.proactive_adverts
                and request.nbytes >= self.params.eager_threshold
                and request.src != ANY_SOURCE):
            # Sender-side matching: advertise the buffer to the
            # expected sender (binds this receive to a rendezvous).
            self.posted.remove(request)
            channel = yield from self.ensure_channel(request.src)
            yield from self._advertise(channel, request)

    def _bind_to_rts(self, request: RecvRequest, entry):
        envelope, _descriptor, channel = entry
        if envelope.nbytes > request.nbytes:
            if not request.triggered:
                request.fail(MessagingError(
                    f"RTS for {envelope.nbytes} bytes, receive of "
                    f"{request.nbytes}"
                ))
            return
        yield from self._advertise(channel, request)

    def _deliver_unexpected(self, request: RecvRequest, entry):
        envelope, descriptor, channel = entry
        if envelope.nbytes > request.nbytes:
            if not request.triggered:
                request.fail(MessagingError(
                    f"unexpected message of {envelope.nbytes} bytes "
                    f"for receive of {request.nbytes}"
                ))
            return
        if envelope.nbytes:
            yield from self.device.host.copy(envelope.nbytes, PRIO_USER)
        self._complete_recv(request, envelope)
        if descriptor is not None:
            self._repost(channel, descriptor)
            self._maybe_return_tokens(channel)

    def _advertise(self, channel: Channel, request: RecvRequest):
        request.adverted = True
        region = self.device.register_memory_now(
            max(request.nbytes, 1), self.ptag, rma_write=True
        )
        request.rma_region = region
        self.rendezvous_recvs[request.req_id] = request
        channel.outstanding_adverts.append(request, 0, request.tag,
                                           request.context)
        self.stats["adverts_sent"] += 1
        yield from self._send_ctrl(channel, Envelope(
            MsgType.ADVERT, self.rank, request.tag, request.context,
            request.nbytes, recv_id=request.req_id,
            remote_addr=region.addr,
        ))

    def _advertise_safe(self, channel: Channel, request: RecvRequest):
        """Process shell for adverts spawned from the progress loop."""
        try:
            yield from self._advertise(channel, request)
        except (ViaError, MessagingError, MpiError) as exc:
            self._fail_request(request, exc)

    def _complete_recv(self, request: RecvRequest,
                       envelope: Envelope) -> None:
        request.received_bytes = envelope.nbytes
        request.received_data = envelope.data
        request.received_src = envelope.src_rank
        request.received_tag = envelope.tag
        self.rendezvous_recvs.pop(request.req_id, None)
        region = getattr(request, "rma_region", None)
        if region is not None:
            # Registration-cache style: unpin the landing buffer.
            self.device.memory.deregister(region)
            request.rma_region = None
        if not request.triggered:
            request.succeed(request)

    # ------------------------------------------------------------------
    # Progress: drain VIA receive completions.
    # ------------------------------------------------------------------
    def _progress(self):
        while True:
            vi, _queue, descriptor = yield from self.recv_cq.wait()
            if descriptor.error is not None:
                # Drained with DescriptorStatus.ERROR (the peer was
                # declared dead): no envelope arrived and the channel
                # is torn down — nothing to credit or handle.
                self.stats["errored_completions"] += 1
                continue
            channel = self._vi_to_channel.get(vi.vi_id)
            if channel is None:
                raise MessagingError(
                    f"rank {self.rank}: completion on unknown VI "
                    f"{vi.vi_id}"
                )
            envelope: Envelope = descriptor.received_payload
            if envelope is None:
                raise MessagingError(
                    f"rank {self.rank}: completion without envelope"
                )
            channel.credit(envelope.data_tokens, envelope.ctrl_tokens)
            handler = {
                MsgType.EAGER: self._handle_eager,
                MsgType.RMA_DATA: self._handle_rma_data,
                MsgType.RTS: self._handle_rts,
                MsgType.ADVERT: self._handle_advert,
                MsgType.TOKENS: self._handle_tokens,
            }[envelope.msg_type]
            try:
                yield from handler(channel, envelope, descriptor)
            except (ViaError, MessagingError) as exc:
                if not self._ft:
                    raise
                # Late traffic on a torn-down channel: frames that were
                # in flight when the peer died complete here, but the
                # ERROR-state VI refuses reposts.  Drop them — the
                # requests they fed were failed by the death notice.
                self.stats["errored_completions"] += 1
                del exc
            self._maybe_return_tokens(channel)

    def _handle_eager(self, channel: Channel, envelope: Envelope,
                      descriptor: RecvDescriptor):
        channel.stats["eager"] += 1
        yield from self.device.host.cpu_work(self.params.match_cost,
                                             PRIO_USER)
        # Rendezvous-bound receives (adverted) only complete via their
        # RMA; eager traffic matches the next unbound receive.
        request = self.posted.pop_first_match_where(
            envelope.src_rank, envelope.tag, envelope.context,
            lambda req: not req.adverted,
        )
        if request is None:
            # Buffer stays held (token not returned) until matched.
            self._queue_unexpected(envelope, descriptor, channel)
            return
        if envelope.nbytes > request.nbytes:
            if not request.triggered:
                request.fail(MessagingError(
                    f"message of {envelope.nbytes} bytes for receive "
                    f"of {request.nbytes}"
                ))
            return
        rec = self.sim.recorder
        if rec is not None:
            t0 = self.sim.now
        yield from channel.data_vi.consume_recv_cost()
        if rec is not None and envelope.trace is not None:
            rec.span(envelope.trace, _API_CALL, "consume_recv",
                     f"n{self.rank}", t0, self.sim.now)
        if envelope.nbytes:
            yield from self.device.host.copy(envelope.nbytes, PRIO_USER)
        self._complete_recv(request, envelope)
        self._repost(channel, descriptor)

    def _handle_rma_data(self, channel: Channel, envelope: Envelope,
                         descriptor: RecvDescriptor):
        channel.stats["rma"] += 1
        request = self.rendezvous_recvs.pop(envelope.recv_id, None)
        if request is not None:
            channel.outstanding_adverts.remove(request)
        if request is None or request.triggered:
            # Stale advert: the receive completed some other way.  The
            # payload re-enters matching as an unexpected message (no
            # buffer held; a later match pays the copy).
            self.stats["orphaned_rma"] += 1
            self._queue_unexpected(envelope, None, channel)
            self._repost(channel, descriptor)
            return
        self.posted.remove(request)
        rec = self.sim.recorder
        if rec is not None:
            t0 = self.sim.now
        yield from channel.data_vi.consume_recv_cost()
        if rec is not None and envelope.trace is not None:
            rec.span(envelope.trace, _API_CALL, "consume_recv",
                     f"n{self.rank}", t0, self.sim.now)
        unpack = getattr(request, "unpack_bytes", 0)
        if unpack:
            # Derived-datatype receive: scatter the contiguous landing
            # buffer back into the strided user layout.
            yield from self.device.host.copy(unpack, PRIO_USER)
        self._complete_recv(request, envelope)
        self._repost(channel, descriptor)

    def _handle_rts(self, channel: Channel, envelope: Envelope,
                    descriptor: RecvDescriptor):
        """An in-band request-to-send: match like an eager arrival."""
        yield from self.device.host.cpu_work(self.params.ctrl_cost,
                                             PRIO_USER)
        # RTS rides the data VI, so it recycles a *data* descriptor.
        self._repost(channel, descriptor)
        # Did this RTS cross an advert already in flight to its sender?
        # FIFO pairing on both sides makes absorbing it here safe.
        absorbed = channel.outstanding_adverts.pop_first_match(
            0, envelope.tag, envelope.context
        )
        if absorbed is not None:
            return
        request = self.posted.pop_first_match_where(
            envelope.src_rank, envelope.tag, envelope.context,
            lambda req: not req.adverted,
        )
        if request is not None:
            if envelope.nbytes > request.nbytes:
                if not request.triggered:
                    request.fail(MessagingError(
                        f"RTS for {envelope.nbytes} bytes, receive of "
                        f"{request.nbytes}"
                    ))
                return
            # Spawned: an advert may block on control tokens, and the
            # progress loop must never block on flow control.
            self.sim.spawn(self._advertise_safe(channel, request),
                           name=f"advert[{self.rank}]")
            return
        # No receive yet: the RTS queues exactly like an unexpected
        # eager message, preserving unified arrival order.
        self._queue_unexpected(envelope, None, channel)

    def _handle_advert(self, channel: Channel, envelope: Envelope,
                       descriptor: RecvDescriptor):
        yield from self.device.host.cpu_work(self.params.ctrl_cost,
                                             PRIO_USER)
        self._repost(channel, descriptor, ctrl=True)
        request = channel.pending_sends.pop_first_match_by_probe(
            0, envelope.tag, envelope.context
        )
        if request is not None:
            # Spawned: the RMA needs a data token and must not stall
            # the progress loop while waiting for one.
            self.sim.spawn(self._rma_write(channel, request, envelope),
                           name=f"rma[{self.rank}]")
        else:
            channel.advert_queue.append(envelope, 0, envelope.tag,
                                        envelope.context)

    def _handle_tokens(self, channel: Channel, envelope: Envelope,
                       descriptor: RecvDescriptor):
        channel.stats["token_msgs"] += 1
        yield from self.device.host.cpu_work(self.params.ctrl_cost,
                                             PRIO_USER)
        self._repost(channel, descriptor, ctrl=True)

    def _queue_unexpected(self, envelope: Envelope, descriptor,
                          channel: Channel) -> None:
        self.stats["unexpected"] += 1
        self.unexpected.append(
            (envelope, descriptor, channel),
            envelope.src_rank, envelope.tag, envelope.context,
        )
        waiters, self._probe_waiters = self._probe_waiters, []
        for wake in waiters:
            wake.succeed()

    # ------------------------------------------------------------------
    # Buffer recycling and credit return.
    # ------------------------------------------------------------------
    def _repost(self, channel: Channel, descriptor: RecvDescriptor,
                ctrl: bool = False) -> None:
        vi = channel.ctrl_vi if ctrl else channel.data_vi
        vi.post_recv(RecvDescriptor(descriptor.region, descriptor.offset,
                                    descriptor.nbytes))
        if ctrl:
            channel.owe_ctrl()
        else:
            channel.owe_data()

    def _maybe_return_tokens(self, channel: Channel) -> None:
        if channel.needs_explicit_return() and not channel.token_msg_pending:
            # Spawned, and limited to one outstanding TOKENS message per
            # channel: the progress loop must never block, and a flood
            # of explicit returns would waste the reserve credits.
            channel.token_msg_pending = True
            self.sim.spawn(self._token_return(channel),
                           name=f"tokens[{self.rank}]")

    def _token_return(self, channel: Channel):
        try:
            yield from self._send_ctrl(
                channel,
                Envelope(MsgType.TOKENS, self.rank, 0, 0, 0),
                is_token_msg=True,
            )
        except (ViaError, MessagingError):
            # Credit return to a dead peer: nothing left to flow-control.
            if not self._ft:
                raise
        finally:
            channel.token_msg_pending = False

    # ------------------------------------------------------------------
    # Fault tolerance (active only with node faults configured).
    # ------------------------------------------------------------------
    def _track(self, request) -> None:
        self._pending.add(request)
        request.add_callback(lambda _e: self._pending.discard(request))

    def pending_requests(self) -> list:
        """Untriggered requests, oldest first (hang diagnostics)."""
        return sorted((r for r in self._pending if not r.triggered),
                      key=lambda r: r.req_id)

    def _fail_request(self, request, error: Exception) -> None:
        """Fail one request and scrub it from every matching surface.

        The scrub matters: without it a late-arriving message could
        match the dead entry and double-complete it, or a stale advert
        could draw an RMA into a freed buffer.
        """
        if request.triggered:
            return
        self.stats["failed_requests"] += 1
        if isinstance(request, RecvRequest):
            self.posted.remove(request)
            self.rendezvous_recvs.pop(request.req_id, None)
            region = getattr(request, "rma_region", None)
            if region is not None:
                self.device.memory.deregister(region)
                request.rma_region = None
            for channel in self.channels.values():
                if isinstance(channel, Channel):
                    channel.outstanding_adverts.remove(request)
        else:
            for channel in self.channels.values():
                if isinstance(channel, Channel):
                    channel.pending_sends.remove(request)
        self.sim.progress += 1
        request.fail(error)

    def _on_peer_dead(self, dead_rank: int) -> None:
        """Death-notice hook (registered with the kernel agent).

        Fails every pending request the death dooms: sends to the dead
        rank; receives from it (and from ANY_SOURCE — ULFM fails
        wildcard receives on any process failure, since the dead rank
        can no longer be ruled out as the intended sender); all
        fault-tolerance agreement traffic (negative contexts are
        blanket-failed so :meth:`Communicator.agree` retries with the
        new alive-set instead of waiting on a reshuffled tree); and,
        when the dead rank is this node, everything.
        """
        if dead_rank in self._dead_peers:
            return
        self._dead_peers.add(dead_rank)
        own = dead_rank == self.rank
        error = MpiProcFailed(
            f"rank {self.rank}: "
            + ("node crashed" if own else f"peer rank {dead_rank} failed"),
            dead_rank=dead_rank,
        )
        for request in self.pending_requests():
            doomed = own or request.context < 0
            if not doomed:
                # Collective traffic is doomed by *any* death in the
                # communicator's group, not just a dead direct partner:
                # a missing relay stalls the whole dissemination chain,
                # so ranks blocked on live peers would otherwise wait
                # forever (ULFM: collectives raise MPI_ERR_PROC_FAILED
                # at every rank that cannot complete).
                members = getattr(request, "ft_members", None)
                doomed = members is not None and dead_rank in members
            if not doomed:
                if isinstance(request, RecvRequest):
                    doomed = request.src in (dead_rank, ANY_SOURCE)
                else:
                    doomed = request.dst == dead_rank
            if doomed:
                self._fail_request(request, error)
        # A handshake aimed at the dead peer can never complete; wake
        # its waiters (the connect process guards its own succeed).
        pending = self.channels.get(dead_rank)
        if (pending is not None and not isinstance(pending, Channel)
                and not pending.triggered):
            pending.fail(ViaError(
                f"rank {self.rank}: connect to dead rank {dead_rank}"
            ))

    def revoke_context(self, context: int) -> None:
        """ULFM revocation arrived: poison the context's wire traffic.

        Pending requests on the communicator's point-to-point and
        collective contexts fail with :class:`MpiRevoked`; new
        operations are refused at the communicator layer.  Agreement
        contexts (negative) are exempt — ULFM requires
        ``MPI_Comm_agree`` to work on a revoked communicator.
        """
        if context in self.revoked:
            return
        self.revoked.add(context)
        wire = (2 * context, 2 * context + 1)
        error = MpiRevoked(
            f"rank {self.rank}: communicator context {context} revoked"
        )
        for request in self.pending_requests():
            if request.context in wire:
                self._fail_request(request, error)

    def kick_agreement(self, ft_context: int, key) -> None:
        """An agreement was decided: release its blocked participants.

        Participants still inside the message protocol re-enter their
        retry loop (the thrown failure is caught there), find the
        deposit, and return the decided value.
        """
        error = MpiProcFailed(
            f"rank {self.rank}: agreement {key} decided out-of-band"
        )
        for request in self.pending_requests():
            if request.context == ft_context:
                self._fail_request(request, error)


def _noop(_descriptor) -> None:
    """Discard a send completion (the request completed earlier)."""
