"""Receiver-side message matching with MPI semantics.

Matching key is (source, tag, context); receives may wildcard source
and/or tag.  Order rules follow MPI 1.1 section 3.5: messages between a
pair of processes are non-overtaking, and posted receives match in
posting order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.message import ANY_SOURCE, ANY_TAG


def match(posted_src: int, posted_tag: int, posted_context: int,
          src: int, tag: int, context: int) -> bool:
    """Does a posted receive (with wildcards) match an incoming
    message's actual (src, tag, context)?"""
    if posted_context != context:
        return False
    if posted_src != ANY_SOURCE and posted_src != src:
        return False
    if posted_tag != ANY_TAG and posted_tag != tag:
        return False
    return True


class MatchQueue:
    """An ordered queue of entries matched by (src, tag, context).

    Used both for posted receives (entries = RecvRequest, probes =
    incoming envelopes) and for the unexpected-message queue (entries =
    envelopes, probes = freshly posted receives).  Entries preserve
    arrival order; :meth:`pop_first_match` scans FIFO.
    """

    def __init__(self) -> None:
        self._entries: Deque = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def append(self, entry, src: int, tag: int, context: int) -> None:
        """Add ``entry`` with its matching key (may include wildcards)."""
        self._entries.append((entry, src, tag, context))

    def pop_first_match(self, src: int, tag: int, context: int):
        """Remove and return the first entry whose *stored* key matches
        the probe (stored keys may hold wildcards); None if no match."""
        for index, (entry, esrc, etag, ectx) in enumerate(self._entries):
            if match(esrc, etag, ectx, src, tag, context):
                del self._entries[index]
                return entry
        return None

    def pop_first_match_by_probe(self, probe_src: int, probe_tag: int,
                                 probe_context: int):
        """Remove and return the first entry whose stored *concrete* key
        is matched by a probe that may hold wildcards (the unexpected-
        queue direction)."""
        for index, (entry, esrc, etag, ectx) in enumerate(self._entries):
            if match(probe_src, probe_tag, probe_context, esrc, etag, ectx):
                del self._entries[index]
                return entry
        return None

    def pop_first_match_where(self, src: int, tag: int, context: int,
                              predicate):
        """Like :meth:`pop_first_match` but the entry must also satisfy
        ``predicate(entry)`` (e.g. skip rendezvous-bound receives)."""
        for index, (entry, esrc, etag, ectx) in enumerate(self._entries):
            if (match(esrc, etag, ectx, src, tag, context)
                    and predicate(entry)):
                del self._entries[index]
                return entry
        return None

    def peek_first_match(self, src: int, tag: int, context: int):
        for entry, esrc, etag, ectx in self._entries:
            if match(esrc, etag, ectx, src, tag, context):
                return entry
        return None

    def remove(self, target) -> bool:
        """Remove a specific entry (by identity, falling back to
        equality); True if it was present."""
        for index, (entry, *_key) in enumerate(self._entries):
            if entry is target or entry == target:
                del self._entries[index]
                return True
        return False

    def entries(self) -> List:
        return [entry for entry, *_k in self._entries]
