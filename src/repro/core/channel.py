"""A messaging channel: the core's view of one VIA connection pair.

Each channel owns two VIA VIs to its peer — a *data* VI carrying eager
payloads and RMA traffic, and a *control* VI carrying adverts, RTS and
token updates — plus the flow-control state for both:

* ``data_tokens``: how many pre-posted eager buffers remain at the peer
  (one consumed per eager message or RMA-notify);
* ``ctrl_tokens``: same for the peer's control-message buffers;
* ``owed_*``: buffers this side has recycled and must credit back,
  returned by piggyback on any outgoing message or by an explicit
  TOKENS control message once enough accumulate.

The paper: "each connection maintains a list of tokens to regulate
data flow on the connection, since M-VIA has no built-in flow control
mechanism" (section 5.1).
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.core.matching import MatchQueue
from repro.core.message import CoreParams, Envelope
from repro.errors import FlowControlError
from repro.sim import Resource
from repro.via.descriptors import RecvDescriptor
from repro.via.vi import VI

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import MessagingEngine

#: Control credits held in reserve so an explicit TOKENS message can
#: always be sent (prevents credit-return deadlock).
CTRL_RESERVE = 2


class Channel:
    """Core state for one peer connection."""

    def __init__(self, engine: "MessagingEngine", peer_rank: int) -> None:
        self.engine = engine
        self.peer_rank = peer_rank
        params: CoreParams = engine.params
        device = engine.device
        self.data_vi: VI = device.create_vi(engine.ptag,
                                            recv_cq=engine.recv_cq)
        self.ctrl_vi: VI = device.create_vi(engine.ptag,
                                            recv_cq=engine.recv_cq)
        # Eager receive buffers (one registered slab, sliced per slot).
        slab = params.eager_slot_bytes * params.data_tokens
        self.eager_region = device.register_memory_now(slab, engine.ptag)
        ctrl_slab = Envelope.HEADER_BYTES * 4 * params.ctrl_tokens
        self.ctrl_region = device.register_memory_now(ctrl_slab, engine.ptag)
        # Send-side bounce buffer for eager copies.
        self.bounce_region = device.register_memory_now(
            params.eager_slot_bytes * 4, engine.ptag
        )
        # Flow-control state (sender's view of peer buffers).
        self.data_tokens = params.data_tokens
        self.ctrl_tokens = params.ctrl_tokens
        self.owed_data = 0
        self.owed_ctrl = 0
        self._data_waiters: List = []
        self._ctrl_waiters: List = []
        # Rendezvous state.
        self.pending_sends = MatchQueue()   # large sends awaiting advert
        self.advert_queue = MatchQueue()    # adverts awaiting a send
        #: Adverts issued but not yet consumed by an RMA arrival; an
        #: incoming RTS that crossed one of these on the wire is
        #: absorbed against it (FIFO pairing on both sides keeps the
        #: assignment consistent).
        self.outstanding_adverts = MatchQueue()
        #: Serializes the send path onto the wire.  A single-threaded
        #: MPI process posts sends sequentially; without this, a later
        #: zero-copy send could overtake an earlier send still staging
        #: its bounce copy — breaking MPI's non-overtaking rule and
        #: interleaving fragments on the data VI.
        self.send_lock = Resource(engine.sim, 1,
                                  name=f"sendlock[{engine.rank}->"
                                       f"{peer_rank}]")
        self.stats = {"eager": 0, "rma": 0, "ctrl": 0,
                      "token_msgs": 0, "token_stalls": 0}
        #: True while an explicit TOKENS return is in flight.
        self.token_msg_pending = False
        self._prepost()

    def _prepost(self) -> None:
        params = self.engine.params
        for i in range(params.data_tokens):
            self.data_vi.post_recv(RecvDescriptor(
                self.eager_region, i * params.eager_slot_bytes,
                params.eager_slot_bytes,
            ))
        for i in range(params.ctrl_tokens):
            self.ctrl_vi.post_recv(RecvDescriptor(
                self.ctrl_region, i * Envelope.HEADER_BYTES * 4,
                Envelope.HEADER_BYTES * 4,
            ))

    # -- connection -------------------------------------------------------
    def connect(self, active: bool):
        """Process: handshake both VIs with the peer."""
        agent = self.engine.device.agent
        me, peer = self.engine.rank, self.peer_rank
        for vi, kind in ((self.data_vi, "data"), (self.ctrl_vi, "ctrl")):
            disc = ("core", min(me, peer), max(me, peer), kind)
            if active:
                yield from agent.connect_request(vi, peer, disc)
            else:
                yield from agent.connect_wait(vi, disc)

    # -- token accounting ---------------------------------------------------
    def take_data_token(self):
        """Process: block until a data token is available; consume it."""
        while self.data_tokens <= 0:
            self.stats["token_stalls"] += 1
            wake = self.engine.sim.event(name="data-token")
            self._data_waiters.append(wake)
            yield wake
        self.data_tokens -= 1

    def take_ctrl_token(self, for_token_msg: bool = False):
        """Process: consume a control credit (reserve kept for TOKENS)."""
        floor = 0 if for_token_msg else CTRL_RESERVE
        while self.ctrl_tokens <= floor:
            self.stats["token_stalls"] += 1
            wake = self.engine.sim.event(name="ctrl-token")
            self._ctrl_waiters.append(wake)
            yield wake
        self.ctrl_tokens -= 1

    def credit(self, data: int, ctrl: int) -> None:
        """Peer returned credits (piggybacked or explicit)."""
        if data < 0 or ctrl < 0:
            raise FlowControlError(f"negative credit return ({data}, {ctrl})")
        if data:
            self.data_tokens += data
            if self.data_tokens > self.engine.params.data_tokens:
                raise FlowControlError(
                    f"channel {self.engine.rank}->{self.peer_rank}: "
                    f"data tokens over capacity"
                )
            waiters, self._data_waiters = self._data_waiters, []
            for wake in waiters:
                wake.succeed()
        if ctrl:
            self.ctrl_tokens += ctrl
            if self.ctrl_tokens > self.engine.params.ctrl_tokens:
                raise FlowControlError(
                    f"channel {self.engine.rank}->{self.peer_rank}: "
                    f"ctrl tokens over capacity"
                )
            waiters, self._ctrl_waiters = self._ctrl_waiters, []
            for wake in waiters:
                wake.succeed()

    def piggyback(self, envelope: Envelope) -> None:
        """Attach owed credits to an outgoing envelope."""
        envelope.data_tokens = self.owed_data
        envelope.ctrl_tokens = self.owed_ctrl
        self.owed_data = 0
        self.owed_ctrl = 0

    def owe_data(self) -> None:
        self.owed_data += 1

    def owe_ctrl(self) -> None:
        self.owed_ctrl += 1

    def needs_explicit_return(self) -> bool:
        threshold = self.engine.params.token_return_threshold
        return self.owed_data >= threshold or self.owed_ctrl >= threshold

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Channel({self.engine.rank}->{self.peer_rank}, "
            f"dtok={self.data_tokens}, ctok={self.ctrl_tokens})"
        )
