"""SPMD program execution on a simulated cluster.

``run_mpi(cluster, program)`` gives every rank a
:class:`~repro.mpi.Communicator` and runs ``program(comm)`` as a
simulation process, returning the per-rank results — the moral
equivalent of ``mpiexec`` for the simulated machine.  ``run_qmp`` does
the same with a :class:`~repro.qmp.QMPMachine` handle.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.builder import MeshCluster
from repro.core.engine import ConnectionManager, MessagingEngine
from repro.core.message import CoreParams
from repro.errors import ConfigurationError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group

#: Context id of MPI_COMM_WORLD.
WORLD_CONTEXT = 1


def build_engines(cluster: MeshCluster,
                  params: Optional[CoreParams] = None,
                  connect_neighbors: bool = True,
                  ) -> List[MessagingEngine]:
    """Create one messaging engine per node (requires a VIA stack).

    With ``connect_neighbors`` (the default, matching the paper: "each
    node creates and maintains 6 VIA connections to its nearest
    neighbors"), all nearest-neighbor channels are established before
    returning, so application timing excludes connection setup.
    """
    manager = ConnectionManager()
    engines = []
    for node in cluster.nodes:
        if node.via is None:
            raise ConfigurationError(
                f"node {node.rank} has no VIA stack (build with "
                f"stack='via')"
            )
        engines.append(MessagingEngine(node.via, manager, params))
    if connect_neighbors:
        processes = []
        for engine in engines:
            for _direction, neighbor in cluster.torus.neighbors(engine.rank):
                if neighbor > engine.rank:
                    processes.append(cluster.sim.spawn(
                        engine.ensure_channel(neighbor),
                        name=f"nn-setup[{engine.rank}-{neighbor}]",
                    ))
        for process in processes:
            cluster.sim.run_until_complete(process)
    return engines


def build_world(cluster: MeshCluster,
                engines: Optional[List[MessagingEngine]] = None,
                params: Optional[CoreParams] = None,
                ) -> List[Communicator]:
    """One MPI_COMM_WORLD communicator per rank."""
    engines = engines or build_engines(cluster, params)
    world = Group(range(cluster.size))
    return [
        Communicator(engine, world, WORLD_CONTEXT, torus=cluster.torus)
        for engine in engines
    ]


def run_mpi(cluster: MeshCluster, program: Callable,
            args: Sequence[Any] = (),
            params: Optional[CoreParams] = None,
            comms: Optional[List[Communicator]] = None,
            limit: Optional[float] = None) -> List[Any]:
    """Run ``program(comm, *args)`` on every rank; per-rank results.

    ``comms`` lets callers reuse a built world across runs (repeated
    benchmark iterations on one cluster).
    """
    comms = comms or build_world(cluster, params=params)
    processes = [
        cluster.sim.spawn(program(comm, *args), name=f"rank{comm.rank}")
        for comm in comms
    ]
    return [
        cluster.sim.run_until_complete(process, limit=limit)
        for process in processes
    ]


def run_qmp(cluster: MeshCluster, program: Callable,
            args: Sequence[Any] = (),
            params: Optional[CoreParams] = None,
            limit: Optional[float] = None) -> List[Any]:
    """Run ``program(qmp, *args)`` with QMP machine handles."""
    from repro.qmp.api import QMPMachine

    comms = build_world(cluster, params=params)
    machines = [QMPMachine(comm) for comm in comms]
    processes = [
        cluster.sim.spawn(program(machine, *args),
                          name=f"qmp-rank{machine.comm.rank}")
        for machine in machines
    ]
    return [
        cluster.sim.run_until_complete(process, limit=limit)
        for process in processes
    ]
