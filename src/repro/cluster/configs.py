"""The paper's cluster configurations (section 3)."""

from __future__ import annotations

from typing import Optional

from repro.cluster.builder import MeshCluster, build_mesh
from repro.hw.params import HostParams
from repro.sim import Simulator


def jlab_cluster_a(stack: str = "via",
                   sim: Optional[Simulator] = None) -> MeshCluster:
    """The 256-node 4x8x8 torus: 2.67 GHz P4 Xeon, 256 MB, three
    dual-port Intel Pro/1000MT adapters.  All paper measurements were
    taken on this machine."""
    return build_mesh((4, 8, 8), wrap=True, stack=stack, sim=sim,
                      host_params=HostParams(cpu_ghz=2.67, memory_mb=256))


def jlab_cluster_b(stack: str = "via",
                   sim: Optional[Simulator] = None) -> MeshCluster:
    """The 384-node 6x8x8 torus: 3.0 GHz P4 Xeon, 512 MB."""
    return build_mesh((6, 8, 8), wrap=True, stack=stack, sim=sim,
                      host_params=HostParams(cpu_ghz=3.0, memory_mb=512))


def small_mesh(dims=(2,), wrap: bool = False, stack: str = "via",
               sim: Optional[Simulator] = None, **kwargs) -> MeshCluster:
    """Small test meshes (point-to-point benchmarks use a 2-node or a
    3x3x3 arrangement rather than the full production machine)."""
    return build_mesh(dims, wrap=wrap, stack=stack, sim=sim, **kwargs)


def myrinet_cluster(num_hosts: int = 128, sim: Optional[Simulator] = None):
    """The Myrinet comparator: 128 2.0 GHz P4 Xeons on a Myrinet 2000
    full-bisection Clos switch (section 3).  Returns (sim, fabric)."""
    from repro.hw.myrinet import MyrinetFabric

    sim = sim or Simulator()
    return sim, MyrinetFabric(sim, num_hosts)
