"""Cluster construction and parallel-program execution.

* :mod:`repro.cluster.builder` — wires hosts, GigE ports and links into
  a mesh/torus and attaches a protocol stack (VIA or TCP);
* :mod:`repro.cluster.configs` — the paper's machines: the 256-node
  4x8x8 torus, the 384-node 6x8x8 torus, and the 128-node Myrinet
  comparator;
* :mod:`repro.cluster.process_api` — SPMD program execution: one
  generator per rank, MPI/QMP handles passed in.
"""

from repro.cluster.builder import MeshCluster, MeshNode, build_mesh
from repro.cluster.configs import (
    jlab_cluster_a,
    jlab_cluster_b,
    myrinet_cluster,
    small_mesh,
)
from repro.cluster.process_api import (
    build_engines,
    build_world,
    run_mpi,
    run_qmp,
)

__all__ = [
    "MeshCluster",
    "MeshNode",
    "build_mesh",
    "jlab_cluster_a",
    "jlab_cluster_b",
    "myrinet_cluster",
    "small_mesh",
    "build_engines",
    "build_world",
    "run_mpi",
    "run_qmp",
]
