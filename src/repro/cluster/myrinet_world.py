"""A message-level communicator over the Myrinet comparator fabric.

The Table 1 benchmark runs the same LQCD iteration on both machines;
this class gives the Myrinet cluster just enough of the
Communicator interface for that: ``isend``/``irecv`` with tag
matching, ``allreduce`` and ``barrier`` via binomial trees, plus a
``compute`` hook (GM offloads protocol to the LaNai, so host compute
simply takes wall time without a contended-CPU model).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.collectives.tree import binomial_children, binomial_parent
from repro.core.message import ANY_SOURCE, ANY_TAG, RecvRequest, SendRequest
from repro.hw.myrinet import MyrinetFabric
from repro.mpi.op import SUM, Op
from repro.mpi.request import waitall
from repro.sim import Simulator


class MyriWorld:
    """Shared state: the fabric plus per-rank endpoints."""

    def __init__(self, sim: Simulator, num_hosts: int,
                 params=None) -> None:
        self.sim = sim
        self.fabric = MyrinetFabric(sim, num_hosts, params=params)
        self.comms = [MyriComm(self, rank) for rank in range(num_hosts)]
        for comm in self.comms:
            self.fabric.set_receiver(comm.rank, comm._deliver)


class MyriComm:
    """One rank's endpoint on the Myrinet fabric."""

    def __init__(self, world: MyriWorld, rank: int) -> None:
        self.world = world
        self.sim = world.sim
        self.rank = rank
        #: (src, tag) -> queues of arrived / posted.
        self._unexpected: deque = deque()
        self._posted: deque = deque()

    @property
    def size(self) -> int:
        return self.world.fabric.topology.num_hosts

    # -- point-to-point ------------------------------------------------------
    def isend(self, dest: int, tag: int = 0, nbytes: int = 0,
              data: Any = None) -> SendRequest:
        request = SendRequest(self.sim, dest, tag, 0, nbytes, data)

        def run():
            yield from self.world.fabric.send(
                self.rank, dest, nbytes, payload=(tag, nbytes, data)
            )
            request.succeed(request)

        self.sim.spawn(run(), name=f"myri-send[{self.rank}->{dest}]")
        return request

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              nbytes: int = 0) -> RecvRequest:
        request = RecvRequest(self.sim, source, tag, 0, nbytes)
        for index, (src, msg_tag, msg_bytes, data) in enumerate(
                self._unexpected):
            if self._matches(request, src, msg_tag):
                del self._unexpected[index]
                self._complete(request, src, msg_tag, msg_bytes, data)
                return request
        self._posted.append(request)
        return request

    @staticmethod
    def _matches(request: RecvRequest, src: int, tag: int) -> bool:
        if request.src != ANY_SOURCE and request.src != src:
            return False
        if request.tag != ANY_TAG and request.tag != tag:
            return False
        return True

    def _complete(self, request: RecvRequest, src: int, tag: int,
                  nbytes: int, data: Any) -> None:
        request.received_bytes = nbytes
        request.received_data = data
        request.received_src = src
        request.received_tag = tag
        request.succeed(request)

    def _deliver(self, src: int, payload, nbytes) -> None:
        tag, msg_bytes, data = payload
        for index, request in enumerate(self._posted):
            if self._matches(request, src, tag):
                del self._posted[index]
                self._complete(request, src, tag, msg_bytes, data)
                return
        self._unexpected.append((src, tag, msg_bytes, data))

    # -- collectives (binomial trees through the switch) ---------------------
    _TAG_REDUCE = 9001
    _TAG_BCAST = 9002

    def allreduce(self, nbytes: int = 8, op: Op = SUM, data: Any = None):
        """Process: reduce to rank 0 then broadcast."""
        parent = binomial_parent(self.size, 0, self.rank)
        children = binomial_children(self.size, 0, self.rank)
        value = data
        for child in children:
            request = self.irecv(child, self._TAG_REDUCE, nbytes)
            yield from request.wait()
            value = op(value, request.received_data)
        if parent is not None:
            yield from self.isend(parent, self._TAG_REDUCE, nbytes,
                                  data=value).wait()
            request = self.irecv(parent, self._TAG_BCAST, nbytes)
            yield from request.wait()
            value = request.received_data
        sends = [
            self.isend(child, self._TAG_BCAST, nbytes, data=value)
            for child in children
        ]
        yield from waitall(sends)
        return value

    def barrier(self):
        """Process: zero-byte allreduce."""
        yield from self.allreduce(nbytes=0, data=None)

    def compute(self, duration: float):
        """Process: host computation (uncontended on this machine)."""
        yield self.sim.timeout(duration)
