"""Build simulated mesh clusters.

A :class:`MeshCluster` owns one :class:`~repro.sim.Simulator` plus, per
node, a :class:`~repro.hw.node.Host` and one GigE port per mesh
direction, wired with full-duplex links exactly as the Jlab machines
were cabled: dual-port adapters, one adapter (= one PCI-X slot) per
axis, the +axis port and -axis port of each node cabled to the
corresponding neighbors.

Protocol stacks attach afterwards: :meth:`MeshCluster.attach_via`
installs a :class:`~repro.via.device.ViaDevice` per node (the modified
M-VIA), :meth:`MeshCluster.attach_tcp` installs the TCP baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hw import faults as fault_model
from repro.hw.faults import FaultInjector, NodeFaultSpec, merge_node_faults
from repro.hw.link import BoundaryLink, Link
from repro.hw.nic import GigEPort
from repro.hw.node import Host
from repro.hw.params import GigEParams, HostParams, TcpParams, ViaParams
from repro.sim import Simulator
from repro.topology.partition import ShardPlan
from repro.topology.torus import Direction, Torus


@dataclass
class MeshNode:
    """One cluster node: host resources plus its wired GigE ports."""

    rank: int
    host: Host
    ports: Dict[int, GigEPort] = field(default_factory=dict)
    #: Set by attach_via / attach_tcp.
    via: Optional[object] = None
    tcp: Optional[object] = None


class MeshCluster:
    """A wired mesh/torus of simulated nodes."""

    def __init__(self, torus: Torus,
                 sim: Optional[Simulator] = None,
                 host_params: Optional[HostParams] = None,
                 gige_params: Optional[GigEParams] = None,
                 node_faults: Optional[Sequence[NodeFaultSpec]] = None,
                 shard_plan: Optional[ShardPlan] = None,
                 shard_id: Optional[int] = None,
                 ) -> None:
        self.sim = sim or Simulator()
        self.torus = torus
        self.host_params = host_params or HostParams()
        self.gige_params = gige_params or GigEParams()
        self.node_faults = tuple(node_faults or ())
        for spec in self.node_faults:
            if not 0 <= spec.rank < torus.size:
                raise ConfigurationError(
                    f"NodeFaultSpec rank {spec.rank} outside "
                    f"0..{torus.size - 1}"
                )
        if (shard_plan is None) != (shard_id is None):
            raise ConfigurationError(
                "shard_plan and shard_id must be given together"
            )
        self.shard_plan = shard_plan
        self.shard_id = shard_id
        if shard_plan is not None:
            if tuple(shard_plan.dims) != tuple(torus.dims) \
                    or shard_plan.wrap != torus.wrap:
                raise ConfigurationError(
                    f"shard plan {shard_plan.dims}/wrap={shard_plan.wrap} "
                    f"does not match {torus!r}"
                )
            if self.node_faults:
                raise ConfigurationError(
                    "sharded (PDES) runs are fault-free: node faults "
                    "require the sequential engine"
                )
            self._local_ranks = frozenset(shard_plan.local_ranks(shard_id))
        else:
            self._local_ranks = None
        #: Cross-shard egress commits appended by every
        #: :class:`~repro.hw.link.BoundaryLink`; the shard runtime
        #: drains this at each conservative-window barrier.
        self.pdes_outbox: List[tuple] = []
        #: Mesh-wide alive-set (the failure detector's published view).
        self._alive = [True] * torus.size
        #: (rank, time, declared-by, reason) death records, in order.
        self.death_log: List[tuple] = []
        self.watchdog = None
        directions = torus.directions()
        if not directions:
            raise ConfigurationError(f"{torus!r} has no links to wire")
        # One dual-port adapter per axis -> one PCI-X slot per axis.
        num_pci = max(1, (max(d.port for d in directions) // 2) + 1)
        #: Indexed by rank; ``None`` placeholders for ranks owned by
        #: other shards keep rank indexing uniform everywhere.
        self.nodes: List[Optional[MeshNode]] = []
        for rank in torus.ranks():
            if (self._local_ranks is not None
                    and rank not in self._local_ranks):
                self.nodes.append(None)
                continue
            host = Host(self.sim, rank, self.host_params,
                        num_pci_buses=num_pci)
            node = MeshNode(rank=rank, host=host)
            for direction in directions:
                if torus.has_neighbor(rank, direction):
                    port = GigEPort(
                        self.sim, host, self.gige_params,
                        pci_index=direction.port // 2,
                        name=f"n{rank}:{direction}",
                    )
                    node.ports[direction.port] = port
            self.nodes.append(node)
        self.links: List[Link] = []
        self._wire()

    def _wire(self) -> None:
        g = self.gige_params
        fault_params = g.faults or fault_model.ambient()
        if fault_params is not None and not fault_params.active():
            fault_params = None
        if self._local_ranks is not None and (
                fault_params is not None or g.corrupt_every is not None):
            raise ConfigurationError(
                "sharded (PDES) runs are fault-free: link faults and "
                "corrupt_every require the sequential engine"
            )
        #: (rank, port index) -> the Link wired there.
        self._link_map: Dict[tuple, Link] = {}
        for rank in self.torus.ranks():
            for direction in self.torus.directions():
                if direction.sign < 0:
                    continue
                if not self.torus.has_neighbor(rank, direction):
                    continue
                neighbor = self.torus.neighbor(rank, direction)
                name = f"link[{rank}{direction}{neighbor}]"
                if self._local_ranks is not None:
                    rank_local = rank in self._local_ranks
                    neighbor_local = neighbor in self._local_ranks
                    if not rank_local and not neighbor_local:
                        continue
                    if rank_local != neighbor_local:
                        # Cut link: wire a boundary proxy on the local
                        # endpoint only.  Same name and side numbering
                        # as the reference link so frame timing, span
                        # tracks and the canonical ingress sort agree
                        # with the sequential engine.
                        if rank_local:
                            local_rank, local_port = rank, direction.port
                            remote_rank = neighbor
                            remote_port = direction.opposite.port
                            side = 0
                        else:
                            local_rank = neighbor
                            local_port = direction.opposite.port
                            remote_rank, remote_port = rank, direction.port
                            side = 1
                        link = BoundaryLink(
                            self.sim, g.wire_rate, g.frame_overhead,
                            g.propagation, name=name,
                            outbox=self.pdes_outbox,
                            remote_rank=remote_rank,
                            remote_port=remote_port,
                        )
                        self.nodes[local_rank].ports[local_port] \
                            .attach_link(link, side)
                        self._link_map[(local_rank, local_port)] = link
                        self.links.append(link)
                        continue
                # Node faults compose onto the link schedule: a crash
                # at either endpoint kills the link, a NIC outage
                # window downs it transiently.
                link_params = merge_node_faults(fault_params, tuple(
                    spec for spec in self.node_faults
                    if spec.rank in (rank, neighbor)
                ))
                injector = (
                    FaultInjector(link_params, name)
                    if link_params is not None and link_params.active()
                    else None
                )
                link = Link(
                    self.sim, g.wire_rate, g.frame_overhead, g.propagation,
                    name=name,
                    corrupt_every=g.corrupt_every,
                    faults=injector,
                )
                self.nodes[rank].ports[direction.port].attach_link(link, 0)
                self.nodes[neighbor].ports[
                    direction.opposite.port
                ].attach_link(link, 1)
                self._link_map[(rank, direction.port)] = link
                self._link_map[(neighbor, direction.opposite.port)] = link
                self.links.append(link)
        #: The FaultParams the links were wired with (None = lossless).
        self.fault_params = fault_params
        #: Links that can die permanently (dead-link reroute checks
        #: only these, keeping the healthy-fabric path O(1)-ish).
        self._mortal_links = tuple(
            link for link in self.links
            if link.faults is not None
            and link.faults.params.die_at is not None
        )
        # Fail-stop crashes: tear the victim's own endpoints down at
        # the crash instant (its links die via the merged schedules).
        from repro.sim.events import Callback

        for spec in self.node_faults:
            if spec.crash_at is not None:
                Callback(self.sim,
                         lambda rank=spec.rank: self._node_crashed(rank),
                         delay=spec.crash_at)

    # -- link health --------------------------------------------------------
    def link_alive(self, rank: int, direction: Direction,
                   now: Optional[float] = None) -> bool:
        """Is the link out of ``rank`` in ``direction`` alive?"""
        link = self._link_map.get((rank, direction.port))
        if link is None:
            return False
        return not link.is_dead(self.sim.now if now is None else now)

    def fabric_can_degrade(self) -> bool:
        """Whether any wired link can die permanently."""
        return bool(self._mortal_links)

    def degraded(self, now: float) -> bool:
        """Any link permanently dead at ``now``?  (FabricHealth API.)"""
        return any(link.is_dead(now) for link in self._mortal_links)

    def alive(self, rank: int, direction: Direction, now: float) -> bool:
        """FabricHealth API used by dead-link rerouting."""
        return self.link_alive(rank, direction, now)

    @property
    def size(self) -> int:
        return self.torus.size

    def node(self, rank: int) -> MeshNode:
        return self.nodes[rank]

    # -- node health (the failure detector's published view) ----------------
    @property
    def has_node_faults(self) -> bool:
        return bool(self.node_faults)

    def node_alive(self, rank: int) -> bool:
        """Mesh-wide alive-set entry for ``rank``."""
        return self._alive[rank]

    def alive_ranks(self) -> List[int]:
        """Sorted world ranks currently believed alive."""
        return [rank for rank in range(self.size) if self._alive[rank]]

    def declare_dead(self, rank: int, by: Optional[int] = None,
                     reason: str = "") -> bool:
        """Mark ``rank`` dead in the alive-set (idempotent).

        Called by the failure detectors (keepalive silence, retry
        exhaustion) and by the crash scheduler itself.  Returns True
        on the first declaration.
        """
        if not self._alive[rank]:
            return False
        self._alive[rank] = False
        self.death_log.append((rank, self.sim.now, by, reason))
        return True

    def _node_crashed(self, rank: int) -> None:
        """Fail-stop crash: victim-side teardown at the crash instant.

        The victim's links die through the merged link schedules; this
        hook errors the victim's own VIs and pending requests so its
        program observes the failure too.
        """
        if not self._alive[rank]:
            return
        self.declare_dead(rank, by=rank, reason="crashed")
        node = self.nodes[rank]
        if node.via is not None:
            node.via.agent.on_local_crash()

    def observability(self, metrics_interval: float = 50.0):
        """Attach (idempotently) and return the flight recorder.

        Attach before driving traffic so every message gets a trace id
        at its entry point; ``metrics_interval`` is the bucket width
        (us) of the metrics timelines.  See ``docs/OBSERVABILITY.md``.
        """
        if self.sim.recorder is None:
            from repro.obs import FlightRecorder

            self.sim.recorder = FlightRecorder(
                metrics_interval=metrics_interval
            )
        return self.sim.recorder

    def config_hash(self) -> str:
        """Stable content hash of this cluster's full configuration.

        Covers topology (dims + wrap), host/GigE params (including any
        per-link fault schedule), the resolved ambient fault params and
        node-fault specs, plus the code version — the same identity the
        service layer's result cache is keyed on, so the hash printed
        by a hang report names a re-runnable configuration.
        """
        from repro import __version__
        from repro.canonical import content_hash

        return content_hash({
            "dims": list(self.torus.dims),
            "wrap": self.torus.wrap,
            "host": self.host_params,
            "gige": self.gige_params,
            "faults": self.fault_params,
            "node_faults": list(self.node_faults),
            "version": __version__,
        })

    @property
    def fault_seed(self) -> Optional[int]:
        """The deterministic fault-stream seed, when faults are wired."""
        if self.fault_params is not None:
            return self.fault_params.seed
        if self.node_faults:
            # Node-fault-only runs still derive link schedules from the
            # default stream seed.
            return 0
        return None

    def hang_report(self) -> str:
        """Diagnostic naming stuck VIs/requests/ranks (watchdog food)."""
        from repro.ckpt import context as ckpt_context

        recorder = getattr(self.sim, "recorder", None)
        lines = [
            f"run identity: config_hash={self.config_hash()[:16]} "
            f"fault_seed={self.fault_seed}",
            f"alive-set: {self.alive_ranks()} of {self.size}",
        ]
        note = ckpt_context.current()
        if note is not None:
            lines.insert(1, (
                f"latest checkpoint: {note.ckpt_id} "
                f"(resume picks up after {note.kind} {note.index})"
            ))
        for rank, when, by, reason in self.death_log:
            lines.append(
                f"  death: rank {rank} at t={when:.1f}us "
                f"(declared by {by}: {reason})"
            )
        for node in self.nodes:
            if node is None or node.via is None:
                continue
            agent = node.via.agent
            for vi in node.via.vis.values():
                channel = agent._channels.get(vi.vi_id)
                unacked = len(channel.unacked) if channel else 0
                if (vi.recv_queue or vi._reassembly is not None
                        or unacked):
                    lines.append(
                        f"  rank {node.rank} {vi!r}: "
                        f"{len(vi.recv_queue)} posted recvs, "
                        f"{unacked} unACKed sends"
                        + (", mid-reassembly"
                           if vi._reassembly is not None else "")
                    )
                    if recorder is not None:
                        # Last flight-recorder spans on the stuck VI's
                        # node: what the message was doing when it
                        # stopped making progress.
                        for span in recorder.tail(
                                track=f"n{node.rank}", limit=20):
                            lines.append("    " + span.describe())
            engine = getattr(node.via, "engine", None)
            if engine is not None and engine.pending_requests():
                pending = engine.pending_requests()
                preview = ", ".join(repr(r) for r in pending[:4])
                lines.append(
                    f"  rank {node.rank}: {len(pending)} pending "
                    f"requests ({preview}"
                    + (", ..." if len(pending) > 4 else "") + ")"
                )
        # Wall-clock telemetry (top counters + event-log tail) makes
        # the hang dump self-contained: what the *process* was doing,
        # next to what the simulation was doing.  Omitted when the
        # plane is off.
        from repro import telemetry

        summary = telemetry.hang_summary(top=10, tail=20)
        if summary is not None:
            lines.append(summary)
        return "\n".join(lines)

    # -- protocol stacks ---------------------------------------------------
    def attach_via(self, via_params: Optional[ViaParams] = None) -> None:
        """Install the modified M-VIA on every node."""
        from repro.via.device import ViaDevice

        params = via_params or ViaParams()
        for node in self.nodes:
            if node is None:
                continue
            if node.via is not None or node.tcp is not None:
                raise ConfigurationError(
                    f"node {node.rank} already has a protocol stack"
                )
            node.via = ViaDevice(
                self.sim, node.host, node.rank, self.torus, node.ports,
                params=params,
            )
            if self.fabric_can_degrade():
                node.via.set_fabric_health(self)
            if self.node_faults:
                node.via.agent.start_failure_detector(self)
        if self.node_faults and self.watchdog is None:
            from repro.sim.monitor import Watchdog

            self.watchdog = Watchdog(self)
            self.sim.hang_diagnostics = self.hang_report

    def reliability_stats(self) -> Dict[str, int]:
        """Aggregate reliable-delivery/fault counters across the mesh.

        Sums the kernel agents' protocol counters and the links'
        drop/corrupt counters; zero everywhere on a lossless run.
        """
        from repro.sim.monitor import RELIABILITY_COUNTERS

        totals = {key: 0 for key in RELIABILITY_COUNTERS}
        for node in self.nodes:
            if node is None or node.via is None:
                continue
            stats = node.via.agent.stats
            for key in RELIABILITY_COUNTERS:
                totals[key] += stats.get(key, 0)
        for link in self.links:
            totals["frames_dropped"] = totals.get("frames_dropped", 0) + \
                sum(link.stats["dropped"])
            totals["frames_corrupted"] = \
                totals.get("frames_corrupted", 0) + \
                sum(link.stats["corrupted"])
        if self.watchdog is not None:
            totals["hangs_detected"] = self.watchdog.counters[
                "hangs_detected"]
            totals["retry_storms"] = self.watchdog.counters[
                "retry_storms"]
        return totals

    def attach_tcp(self, tcp_params: Optional[TcpParams] = None) -> None:
        """Install the kernel TCP/IP baseline on every node."""
        from repro.tcpip.stack import TcpStack

        params = tcp_params or TcpParams()
        for node in self.nodes:
            if node is None:
                continue
            if node.via is not None or node.tcp is not None:
                raise ConfigurationError(
                    f"node {node.rank} already has a protocol stack"
                )
            node.tcp = TcpStack(
                self.sim, node.host, node.rank, self.torus, node.ports,
                params=params,
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeshCluster({self.torus!r})"


def build_mesh(dims, wrap: bool = True, stack: str = "via",
               sim: Optional[Simulator] = None,
               host_params: Optional[HostParams] = None,
               gige_params: Optional[GigEParams] = None,
               via_params: Optional[ViaParams] = None,
               tcp_params: Optional[TcpParams] = None,
               node_faults: Optional[Sequence[NodeFaultSpec]] = None,
               shard_plan: Optional[ShardPlan] = None,
               shard_id: Optional[int] = None,
               ) -> MeshCluster:
    """One-call cluster factory.

    ``stack`` is ``"via"``, ``"tcp"`` or ``"none"``.  ``node_faults``
    (a sequence of :class:`~repro.hw.faults.NodeFaultSpec`) arms the
    node-failure machinery: per-node crash/NIC-outage schedules, the
    keepalive failure detector, and the hang watchdog.  ``shard_plan``
    plus ``shard_id`` build only that shard's slab of the mesh, with
    :class:`~repro.hw.link.BoundaryLink` proxies on cut links (see
    :mod:`repro.pdes`).
    """
    cluster = MeshCluster(Torus(dims, wrap=wrap), sim=sim,
                          host_params=host_params, gige_params=gige_params,
                          node_faults=node_faults,
                          shard_plan=shard_plan, shard_id=shard_id)
    if stack == "via":
        cluster.attach_via(via_params)
    elif stack == "tcp":
        cluster.attach_tcp(tcp_params)
    elif stack != "none":
        raise ConfigurationError(f"unknown stack {stack!r}")
    return cluster
