"""MPI datatypes: basic types plus derived (non-contiguous) layouts.

Sizes drive the timing model; derived datatypes additionally model the
*packing* cost — a non-contiguous buffer (e.g. a lattice boundary
plane strided through the local volume) must be gathered into a
contiguous staging buffer before it can hit the wire, which is a real
memory copy the LQCD codes paid on every halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MpiError


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype: a name and a byte extent."""

    name: str
    extent: int

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise MpiError(f"datatype {self.name} extent must be positive")

    def bytes_for(self, count: int) -> int:
        if count < 0:
            raise MpiError(f"negative element count {count}")
        return count * self.extent

    @property
    def contiguous(self) -> bool:
        return True

    def pack_bytes_for(self, count: int) -> int:
        """Bytes that must be copied to pack ``count`` elements
        (zero for contiguous layouts)."""
        return 0

    # -- derived-type constructors (MPI_Type_*) ---------------------------
    def vector(self, blocks: int, blocklength: int,
               stride: int) -> "VectorDatatype":
        """MPI_Type_vector: ``blocks`` blocks of ``blocklength``
        elements, block starts ``stride`` elements apart."""
        return VectorDatatype(self, blocks, blocklength, stride)

    def contiguous_type(self, count: int) -> "Datatype":
        """MPI_Type_contiguous."""
        return Datatype(f"{self.name}[{count}]", self.extent * count)


@dataclass(frozen=True)
class VectorDatatype(Datatype):
    """A strided (non-contiguous) layout over a base datatype.

    One element of this type covers ``blocks * blocklength`` base
    elements of payload spread over ``(blocks-1)*stride + blocklength``
    base extents of memory; sending it packs the payload first.
    """

    base: Datatype = None  # type: ignore[assignment]
    blocks: int = 1
    blocklength: int = 1
    stride: int = 1

    def __init__(self, base: Datatype, blocks: int, blocklength: int,
                 stride: int) -> None:
        if blocks < 1 or blocklength < 1:
            raise MpiError("vector blocks/blocklength must be >= 1")
        if stride < blocklength:
            raise MpiError(
                f"vector stride {stride} overlaps blocks of "
                f"{blocklength}"
            )
        payload = base.extent * blocks * blocklength
        object.__setattr__(self, "name",
                           f"vector({base.name},{blocks},"
                           f"{blocklength},{stride})")
        object.__setattr__(self, "extent", payload)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "blocks", blocks)
        object.__setattr__(self, "blocklength", blocklength)
        object.__setattr__(self, "stride", stride)

    @property
    def contiguous(self) -> bool:
        return self.blocks == 1 or self.stride == self.blocklength

    def pack_bytes_for(self, count: int) -> int:
        if self.contiguous:
            return 0
        return self.bytes_for(count)


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)
FLOAT_COMPLEX = Datatype("MPI_COMPLEX", 8)
DOUBLE_COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16)
