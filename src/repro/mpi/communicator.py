"""The MPI communicator.

A :class:`Communicator` binds a process group to a context (so traffic
in different communicators never matches) and exposes point-to-point
and collective operations.  Collective algorithms dispatch to the
torus-aware implementations in :mod:`repro.collectives` when the
communicator spans the whole mesh in rank order (the paper's case);
sub-communicators fall back to generic binomial trees.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence

from repro.core.engine import MessagingEngine
from repro.core.message import (
    ANY_SOURCE,
    ANY_TAG,
    RecvRequest,
    SendRequest,
)
from repro.errors import MpiError
from repro.mpi.datatypes import BYTE, Datatype
from repro.mpi.group import Group
from repro.mpi.op import NULL, Op, SUM
from repro.mpi.request import waitall
from repro.topology.torus import Torus


def _resolve_bytes(nbytes: Optional[int], count: Optional[int],
                   datatype: Datatype) -> int:
    if nbytes is None and count is None:
        raise MpiError("specify nbytes or count")
    if nbytes is not None and count is not None:
        raise MpiError("specify nbytes or count, not both")
    if nbytes is not None:
        if nbytes < 0:
            raise MpiError(f"negative message size {nbytes}")
        return int(nbytes)
    return datatype.bytes_for(count)


class Communicator:
    """One rank's handle on a communication context."""

    def __init__(self, engine: MessagingEngine, group: Group,
                 context: int, torus: Optional[Torus] = None) -> None:
        if not group.contains(engine.rank):
            raise MpiError(
                f"engine rank {engine.rank} not in group {group.ranks()}"
            )
        self.engine = engine
        self.group = group
        self.context = context
        self.rank = group.local_rank(engine.rank)
        self.size = group.size
        #: Mesh geometry, when the communicator maps 1:1 onto the torus.
        self.torus = torus
        self._derived = itertools.count(1)

    # -- contexts ----------------------------------------------------------
    @property
    def _pt2pt_context(self) -> int:
        return 2 * self.context

    @property
    def _coll_context(self) -> int:
        return 2 * self.context + 1

    def _world(self, rank: int) -> int:
        if rank == ANY_SOURCE:
            return ANY_SOURCE
        return self.group.world_rank(rank)

    @property
    def is_whole_torus(self) -> bool:
        """True when ranks are the identity map onto the mesh."""
        return (
            self.torus is not None
            and self.size == self.torus.size
            and self.group.ranks() == tuple(range(self.size))
        )

    # -- point-to-point ----------------------------------------------------
    def isend(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None) -> SendRequest:
        """MPI_Isend (returns immediately with a request handle).

        Non-contiguous (derived) datatypes pay a packing copy before
        the data hits the wire.
        """
        size = _resolve_bytes(nbytes, count, datatype)
        pack = datatype.pack_bytes_for(count) if count is not None else 0
        return self.engine.isend(self._world(dest), tag,
                                 self._pt2pt_context, size, data=data,
                                 pack_bytes=pack)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              nbytes: Optional[int] = None, count: Optional[int] = None,
              datatype: Datatype = BYTE) -> RecvRequest:
        """MPI_Irecv (derived datatypes pay an unpacking copy)."""
        size = _resolve_bytes(nbytes, count, datatype)
        pack = datatype.pack_bytes_for(count) if count is not None else 0
        return self.engine.irecv(self._world(source), tag,
                                 self._pt2pt_context, size,
                                 unpack_bytes=pack)

    def issend(self, dest: int, tag: int = 0,
               nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               data: Any = None) -> SendRequest:
        """MPI_Issend: completes only once the receiver has matched."""
        size = _resolve_bytes(nbytes, count, datatype)
        return self.engine.isend(self._world(dest), tag,
                                 self._pt2pt_context, size, data=data,
                                 synchronous=True)

    def ssend(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None):
        """Process: MPI_Ssend (blocking synchronous send)."""
        request = self.issend(dest, tag, nbytes, count, datatype, data)
        yield from request.wait()
        return request

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_Iprobe: (source, tag, nbytes) of the first matching
        queued message, or None."""
        envelope = self.engine.iprobe(self._world(source), tag,
                                      self._pt2pt_context)
        if envelope is None:
            return None
        return (self.group.local_rank(envelope.src_rank),
                envelope.tag, envelope.nbytes)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Process: MPI_Probe — block until a matching message is
        queued; returns (source, tag, nbytes) without consuming it."""
        envelope = yield from self.engine.probe(
            self._world(source), tag, self._pt2pt_context
        )
        return (self.group.local_rank(envelope.src_rank),
                envelope.tag, envelope.nbytes)

    def send(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
             count: Optional[int] = None, datatype: Datatype = BYTE,
             data: Any = None):
        """Process: MPI_Send (blocking)."""
        request = self.isend(dest, tag, nbytes, count, datatype, data)
        yield from request.wait()
        return request

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             nbytes: Optional[int] = None, count: Optional[int] = None,
             datatype: Datatype = BYTE):
        """Process: MPI_Recv; returns the completed RecvRequest."""
        request = self.irecv(source, tag, nbytes, count, datatype)
        yield from request.wait()
        return request

    def sendrecv(self, dest: int, source: int,
                 send_nbytes: Optional[int] = None,
                 recv_nbytes: Optional[int] = None,
                 send_tag: int = 0, recv_tag: int = ANY_TAG,
                 data: Any = None):
        """Process: MPI_Sendrecv — concurrent send and receive."""
        send_req = self.isend(dest, send_tag, send_nbytes, data=data)
        recv_req = self.irecv(source, recv_tag, recv_nbytes)
        yield from waitall([send_req, recv_req])
        return recv_req

    def send_init(self, dest: int, tag: int = 0,
                  nbytes: Optional[int] = None,
                  count: Optional[int] = None,
                  datatype: Datatype = BYTE, data: Any = None):
        """MPI_Send_init: a restartable persistent send."""
        from repro.mpi.request import PersistentRequest

        return PersistentRequest(
            lambda: self.isend(dest, tag, nbytes, count, datatype, data)
        )

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                  nbytes: Optional[int] = None,
                  count: Optional[int] = None,
                  datatype: Datatype = BYTE):
        """MPI_Recv_init: a restartable persistent receive."""
        from repro.mpi.request import PersistentRequest

        return PersistentRequest(
            lambda: self.irecv(source, tag, nbytes, count, datatype)
        )

    # -- internal pt2pt on the collective context -----------------------------
    def coll_isend(self, dest: int, tag: int, nbytes: int,
                   data: Any = None, route=None) -> SendRequest:
        return self.engine.isend(self._world(dest), tag,
                                 self._coll_context, nbytes, data=data,
                                 route=route)

    def coll_irecv(self, source: int, tag: int, nbytes: int) -> RecvRequest:
        return self.engine.irecv(self._world(source), tag,
                                 self._coll_context, nbytes)

    # -- collectives ----------------------------------------------------------
    def bcast(self, root: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None):
        """Process: MPI_Bcast; returns the broadcast data."""
        from repro.collectives import broadcast

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from broadcast.bcast(self, root, size, data)
        return result

    def reduce(self, root: int = 0, nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               op: Op = SUM, data: Any = None):
        """Process: MPI_Reduce; root gets the combined value."""
        from repro.collectives import reduce as reduce_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from reduce_mod.reduce(self, root, size, op, data)
        return result

    def allreduce(self, nbytes: Optional[int] = None,
                  count: Optional[int] = None, datatype: Datatype = BYTE,
                  op: Op = SUM, data: Any = None):
        """Process: MPI_Allreduce (the paper's global combining)."""
        from repro.collectives import combine

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from combine.allreduce(self, size, op, data)
        return result

    def barrier(self):
        """Process: MPI_Barrier = global combine with a null reduction
        (paper section 5.2)."""
        from repro.collectives import combine

        yield from combine.allreduce(self, 0, NULL, None)

    def scatter(self, root: int = 0, nbytes: Optional[int] = None,
                count: Optional[int] = None, datatype: Datatype = BYTE,
                data: Optional[Sequence[Any]] = None,
                algorithm: str = "opt"):
        """Process: one-to-all personalized communication.

        ``algorithm`` selects the paper's ``"sdf"`` or ``"opt"``
        scheduler (section 5.2).  Returns this rank's slice.
        """
        from repro.collectives import scatter as scatter_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scatter_mod.scatter(self, root, size, data,
                                                algorithm=algorithm)
        return result

    def gather(self, root: int = 0, nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               data: Any = None, algorithm: str = "opt"):
        """Process: all-to-one personalized (reverse of scatter)."""
        from repro.collectives import gather as gather_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from gather_mod.gather(self, root, size, data,
                                              algorithm=algorithm)
        return result

    def allgather(self, nbytes: Optional[int] = None,
                  count: Optional[int] = None, datatype: Datatype = BYTE,
                  data: Any = None):
        """Process: MPI_Allgather; returns the per-rank list."""
        from repro.collectives import allgather as allgather_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from allgather_mod.allgather(self, size, data)
        return result

    def scatterv(self, root: int = 0, sizes: Optional[Sequence[int]] = None,
                 data: Optional[Sequence[Any]] = None,
                 algorithm: str = "opt"):
        """Process: MPI_Scatterv — per-destination byte counts."""
        from repro.collectives import scatter as scatter_mod

        if sizes is None:
            raise MpiError("scatterv requires per-rank sizes")
        result = yield from scatter_mod.scatter(self, root, list(sizes),
                                                data,
                                                algorithm=algorithm)
        return result

    def gatherv(self, root: int = 0, sizes: Optional[Sequence[int]] = None,
                data: Any = None, algorithm: str = "opt"):
        """Process: MPI_Gatherv — per-source byte counts."""
        from repro.collectives import gather as gather_mod

        if sizes is None:
            raise MpiError("gatherv requires per-rank sizes")
        result = yield from gather_mod.gather(self, root, list(sizes),
                                              data, algorithm=algorithm)
        return result

    def scan(self, nbytes: Optional[int] = None,
             count: Optional[int] = None, datatype: Datatype = BYTE,
             op: Op = SUM, data: Any = None):
        """Process: MPI_Scan (inclusive prefix reduction)."""
        from repro.collectives import scan as scan_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scan_mod.scan(self, size, op, data)
        return result

    def reduce_scatter(self, nbytes: Optional[int] = None,
                       count: Optional[int] = None,
                       datatype: Datatype = BYTE, op: Op = SUM,
                       data: Optional[Sequence[Any]] = None):
        """Process: MPI_Reduce_scatter (equal block sizes)."""
        from repro.collectives import scan as scan_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scan_mod.reduce_scatter(self, size, op,
                                                    data)
        return result

    def alltoall(self, nbytes: Optional[int] = None,
                 count: Optional[int] = None, datatype: Datatype = BYTE,
                 data: Optional[Sequence[Any]] = None):
        """Process: all-to-all personalized = parallel one-to-all from
        every node (paper section 5.2)."""
        from repro.collectives import alltoall as alltoall_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from alltoall_mod.alltoall(self, size, data)
        return result

    # -- communicator management ---------------------------------------------
    def dup(self) -> "Communicator":
        """MPI_Comm_dup (same group, fresh context).

        Deterministic context derivation keeps ranks consistent as long
        as every rank performs communicator operations in the same
        order — which MPI requires anyway.
        """
        return Communicator(self.engine, self.group,
                            self.context * 64 + next(self._derived),
                            torus=self.torus)

    def create(self, ranks: Sequence[int]) -> Optional["Communicator"]:
        """MPI_Comm_create over a subset of *this* communicator's ranks.

        Returns None on ranks outside the new group.
        """
        new_group = self.group.subset(ranks)
        context = self.context * 64 + next(self._derived)
        if not new_group.contains(self.engine.rank):
            return None
        return Communicator(self.engine, new_group, context, torus=None)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"context={self.context})"
        )
