"""The MPI communicator.

A :class:`Communicator` binds a process group to a context (so traffic
in different communicators never matches) and exposes point-to-point
and collective operations.  Collective algorithms dispatch to the
torus-aware implementations in :mod:`repro.collectives` when the
communicator spans the whole mesh in rank order (the paper's case);
sub-communicators fall back to generic binomial trees.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence

from repro.core.engine import MessagingEngine
from repro.core.message import (
    ANY_SOURCE,
    ANY_TAG,
    RecvRequest,
    SendRequest,
)
from repro.errors import (
    MessagingError,
    MpiError,
    MpiProcFailed,
    MpiRevoked,
    ViaError,
)
from repro.mpi.datatypes import BYTE, Datatype
from repro.mpi.group import Group
from repro.mpi.op import NULL, Op, SUM
from repro.mpi.request import waitall
from repro.topology.torus import Torus


def _resolve_bytes(nbytes: Optional[int], count: Optional[int],
                   datatype: Datatype) -> int:
    if nbytes is None and count is None:
        raise MpiError("specify nbytes or count")
    if nbytes is not None and count is not None:
        raise MpiError("specify nbytes or count, not both")
    if nbytes is not None:
        if nbytes < 0:
            raise MpiError(f"negative message size {nbytes}")
        return int(nbytes)
    return datatype.bytes_for(count)


class Communicator:
    """One rank's handle on a communication context."""

    def __init__(self, engine: MessagingEngine, group: Group,
                 context: int, torus: Optional[Torus] = None) -> None:
        if not group.contains(engine.rank):
            raise MpiError(
                f"engine rank {engine.rank} not in group {group.ranks()}"
            )
        self.engine = engine
        self.group = group
        self.context = context
        self.rank = group.local_rank(engine.rank)
        self.size = group.size
        #: Mesh geometry, when the communicator maps 1:1 onto the torus.
        self.torus = torus
        self._derived = itertools.count(1)
        #: ULFM recovery epoch: 0 at creation, bumped by each
        #: :meth:`shrink` so post-recovery communicators are
        #: distinguishable in diagnostics.
        self.epoch = 0
        #: Agreement round counter (every rank calls agree/shrink in
        #: the same order — the usual MPI collective-call discipline —
        #: so counters stay synchronized without negotiation).
        self._agree_seq = 0
        #: Collective execution tier: ``"host"`` (user-level trees),
        #: ``"kernel"`` (interrupt-level engine) or ``"nic"``
        #: (NIC-resident engine).  See :meth:`set_collective_tier`.
        self._coll_tier = "host"

    # -- contexts ----------------------------------------------------------
    @property
    def _pt2pt_context(self) -> int:
        return 2 * self.context

    @property
    def _coll_context(self) -> int:
        return 2 * self.context + 1

    def _world(self, rank: int) -> int:
        if rank == ANY_SOURCE:
            return ANY_SOURCE
        return self.group.world_rank(rank)

    # -- ULFM entry checks -------------------------------------------------
    def _check_ft(self, peer_world: Optional[int] = None) -> None:
        """Raise instead of hanging when known failure state dooms the
        operation (no-op unless node faults are configured)."""
        engine = self.engine
        if not engine._ft:
            return
        if self.context in engine.revoked:
            raise MpiRevoked(
                f"rank {self.rank}: communicator context {self.context} "
                f"revoked"
            )
        dead = engine._dead_peers
        if not dead:
            return
        if engine.rank in dead:
            raise MpiProcFailed(
                f"rank {self.rank}: this node has crashed",
                dead_rank=engine.rank,
            )
        if peer_world is not None and peer_world in dead:
            raise MpiProcFailed(
                f"rank {self.rank}: operation names failed rank "
                f"{self.group.local_rank(peer_world)} "
                f"(world {peer_world})",
                dead_rank=peer_world,
            )

    def _check_ft_collective(self) -> None:
        """Collective entry check: every group member must be alive."""
        engine = self.engine
        if not engine._ft:
            return
        self._check_ft()
        dead = [r for r in self.group.ranks() if r in engine._dead_peers]
        if dead:
            raise MpiProcFailed(
                f"rank {self.rank}: collective on communicator with "
                f"failed world rank(s) {dead}",
                dead_rank=dead[0],
            )

    @property
    def is_whole_torus(self) -> bool:
        """True when ranks are the identity map onto the mesh."""
        return (
            self.torus is not None
            and self.size == self.torus.size
            and self.group.ranks() == tuple(range(self.size))
        )

    # -- point-to-point ----------------------------------------------------
    def isend(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None) -> SendRequest:
        """MPI_Isend (returns immediately with a request handle).

        Non-contiguous (derived) datatypes pay a packing copy before
        the data hits the wire.
        """
        size = _resolve_bytes(nbytes, count, datatype)
        pack = datatype.pack_bytes_for(count) if count is not None else 0
        self._check_ft(self._world(dest))
        return self.engine.isend(self._world(dest), tag,
                                 self._pt2pt_context, size, data=data,
                                 pack_bytes=pack)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              nbytes: Optional[int] = None, count: Optional[int] = None,
              datatype: Datatype = BYTE) -> RecvRequest:
        """MPI_Irecv (derived datatypes pay an unpacking copy)."""
        size = _resolve_bytes(nbytes, count, datatype)
        pack = datatype.pack_bytes_for(count) if count is not None else 0
        self._check_ft(
            self._world(source) if source != ANY_SOURCE else None
        )
        return self.engine.irecv(self._world(source), tag,
                                 self._pt2pt_context, size,
                                 unpack_bytes=pack)

    def issend(self, dest: int, tag: int = 0,
               nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               data: Any = None) -> SendRequest:
        """MPI_Issend: completes only once the receiver has matched."""
        size = _resolve_bytes(nbytes, count, datatype)
        self._check_ft(self._world(dest))
        return self.engine.isend(self._world(dest), tag,
                                 self._pt2pt_context, size, data=data,
                                 synchronous=True)

    def ssend(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None):
        """Process: MPI_Ssend (blocking synchronous send)."""
        request = self.issend(dest, tag, nbytes, count, datatype, data)
        yield from request.wait()
        return request

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_Iprobe: (source, tag, nbytes) of the first matching
        queued message, or None."""
        envelope = self.engine.iprobe(self._world(source), tag,
                                      self._pt2pt_context)
        if envelope is None:
            return None
        return (self.group.local_rank(envelope.src_rank),
                envelope.tag, envelope.nbytes)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Process: MPI_Probe — block until a matching message is
        queued; returns (source, tag, nbytes) without consuming it."""
        envelope = yield from self.engine.probe(
            self._world(source), tag, self._pt2pt_context
        )
        return (self.group.local_rank(envelope.src_rank),
                envelope.tag, envelope.nbytes)

    def send(self, dest: int, tag: int = 0, nbytes: Optional[int] = None,
             count: Optional[int] = None, datatype: Datatype = BYTE,
             data: Any = None):
        """Process: MPI_Send (blocking)."""
        request = self.isend(dest, tag, nbytes, count, datatype, data)
        yield from request.wait()
        return request

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             nbytes: Optional[int] = None, count: Optional[int] = None,
             datatype: Datatype = BYTE):
        """Process: MPI_Recv; returns the completed RecvRequest."""
        request = self.irecv(source, tag, nbytes, count, datatype)
        yield from request.wait()
        return request

    def sendrecv(self, dest: int, source: int,
                 send_nbytes: Optional[int] = None,
                 recv_nbytes: Optional[int] = None,
                 send_tag: int = 0, recv_tag: int = ANY_TAG,
                 data: Any = None):
        """Process: MPI_Sendrecv — concurrent send and receive."""
        send_req = self.isend(dest, send_tag, send_nbytes, data=data)
        recv_req = self.irecv(source, recv_tag, recv_nbytes)
        yield from waitall([send_req, recv_req])
        return recv_req

    def send_init(self, dest: int, tag: int = 0,
                  nbytes: Optional[int] = None,
                  count: Optional[int] = None,
                  datatype: Datatype = BYTE, data: Any = None):
        """MPI_Send_init: a restartable persistent send."""
        from repro.mpi.request import PersistentRequest

        return PersistentRequest(
            lambda: self.isend(dest, tag, nbytes, count, datatype, data)
        )

    def recv_init(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                  nbytes: Optional[int] = None,
                  count: Optional[int] = None,
                  datatype: Datatype = BYTE):
        """MPI_Recv_init: a restartable persistent receive."""
        from repro.mpi.request import PersistentRequest

        return PersistentRequest(
            lambda: self.irecv(source, tag, nbytes, count, datatype)
        )

    # -- internal pt2pt on the collective context -----------------------------
    def coll_isend(self, dest: int, tag: int, nbytes: int,
                   data: Any = None, route=None) -> SendRequest:
        # Schedule-time alive check: every collective step funnels
        # through here, so an algorithm aborts cleanly mid-operation
        # (MpiProcFailed) as soon as any group member is declared dead.
        self._check_ft_collective()
        request = self.engine.isend(self._world(dest), tag,
                                    self._coll_context, nbytes, data=data,
                                    route=route)
        self._tag_collective(request)
        return request

    def coll_irecv(self, source: int, tag: int, nbytes: int) -> RecvRequest:
        self._check_ft_collective()
        request = self.engine.irecv(self._world(source), tag,
                                    self._coll_context, nbytes)
        self._tag_collective(request)
        return request

    def _tag_collective(self, request) -> None:
        """Mark a collective-context request with the group membership.

        The engine's death-notice handler fails every tagged request
        whose group contains the dead rank — a collective is doomed by
        *any* member death (the dead rank may be an interior relay of
        the algorithm), even when this particular request's direct
        partner is alive.
        """
        if self.engine._ft:
            members = self.__dict__.get("_ft_members")
            if members is None:
                members = frozenset(self.group.ranks())
                self._ft_members = members
            request.ft_members = members

    # -- collective tier selection ---------------------------------------------
    COLLECTIVE_TIERS = ("host", "kernel", "nic")

    @property
    def collective_tier(self) -> str:
        """Active collective execution tier (``host|kernel|nic``)."""
        return self._coll_tier

    def set_collective_tier(self, tier: str) -> str:
        """Route barrier/bcast/reduce/allreduce through ``tier``.

        ``"host"`` is the default user-level tree implementation.
        ``"kernel"`` and ``"nic"`` require the whole-torus communicator
        and the matching engine enabled on this rank's device
        (:meth:`~repro.via.device.ViaDevice.enable_kernel_collectives`
        / :meth:`~repro.via.device.ViaDevice.enable_nic_collectives`).
        Collectives without an offloaded equivalent (scatter, gather,
        allgather) always run on the host tier.
        """
        if tier not in self.COLLECTIVE_TIERS:
            raise MpiError(
                f"unknown collective tier {tier!r} "
                f"(have: {', '.join(self.COLLECTIVE_TIERS)})"
            )
        if tier != "host":
            if not self.is_whole_torus:
                raise MpiError(
                    f"rank {self.rank}: {tier} collectives need the "
                    f"whole-torus communicator (offload trees are mesh "
                    f"geometry)"
                )
            device = getattr(self.engine, "device", None)
            attr = ("kernel_collective" if tier == "kernel"
                    else "nic_collective")
            if device is None or getattr(device, attr, None) is None:
                raise MpiError(
                    f"rank {self.rank}: {tier} collectives not enabled "
                    f"on this node's device (call enable_"
                    f"{'kernel' if tier == 'kernel' else 'nic'}"
                    f"_collectives first)"
                )
        self._coll_tier = tier
        return tier

    def _offload_collective(self, mode: str, root: int, nbytes: int,
                            op: Optional[Op], data: Any):
        """Process: one collective on the kernel or NIC engine.

        A mid-collective death surfaces from the offload engines as
        :class:`~repro.errors.ViaError`; re-checking the failure state
        translates it to the ULFM ``MpiProcFailed`` contract whenever a
        group member is known dead (the death callbacks run before the
        waiter resumes, so the engine's dead set is already updated).
        """
        self._check_ft_collective()
        device = self.engine.device
        tier = self._coll_tier
        try:
            if tier == "kernel":
                engine = device.kernel_collective
                if mode == "bcast":
                    # NULL combine is None-transparent, so the root's
                    # payload is the unique non-None subtree value.
                    result = yield from engine.global_sum(
                        data if self.rank == root else None, NULL,
                        nbytes=nbytes)
                else:
                    result = yield from engine.global_sum(
                        data, op, nbytes=nbytes)
                    if mode == "reduce" and self.rank != root:
                        result = None
            else:
                engine = device.nic_collective
                result = yield from engine.collective(
                    mode, root, data, op, nbytes)
        except ViaError:
            self._check_ft_collective()
            raise
        return result

    # -- collectives ----------------------------------------------------------
    def bcast(self, root: int = 0, nbytes: Optional[int] = None,
              count: Optional[int] = None, datatype: Datatype = BYTE,
              data: Any = None):
        """Process: MPI_Bcast; returns the broadcast data."""
        from repro.collectives import broadcast

        size = _resolve_bytes(nbytes, count, datatype)
        if self._coll_tier != "host" and self.is_whole_torus:
            result = yield from self._offload_collective(
                "bcast", root, size, None, data)
            return result
        result = yield from broadcast.bcast(self, root, size, data)
        return result

    def reduce(self, root: int = 0, nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               op: Op = SUM, data: Any = None):
        """Process: MPI_Reduce; root gets the combined value."""
        from repro.collectives import reduce as reduce_mod

        size = _resolve_bytes(nbytes, count, datatype)
        if self._coll_tier != "host" and self.is_whole_torus:
            result = yield from self._offload_collective(
                "reduce", root, size, op, data)
            return result
        result = yield from reduce_mod.reduce(self, root, size, op, data)
        return result

    def allreduce(self, nbytes: Optional[int] = None,
                  count: Optional[int] = None, datatype: Datatype = BYTE,
                  op: Op = SUM, data: Any = None):
        """Process: MPI_Allreduce (the paper's global combining)."""
        from repro.collectives import combine

        size = _resolve_bytes(nbytes, count, datatype)
        if self._coll_tier != "host" and self.is_whole_torus:
            result = yield from self._offload_collective(
                "combine", 0, size, op, data)
            return result
        result = yield from combine.allreduce(self, size, op, data)
        return result

    def barrier(self):
        """Process: MPI_Barrier = global combine with a null reduction
        (paper section 5.2)."""
        from repro.collectives import combine

        if self._coll_tier != "host" and self.is_whole_torus:
            yield from self._offload_collective("combine", 0, 0, NULL,
                                                None)
            return
        yield from combine.allreduce(self, 0, NULL, None)

    def scatter(self, root: int = 0, nbytes: Optional[int] = None,
                count: Optional[int] = None, datatype: Datatype = BYTE,
                data: Optional[Sequence[Any]] = None,
                algorithm: str = "opt"):
        """Process: one-to-all personalized communication.

        ``algorithm`` selects the paper's ``"sdf"`` or ``"opt"``
        scheduler (section 5.2).  Returns this rank's slice.
        """
        from repro.collectives import scatter as scatter_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scatter_mod.scatter(self, root, size, data,
                                                algorithm=algorithm)
        return result

    def gather(self, root: int = 0, nbytes: Optional[int] = None,
               count: Optional[int] = None, datatype: Datatype = BYTE,
               data: Any = None, algorithm: str = "opt"):
        """Process: all-to-one personalized (reverse of scatter)."""
        from repro.collectives import gather as gather_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from gather_mod.gather(self, root, size, data,
                                              algorithm=algorithm)
        return result

    def allgather(self, nbytes: Optional[int] = None,
                  count: Optional[int] = None, datatype: Datatype = BYTE,
                  data: Any = None):
        """Process: MPI_Allgather; returns the per-rank list."""
        from repro.collectives import allgather as allgather_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from allgather_mod.allgather(self, size, data)
        return result

    def scatterv(self, root: int = 0, sizes: Optional[Sequence[int]] = None,
                 data: Optional[Sequence[Any]] = None,
                 algorithm: str = "opt"):
        """Process: MPI_Scatterv — per-destination byte counts."""
        from repro.collectives import scatter as scatter_mod

        if sizes is None:
            raise MpiError("scatterv requires per-rank sizes")
        result = yield from scatter_mod.scatter(self, root, list(sizes),
                                                data,
                                                algorithm=algorithm)
        return result

    def gatherv(self, root: int = 0, sizes: Optional[Sequence[int]] = None,
                data: Any = None, algorithm: str = "opt"):
        """Process: MPI_Gatherv — per-source byte counts."""
        from repro.collectives import gather as gather_mod

        if sizes is None:
            raise MpiError("gatherv requires per-rank sizes")
        result = yield from gather_mod.gather(self, root, list(sizes),
                                              data, algorithm=algorithm)
        return result

    def scan(self, nbytes: Optional[int] = None,
             count: Optional[int] = None, datatype: Datatype = BYTE,
             op: Op = SUM, data: Any = None):
        """Process: MPI_Scan (inclusive prefix reduction)."""
        from repro.collectives import scan as scan_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scan_mod.scan(self, size, op, data)
        return result

    def reduce_scatter(self, nbytes: Optional[int] = None,
                       count: Optional[int] = None,
                       datatype: Datatype = BYTE, op: Op = SUM,
                       data: Optional[Sequence[Any]] = None):
        """Process: MPI_Reduce_scatter (equal block sizes)."""
        from repro.collectives import scan as scan_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from scan_mod.reduce_scatter(self, size, op,
                                                    data)
        return result

    def alltoall(self, nbytes: Optional[int] = None,
                 count: Optional[int] = None, datatype: Datatype = BYTE,
                 data: Optional[Sequence[Any]] = None):
        """Process: all-to-all personalized = parallel one-to-all from
        every node (paper section 5.2)."""
        from repro.collectives import alltoall as alltoall_mod

        size = _resolve_bytes(nbytes, count, datatype)
        result = yield from alltoall_mod.alltoall(self, size, data)
        return result

    # -- ULFM fault tolerance --------------------------------------------------
    @property
    def _ft_context(self) -> int:
        """Wire context for fault-tolerant agreement traffic.

        Negative, so it can never collide with the non-negative
        ``2*context`` / ``2*context + 1`` point-to-point and collective
        contexts; the engine blanket-fails negative-context requests on
        every death notice (agreement trees reshuffle, so a pending
        receive may wait on a rank that will never send) and exempts
        them from revocation (ULFM: agree works on a revoked
        communicator).
        """
        return -2 * self.context - 2

    def revoke(self) -> None:
        """ULFM MPI_Comm_revoke: mark this communicator unusable.

        Propagates out-of-band through the connection manager (the
        moral equivalent of the real system's TCP bootstrap plane, and
        the only channel guaranteed to work when the fabric is down):
        every engine fails its pending requests on this context with
        :class:`MpiRevoked`, and all future operations on any rank's
        handle raise at entry.  Idempotent; survivors typically call
        this after catching :class:`MpiProcFailed`, then
        :meth:`agree` / :meth:`shrink` to recover.
        """
        self.engine.manager.revoke(self.context, self.epoch)

    @property
    def revoked(self) -> bool:
        return self.context in self.engine.revoked

    def agree(self, flag: bool = True):
        """Process: ULFM MPI_Comm_agree.

        Returns the logical AND of every surviving caller's ``flag``;
        all callers that return (rather than dying) return the same
        value, even across failures during the agreement itself.
        Works on a revoked communicator.
        """
        result, _survivors = yield from self._agree(flag)
        return result

    def _agree(self, flag: bool):
        """Process: agreement protocol; returns (flag, survivors).

        A binary tree over the current alive members reduces the flags
        up and broadcasts the decision down.  The first root to decide
        deposits ``(flag, survivors)`` in the connection manager's
        write-once registry — the deposit, not the messages, is the
        authoritative decision, which is what makes the protocol safe
        to retry with a reshuffled tree after mid-agreement deaths:

        * every death notice blanket-fails pending agreement traffic
          (negative context), so no participant waits on a tree peer
          that no longer exists — it re-enters the loop and rebuilds
          the tree from the new alive-set;
        * a fresh deposit "kicks" all still-blocked participants the
          same way, and each retry starts by consulting the registry;
        * result messages only ever carry the deposited value (the
          root sends what it deposited; inner nodes forward verbatim),
          so whichever path a caller completes by, the value agrees.

        Contributions and results use distinct tags (``2*seq`` /
        ``2*seq + 1``) so a stale contribution from an earlier attempt
        can never be mistaken for a decision.
        """
        engine = self.engine
        manager = engine.manager
        self._agree_seq += 1
        seq = self._agree_seq
        key = (self.context, seq)
        context = self._ft_context
        value = bool(flag)
        while True:
            decided = manager.agreements.get(key)
            if decided is not None:
                return decided
            if engine.rank in engine._dead_peers:
                raise MpiProcFailed(
                    f"rank {self.rank}: this node has crashed",
                    dead_rank=engine.rank,
                )
            alive = tuple(r for r in self.group.ranks()
                          if r not in engine._dead_peers)
            index = alive.index(engine.rank)
            parent = alive[(index - 1) // 2] if index > 0 else None
            children = [alive[c] for c in (2 * index + 1, 2 * index + 2)
                        if c < len(alive)]
            try:
                subtree = value
                for child in children:
                    request = engine.irecv(child, 2 * seq, context, 64)
                    yield from request.wait()
                    subtree = subtree and bool(request.received_data)
                if parent is None:
                    decided = manager.deposit_agreement(key, subtree,
                                                        alive)
                    result = decided[0]
                else:
                    up = engine.isend(parent, 2 * seq, context, 64,
                                      data=subtree)
                    yield from up.wait()
                    down = engine.irecv(parent, 2 * seq + 1, context, 64)
                    yield from down.wait()
                    result = bool(down.received_data)
                for child in children:
                    engine.isend(child, 2 * seq + 1, context, 64,
                                 data=result)
                decided = manager.agreements.get(key)
                if decided is not None:
                    return decided
                return (result, alive)
            except (MpiError, ViaError, MessagingError):
                continue

    def shrink(self) -> Any:
        """Process: ULFM MPI_Comm_shrink.

        Agrees on the survivor set and returns a new communicator over
        it (derived context, ``epoch + 1``).  The survivor set comes
        from the agreement deposit, so every live caller builds the
        identical group even when their local alive views briefly
        disagree.  The torus geometry is dropped — collectives on the
        shrunken communicator fall back to the generic binomial
        algorithms, exactly like any sub-communicator.
        """
        _flag, survivors = yield from self._agree(True)
        members = [r for r in self.group.ranks() if r in survivors]
        context = self.context * 64 + next(self._derived)
        new_group = self.group.subset(
            self.group.local_rank(world) for world in members
        )
        shrunk = Communicator(self.engine, new_group, context,
                              torus=None)
        shrunk.epoch = self.epoch + 1
        return shrunk

    # -- communicator management ---------------------------------------------
    def dup(self) -> "Communicator":
        """MPI_Comm_dup (same group, fresh context).

        Deterministic context derivation keeps ranks consistent as long
        as every rank performs communicator operations in the same
        order — which MPI requires anyway.
        """
        return Communicator(self.engine, self.group,
                            self.context * 64 + next(self._derived),
                            torus=self.torus)

    def create(self, ranks: Sequence[int]) -> Optional["Communicator"]:
        """MPI_Comm_create over a subset of *this* communicator's ranks.

        Returns None on ranks outside the new group.
        """
        new_group = self.group.subset(ranks)
        context = self.context * 64 + next(self._derived)
        if not new_group.contains(self.engine.rank):
            return None
        return Communicator(self.engine, new_group, context, torus=None)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"context={self.context})"
        )
