"""An MPI 1.1-style message-passing library over the common core.

This is the paper's second messaging system: "an implementation of MPI
specification 1.1 offering wider capabilities to other applications"
(section 1).  The API mirrors MPI's surface, adapted to the simulation
world: operations that block are generator *processes* (``yield from
comm.send(...)``), nonblocking operations return request handles that
are themselves simulation events.

Buffers are described by byte counts (or count x datatype); actual
payloads ride along as optional Python objects — numpy arrays in the
LQCD code — so reductions compute real values while the byte counts
drive the timing model.
"""

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    DOUBLE_COMPLEX,
    FLOAT,
    INT,
    Datatype,
)
from repro.mpi.op import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, Op
from repro.mpi.group import Group
from repro.mpi.communicator import Communicator
from repro.core.message import ANY_SOURCE, ANY_TAG

__all__ = [
    "Datatype",
    "BYTE",
    "INT",
    "FLOAT",
    "DOUBLE",
    "DOUBLE_COMPLEX",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "Group",
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
]
