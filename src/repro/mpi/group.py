"""MPI process groups: ordered sets of world ranks."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import MpiError


class Group:
    """An ordered list of distinct world ranks."""

    def __init__(self, world_ranks: Sequence[int]) -> None:
        ranks = list(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise MpiError("group contains duplicate ranks")
        self._ranks: List[int] = ranks
        self._index = {world: local for local, world in enumerate(ranks)}

    @property
    def size(self) -> int:
        return len(self._ranks)

    def world_rank(self, local: int) -> int:
        if not 0 <= local < self.size:
            raise MpiError(f"group rank {local} out of range [0, {self.size})")
        return self._ranks[local]

    def local_rank(self, world: int) -> int:
        try:
            return self._index[world]
        except KeyError:
            raise MpiError(f"world rank {world} not in group") from None

    def contains(self, world: int) -> bool:
        return world in self._index

    def ranks(self) -> Tuple[int, ...]:
        return tuple(self._ranks)

    def subset(self, locals_: Iterable[int]) -> "Group":
        """MPI_Group_incl."""
        return Group([self.world_rank(i) for i in locals_])

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Group({self._ranks})"
