"""MPI reduction operations.

Each op carries a binary ``combine`` function applied to the payload
objects (numpy-aware: the functions work element-wise on arrays and on
plain scalars alike).  ``None`` payloads are treated as identity-less:
combining with None returns the other operand, which lets timing-only
benchmarks run reductions without materializing data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


def _lift(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    def combined(a: Any, b: Any) -> Any:
        if a is None:
            return b
        if b is None:
            return a
        return fn(a, b)
    return combined


@dataclass(frozen=True)
class Op:
    """A named, commutative reduction operator."""

    name: str
    combine: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.combine(a, b)


SUM = Op("MPI_SUM", _lift(lambda a, b: np.add(a, b)))
PROD = Op("MPI_PROD", _lift(lambda a, b: np.multiply(a, b)))
MAX = Op("MPI_MAX", _lift(lambda a, b: np.maximum(a, b)))
MIN = Op("MPI_MIN", _lift(lambda a, b: np.minimum(a, b)))
LAND = Op("MPI_LAND", _lift(lambda a, b: np.logical_and(a, b)))
LOR = Op("MPI_LOR", _lift(lambda a, b: np.logical_or(a, b)))
BAND = Op("MPI_BAND", _lift(lambda a, b: np.bitwise_and(a, b)))
BOR = Op("MPI_BOR", _lift(lambda a, b: np.bitwise_or(a, b)))

#: Null reduction: used by barrier (global combine with no data).
NULL = Op("MPI_OP_NULL", _lift(lambda a, b: a))
