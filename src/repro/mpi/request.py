"""Request-completion helpers (MPI_Wait / MPI_Waitall / MPI_Test)."""

from __future__ import annotations

from typing import Iterable

from repro.core.message import Request
from repro.sim import AllOf


def wait(request: Request):
    """Process: MPI_Wait."""
    result = yield from request.wait()
    return result


def waitall(requests: Iterable[Request]):
    """Process: MPI_Waitall — block until every request completes.

    Raises the first failure: either thrown by the AllOf when a
    constituent fails mid-wait, or re-raised here for requests that
    had already failed before the call (those are filtered out of the
    AllOf, which would otherwise silently swallow them).
    """
    requests = list(requests)
    pending = [r for r in requests if not r.triggered]
    if pending:
        yield AllOf(pending[0].sim, pending)
    for request in requests:
        if request.triggered and not request.ok:
            raise request.value
    return None


def test(request: Request) -> bool:
    """MPI_Test: has the request completed? (no blocking)."""
    return request.triggered


class PersistentRequest:
    """MPI_Send_init / MPI_Recv_init style persistent operation.

    Captures the operation's arguments once; each :meth:`start` issues
    a fresh underlying request (the real optimization — argument
    validation and setup amortized — is modeled by the QMP layer's
    declared channels; here the value is API fidelity)::

        req = comm.send_init(dest=1, tag=9, nbytes=1024)
        for _ in range(iters):
            req.start()
            yield from req.wait()
    """

    def __init__(self, issue) -> None:
        self._issue = issue
        self._active: Request | None = None

    @property
    def active(self) -> bool:
        return self._active is not None and not self._active.triggered

    def start(self) -> Request:
        """MPI_Start: launch one instance of the operation."""
        if self.active:
            raise RuntimeError(
                "persistent request started while still active"
            )
        self._active = self._issue()
        return self._active

    def wait(self):
        """Process: wait for the active instance; returns its value."""
        if self._active is None:
            raise RuntimeError("persistent request not started")
        result = yield from self._active.wait()
        return result

    @property
    def request(self) -> Request | None:
        """The most recent underlying request (for received_* fields)."""
        return self._active
