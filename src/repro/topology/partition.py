"""Torus partitions: OPT scatter regions and PDES shard slabs.

The first half of this module is the OPT scatter algorithm's region
partition (paper §5.2).  The second half is the spatial shard partition
used by the parallel simulation engine (:mod:`repro.pdes`): contiguous
coordinate slabs along the torus's longest axis, plus the cut-link
enumeration and the conservative-synchronization lookahead bound
derived from those cut links.

OPT scatter region partition (paper §5.2):

The mesh is partitioned into (up to) ``2 * ndim`` roughly equal-size
regions, one per link leaving the root.  Every node lands in a region
whose link is the first hop of some *minimal* path from the root, so a
message for that node leaves the root on its region's link and then
travels within the region on a minimal route, never competing with
traffic of other regions for the root's ports.

The partition is computed greedily: nodes with fewer feasible regions
are placed first, each into its currently smallest feasible region.
For the symmetric tori the paper uses this yields regions balanced to
within one node of ``(p - 1) / k``, which is what OPT's optimality
bound ``T1 = ceil((p-1)/k)`` requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.topology.routing import (
    RouteStep,
    minimal_directions,
    path_via_first_direction,
)
from repro.topology.torus import Direction, Torus


@dataclass
class OptPartition:
    """Result of partitioning a torus around a root node.

    Attributes
    ----------
    torus, root:
        The geometry and the scatter root.
    regions:
        Mapping from root link direction to the sorted list of member
        ranks.
    region_of:
        Mapping from rank to its region's direction (root excluded).
    routes:
        Mapping from rank to the full minimal route from the root that
        starts with the region's link.
    """

    torus: Torus
    root: int
    regions: Dict[Direction, List[int]]
    region_of: Dict[int, Direction]
    routes: Dict[int, List[RouteStep]] = field(repr=False)

    @property
    def num_links(self) -> int:
        return len(self.regions)

    def max_region_size(self) -> int:
        return max((len(m) for m in self.regions.values()), default=0)

    def min_region_size(self) -> int:
        return min((len(m) for m in self.regions.values()), default=0)

    def imbalance(self) -> int:
        """Difference between largest and smallest region."""
        return self.max_region_size() - self.min_region_size()

    def validate(self) -> None:
        """Check the partition invariants; raises on violation."""
        seen = set()
        for direction, members in self.regions.items():
            for rank in members:
                if rank in seen:
                    raise TopologyError(f"rank {rank} in two regions")
                seen.add(rank)
                route = self.routes[rank]
                if not route or route[0].direction != direction:
                    raise TopologyError(
                        f"route of rank {rank} does not start on link "
                        f"{direction}"
                    )
                if len(route) != self.torus.distance(self.root, rank):
                    raise TopologyError(
                        f"route of rank {rank} is not minimal"
                    )
        expected = set(self.torus.ranks()) - {self.root}
        if seen != expected:
            raise TopologyError(
                f"partition covers {len(seen)} nodes, expected {len(expected)}"
            )


def partition_regions(torus: Torus, root: int) -> OptPartition:
    """Partition all non-root nodes into per-link regions (OPT §5.2)."""
    if not 0 <= root < torus.size:
        raise TopologyError(f"root {root} out of range for {torus!r}")
    directions = [
        d for d in torus.directions() if torus.has_neighbor(root, d)
    ]
    if not directions and torus.size > 1:
        raise TopologyError(f"root {root} has no links in {torus!r}")

    # Feasible regions per node: first-step directions of minimal paths.
    candidates: Dict[int, List[Direction]] = {}
    for rank in torus.ranks():
        if rank == root:
            continue
        dirs = [
            d for d in minimal_directions(torus, root, rank)
            if torus.has_neighbor(root, d)
        ]
        if not dirs:  # pragma: no cover - connected torus always has one
            raise TopologyError(f"no minimal first step from {root} to {rank}")
        candidates[rank] = dirs

    # Greedy balanced assignment: most-constrained nodes first; among
    # equally constrained, place far nodes first (they anchor the
    # furthest-distance-first streamlines).
    order = sorted(
        candidates,
        key=lambda r: (len(candidates[r]), -torus.distance(root, r), r),
    )
    regions: Dict[Direction, List[int]] = {d: [] for d in directions}
    region_of: Dict[int, Direction] = {}
    for rank in order:
        best = min(candidates[rank], key=lambda d: (len(regions[d]), d))
        regions[best].append(rank)
        region_of[rank] = best

    routes = {
        rank: path_via_first_direction(torus, root, rank, direction)
        for rank, direction in region_of.items()
    }
    for members in regions.values():
        members.sort()
    partition = OptPartition(torus, root, regions, region_of, routes)
    partition.validate()
    return partition


# ---------------------------------------------------------------------------
# PDES shard partition (spatial slabs for the parallel engine).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CutLink:
    """One torus link whose endpoints live in different shards.

    ``rank``/``direction``/``neighbor`` identify the link exactly as
    the cluster builder wires it (positive-direction orientation, so
    each physical cable appears once); ``name`` matches the builder's
    ``Link.name`` and is the canonical ingress merge key.
    """

    rank: int
    direction: Direction
    neighbor: int

    @property
    def name(self) -> str:
        return f"link[{self.rank}{self.direction}{self.neighbor}]"


@dataclass(frozen=True)
class ShardPlan:
    """Spatial partition of a torus into contiguous coordinate slabs.

    Attributes
    ----------
    dims, wrap:
        The torus geometry the plan was computed for.
    nshards, axis:
        Number of shards and the axis the slabs cut (the longest axis;
        ties break toward the lowest axis index, keeping the plan a
        pure function of the geometry).
    assignment:
        ``assignment[rank]`` is the owning shard id.
    """

    dims: tuple
    wrap: bool
    nshards: int
    axis: int
    assignment: tuple

    def shard_of(self, rank: int) -> int:
        return self.assignment[rank]

    def local_ranks(self, shard_id: int) -> List[int]:
        """Sorted world ranks owned by ``shard_id``."""
        return [rank for rank, owner in enumerate(self.assignment)
                if owner == shard_id]

    def cut_links(self, torus: Torus) -> List[CutLink]:
        """Links crossing a shard boundary, in builder wiring order."""
        cuts: List[CutLink] = []
        for rank in torus.ranks():
            for direction in torus.directions():
                if direction.sign < 0:
                    continue
                if not torus.has_neighbor(rank, direction):
                    continue
                neighbor = torus.neighbor(rank, direction)
                if self.assignment[rank] != self.assignment[neighbor]:
                    cuts.append(CutLink(rank, direction, neighbor))
        return cuts


def make_shard_plan(torus: Torus, nshards: int) -> ShardPlan:
    """Partition ``torus`` into ``nshards`` contiguous slabs.

    The slabs cut the longest axis (most nodes per boundary-free
    volume, fewest cut links); shard ``k`` owns coordinates
    ``[floor(k * n / nshards), floor((k + 1) * n / nshards))`` along
    that axis, so sizes are balanced to within one plane.
    """
    if nshards < 1:
        raise TopologyError(f"need at least 1 shard, got {nshards}")
    axis = max(range(len(torus.dims)), key=lambda a: torus.dims[a])
    extent = torus.dims[axis]
    if nshards > extent:
        raise TopologyError(
            f"cannot cut {nshards} slabs from axis {axis} of {torus!r} "
            f"(extent {extent})"
        )
    owner_of_coord = [
        min(nshards - 1, c * nshards // extent) for c in range(extent)
    ]
    assignment = tuple(
        owner_of_coord[torus.coords(rank)[axis]] for rank in torus.ranks()
    )
    return ShardPlan(tuple(torus.dims), torus.wrap, nshards, axis,
                     assignment)


def shard_lookahead(torus: Torus, plan: ShardPlan, gige) -> float:
    """Conservative-window lookahead for ``plan``'s cut links (us).

    The bound is the minimum wire latency of any cut link — no frame
    committed to a cut link at time ``t`` can arrive before
    ``t + lookahead`` — so windows of this length never deliver into a
    shard's simulated past.  All links share one
    :class:`~repro.hw.params.GigEParams` today, so this is exactly
    ``gige.min_wire_latency()``; the per-link minimum is kept explicit
    so heterogeneous fabrics stay a parameter change, not a redesign.
    """
    cuts = plan.cut_links(torus)
    if not cuts:
        return float("inf")
    return min(gige.min_wire_latency() for _ in cuts)


def region_send_order(partition: OptPartition) -> Dict[Direction, List[int]]:
    """Furthest-Distance-First send order per region (paper §5.2).

    Within a region the root sends the message with the longest
    remaining distance first so messages stream behind each other
    without overtaking; ties break by rank for determinism.
    """
    torus, root = partition.torus, partition.root
    return {
        direction: sorted(
            members,
            key=lambda r: (-torus.distance(root, r), r),
        )
        for direction, members in partition.regions.items()
    }
