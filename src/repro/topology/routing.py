"""Minimal-path routing on the torus.

The paper's kernel-level packet switch routes with a simple
*Shortest-Direction-First* (SDF) rule: among the directions that lie on
a minimal path, choose the one with the smallest number of remaining
steps (§5.1).  These helpers are pure functions over
:class:`~repro.topology.torus.Torus` geometry so both the packet switch
model and the scatter algorithms share one implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.torus import Direction, Torus

#: Hit/miss counters for the module-level routing caches below (the
#: per-pair SDF choice and minimal-direction sets).  Purely
#: observational — the cached functions are pure, so the caches cannot
#: change any simulation result.
CACHE_STATS = {"hits": 0, "misses": 0}

_MINDIR_CACHE: dict = {}
_SDF_CACHE: dict = {}


def clear_caches() -> None:
    """Drop the routing caches and reset :data:`CACHE_STATS`."""
    _MINDIR_CACHE.clear()
    _SDF_CACHE.clear()
    CACHE_STATS["hits"] = 0
    CACHE_STATS["misses"] = 0


@dataclass(frozen=True)
class RouteStep:
    """One hop of a route: the node left, the direction taken."""

    node: int
    direction: Direction


def torus_distance(torus: Torus, src: int, dst: int) -> int:
    """Minimal hop count (paper's ``distance(i)`` in §5.2).

    For a wrapped torus this is
    ``sum_axis min(|d_a - s_a|, dim_a - |d_a - s_a|)``.
    """
    return torus.distance(src, dst)


def minimal_directions(torus: Torus, src: int, dst: int) -> List[Direction]:
    """Directions at ``src`` that lie on some minimal path to ``dst``.

    At an exact half-ring displacement on a wrapped axis *both*
    directions are minimal (the OPT partition exploits this freedom to
    balance its regions).
    """
    key = (torus, src, dst)
    cached = _MINDIR_CACHE.get(key)
    if cached is not None:
        CACHE_STATS["hits"] += 1
        return list(cached)
    CACHE_STATS["misses"] += 1
    out = []
    for axis, delta in enumerate(torus.offset(src, dst)):
        if delta == 0:
            continue
        sign = 1 if delta > 0 else -1
        out.append(Direction(axis, sign))
        extent = torus.dims[axis]
        if torus.wrap and extent > 1 and 2 * abs(delta) == extent:
            out.append(Direction(axis, -sign))
    _MINDIR_CACHE[key] = tuple(out)
    return out


def sdf_next_direction(torus: Torus, src: int, dst: int,
                       forbidden: Sequence[Direction] = ()) -> Optional[Direction]:
    """Shortest-Direction-First choice at ``src`` toward ``dst``.

    Among minimal-path directions (excluding ``forbidden``), picks the
    axis with the *smallest* number of remaining steps, breaking ties by
    lowest axis then positive sign — the deterministic tie-break the
    rest of the package relies on.  Returns ``None`` when ``src == dst``
    or every minimal direction is forbidden.
    """
    # The common caller (the per-frame packet switch) never forbids
    # directions, so that case is memoized; ``forbidden`` changes the
    # answer and bypasses the cache.
    use_cache = not forbidden
    if use_cache:
        key = (torus, src, dst)
        if key in _SDF_CACHE:
            CACHE_STATS["hits"] += 1
            return _SDF_CACHE[key]
        CACHE_STATS["misses"] += 1
    offset = torus.offset(src, dst)
    best: Optional[Tuple[int, int, int]] = None
    best_direction: Optional[Direction] = None
    forbidden_set = set(forbidden)
    for axis, delta in enumerate(offset):
        if delta == 0:
            continue
        direction = Direction(axis, 1 if delta > 0 else -1)
        if direction in forbidden_set:
            continue
        rank = (abs(delta), axis, 0 if delta > 0 else 1)
        if best is None or rank < best:
            best = rank
            best_direction = direction
    if use_cache:
        _SDF_CACHE[key] = best_direction
    return best_direction


def sdf_path(torus: Torus, src: int, dst: int) -> List[RouteStep]:
    """Full SDF route from ``src`` to ``dst`` (empty when equal).

    The path length always equals ``torus.distance(src, dst)`` because
    SDF only ever takes minimal-path directions.
    """
    steps: List[RouteStep] = []
    node = src
    # A minimal path can never exceed the diameter; guard against bugs.
    for _ in range(torus.diameter() + 1):
        if node == dst:
            return steps
        direction = sdf_next_direction(torus, node, dst)
        if direction is None:  # pragma: no cover - defensive
            raise TopologyError(f"SDF stuck at node {node} toward {dst}")
        steps.append(RouteStep(node, direction))
        node = torus.neighbor(node, direction)
    raise TopologyError(
        f"SDF route from {src} to {dst} exceeded diameter "
        f"{torus.diameter()}"
    )  # pragma: no cover - defensive


def alive_path(torus: Torus, src: int, dst: int,
               alive: Callable[[int, Direction], bool],
               ) -> Optional[List[Direction]]:
    """Shortest path from ``src`` to ``dst`` using only live links.

    ``alive(node, direction)`` says whether the link out of ``node`` in
    ``direction`` is usable (fault recovery: dead links are excluded, so
    the result may be non-minimal).  Deterministic breadth-first search:
    nodes expand in FIFO order and directions in the fixed
    :meth:`~repro.topology.torus.Torus.directions` order, so every run
    with the same fault state picks the identical detour.  Returns the
    hop-by-hop direction list (empty when ``src == dst``) or ``None``
    when the live subgraph disconnects the pair.

    Not cached: link health is time-dependent.
    """
    if src == dst:
        return []
    directions = torus.directions()
    parent: dict = {src: None}
    frontier = deque((src,))
    while frontier:
        node = frontier.popleft()
        for direction in directions:
            if not torus.has_neighbor(node, direction):
                continue
            if not alive(node, direction):
                continue
            nxt = torus.neighbor(node, direction)
            if nxt in parent:
                continue
            parent[nxt] = (node, direction)
            if nxt == dst:
                path: List[Direction] = []
                while parent[nxt] is not None:
                    prev, step = parent[nxt]
                    path.append(step)
                    nxt = prev
                path.reverse()
                return path
            frontier.append(nxt)
    return None


def first_step_directions(torus: Torus, root: int, dst: int) -> List[Direction]:
    """Directions in which a minimal path from ``root`` to ``dst`` may start.

    This is the candidate set used by the OPT partition (§5.2): node
    ``dst`` may be placed in any region whose root link is one of these.
    """
    return minimal_directions(torus, root, dst)


def path_via_first_direction(torus: Torus, src: int, dst: int,
                             first: Direction) -> List[RouteStep]:
    """A minimal route that *starts* with ``first`` then follows SDF.

    Raises :class:`TopologyError` if ``first`` is not on a minimal path.
    """
    if first not in minimal_directions(torus, src, dst):
        raise TopologyError(
            f"direction {first} not on a minimal path {src}->{dst}"
        )
    steps = [RouteStep(src, first)]
    node = torus.neighbor(src, first)
    steps.extend(sdf_path(torus, node, dst))
    return steps
