"""Network topology machinery: k-ary n-dimensional tori/meshes and the
switched Clos fabric used by the Myrinet comparator.

The paper's clusters are 3-D tori built from dual-port GigE adapters:
a 4x8x8 (256-node) and a 6x8x8 (384-node) machine, each node wired to
its six nearest neighbors.  Everything here is pure geometry — no
simulation dependencies — so the collective algorithms in
:mod:`repro.collectives` can be analyzed without running the DES.
"""

from repro.topology.torus import Direction, Torus
from repro.topology.routing import (
    RouteStep,
    minimal_directions,
    sdf_next_direction,
    sdf_path,
    torus_distance,
)
from repro.topology.partition import OptPartition, partition_regions
from repro.topology.switched import ClosFabric

__all__ = [
    "Torus",
    "Direction",
    "RouteStep",
    "torus_distance",
    "minimal_directions",
    "sdf_next_direction",
    "sdf_path",
    "OptPartition",
    "partition_regions",
    "ClosFabric",
]
