"""k-ary n-dimensional torus (mesh with wraparound links).

Ranks are laid out in row-major order over the coordinate tuple, the
same convention the paper uses when it names a node by ``(x, y, z)``.
Following the paper, "mesh" always means mesh *with wraparound* (i.e. a
torus) unless ``wrap=False`` is given explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TopologyError

Coords = Tuple[int, ...]


@dataclass(frozen=True, order=True)
class Direction:
    """One of the 2*ndim mesh directions: ``axis`` and ``sign`` (+1/-1).

    ``port`` is the conventional adapter-port numbering used throughout
    the package: ``2*axis`` for the positive direction, ``2*axis + 1``
    for the negative one — i.e. the +x/-x pair is the first dual-port
    adapter, +y/-y the second, +z/-z the third.
    """

    axis: int
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise TopologyError(f"direction sign must be +-1, got {self.sign}")
        if self.axis < 0:
            raise TopologyError(f"direction axis must be >= 0, got {self.axis}")

    @property
    def port(self) -> int:
        return 2 * self.axis + (0 if self.sign > 0 else 1)

    @property
    def opposite(self) -> "Direction":
        return Direction(self.axis, -self.sign)

    @classmethod
    def from_port(cls, port: int) -> "Direction":
        if port < 0:
            raise TopologyError(f"port must be >= 0, got {port}")
        return cls(port // 2, 1 if port % 2 == 0 else -1)

    def __str__(self) -> str:
        return f"{'+' if self.sign > 0 else '-'}{'xyzw'[self.axis] if self.axis < 4 else self.axis}"


class Torus:
    """Geometry of a k-ary n-dim mesh, optionally with wraparound.

    Parameters
    ----------
    dims:
        Size along each axis, e.g. ``(4, 8, 8)`` for the paper's
        256-node machine.
    wrap:
        Whether wraparound (torus) links exist.  The paper's clusters
        are tori.
    """

    def __init__(self, dims: Sequence[int], wrap: bool = True) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims:
            raise TopologyError("torus needs at least one dimension")
        if any(d < 1 for d in dims):
            raise TopologyError(f"all dimensions must be >= 1, got {dims}")
        self.dims: Coords = dims
        self.wrap = wrap
        self._strides = []
        stride = 1
        for d in reversed(dims):
            self._strides.append(stride)
            stride *= d
        self._strides.reverse()
        self.size = stride
        # Geometry is immutable, so displacement queries are memoized
        # per instance; the packet switch asks for the same (src, dst)
        # pairs millions of times during a bandwidth sweep.
        self._offset_cache: dict = {}
        self._distance_cache: dict = {}
        self.cache_stats = {"hits": 0, "misses": 0}

    # -- basic properties -----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def num_ports(self) -> int:
        """Links per node: 2 per axis (axes of extent 1 still count 0).

        An axis of extent 1 has no neighbors; extent 2 without wrap has
        one.  ``num_ports`` reports the *maximum* degree, which for the
        paper's tori (all extents >= 2, wrapped) equals ``2 * ndim``.
        """
        return 2 * sum(1 for d in self.dims if d > 1)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        shape = "x".join(str(d) for d in self.dims)
        kind = "torus" if self.wrap else "mesh"
        return f"Torus({shape} {kind}, {self.size} nodes)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Torus)
            and self.dims == other.dims
            and self.wrap == other.wrap
        )

    def __hash__(self) -> int:
        return hash((self.dims, self.wrap))

    # -- rank/coordinate mapping ----------------------------------------------
    def coords(self, rank: int) -> Coords:
        """Coordinates of ``rank`` (row-major)."""
        if not 0 <= rank < self.size:
            raise TopologyError(f"rank {rank} out of range [0, {self.size})")
        out = []
        for dim, stride in zip(self.dims, self._strides):
            out.append((rank // stride) % dim)
        return tuple(out)

    def rank(self, coords: Sequence[int]) -> int:
        """Rank of the node at ``coords`` (coordinates must be in range)."""
        if len(coords) != self.ndim:
            raise TopologyError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        rank = 0
        for c, dim, stride in zip(coords, self.dims, self._strides):
            if not 0 <= c < dim:
                raise TopologyError(f"coordinate {c} out of range [0, {dim})")
            rank += c * stride
        return rank

    def wrap_coords(self, coords: Sequence[int]) -> Coords:
        """Reduce arbitrary integer coordinates modulo the torus dims."""
        if not self.wrap:
            raise TopologyError("wrap_coords on a non-wrapping mesh")
        return tuple(c % d for c, d in zip(coords, self.dims))

    def ranks(self) -> Iterator[int]:
        return iter(range(self.size))

    # -- neighbors ----------------------------------------------------------
    def directions(self) -> List[Direction]:
        """All directions with a neighbor (skips axes of extent 1)."""
        out = []
        for axis, extent in enumerate(self.dims):
            if extent > 1:
                out.append(Direction(axis, +1))
                out.append(Direction(axis, -1))
        return out

    def neighbor(self, rank: int, direction: Direction) -> int:
        """Neighbor rank one hop away, or raise if none exists."""
        coords = list(self.coords(rank))
        axis, sign = direction.axis, direction.sign
        if axis >= self.ndim:
            raise TopologyError(f"axis {axis} out of range for {self!r}")
        extent = self.dims[axis]
        if extent == 1:
            raise TopologyError(f"axis {axis} has extent 1: no neighbor")
        c = coords[axis] + sign
        if self.wrap:
            c %= extent
        elif not 0 <= c < extent:
            raise TopologyError(
                f"no neighbor of rank {rank} in direction {direction}"
            )
        coords[axis] = c
        return self.rank(coords)

    def has_neighbor(self, rank: int, direction: Direction) -> bool:
        if direction.axis >= self.ndim:
            return False
        extent = self.dims[direction.axis]
        if extent == 1:
            return False
        if self.wrap:
            return True
        c = self.coords(rank)[direction.axis] + direction.sign
        return 0 <= c < extent

    def neighbors(self, rank: int) -> List[Tuple[Direction, int]]:
        """All (direction, neighbor rank) pairs for ``rank``."""
        out = []
        for direction in self.directions():
            if self.has_neighbor(rank, direction):
                out.append((direction, self.neighbor(rank, direction)))
        return out

    # -- displacement -----------------------------------------------------------
    def offset(self, src: int, dst: int) -> Coords:
        """Signed minimal per-axis displacement from ``src`` to ``dst``.

        On a wrapped axis the displacement is the shorter way around;
        an exact half-way tie resolves to the positive direction.
        """
        cached = self._offset_cache.get((src, dst))
        if cached is not None:
            self.cache_stats["hits"] += 1
            return cached
        self.cache_stats["misses"] += 1
        sc, dc = self.coords(src), self.coords(dst)
        out = []
        for s, d, extent in zip(sc, dc, self.dims):
            delta = d - s
            if self.wrap and extent > 1:
                delta %= extent
                if delta > extent / 2:
                    delta -= extent
                elif delta == extent / 2:
                    delta = extent // 2  # tie: go positive
            out.append(delta)
        result = tuple(out)
        self._offset_cache[(src, dst)] = result
        return result

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between ``src`` and ``dst``."""
        cached = self._distance_cache.get((src, dst))
        if cached is not None:
            return cached
        result = sum(abs(delta) for delta in self.offset(src, dst))
        self._distance_cache[(src, dst)] = result
        return result

    def diameter(self) -> int:
        """Maximum distance between any two nodes."""
        if self.wrap:
            return sum(d // 2 for d in self.dims)
        return sum(d - 1 for d in self.dims)

    # -- projections ------------------------------------------------------------
    def project(self, keep_axes: Sequence[int]) -> "Torus":
        """Sub-torus over a subset of axes (paper: 4-D machine projected
        to various 3-D configurations)."""
        keep = tuple(keep_axes)
        if not keep or any(not 0 <= a < self.ndim for a in keep):
            raise TopologyError(f"bad projection axes {keep} for {self!r}")
        return Torus([self.dims[a] for a in keep], wrap=self.wrap)
