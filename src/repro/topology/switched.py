"""Switched (full-bisection Clos) fabric geometry.

The paper's Myrinet comparator is a 128-node cluster on a Myrinet 2000
switch with a full-bisection Clos topology (§3).  For the Table 1
experiment we only need its *behavioral* properties: every pair of
hosts is connected through the fabric with a uniform small hop count,
and the full bisection means no internal contention — only the
endpoints' injection/ejection ports can saturate.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import TopologyError


class ClosFabric:
    """A three-stage folded-Clos abstraction.

    Parameters
    ----------
    num_hosts:
        Number of attached hosts.
    radix:
        Switch element port count (Myrinet 2000 line cards were
        16-port; the default mirrors that).
    """

    def __init__(self, num_hosts: int, radix: int = 16) -> None:
        if num_hosts < 1:
            raise TopologyError(f"need at least one host, got {num_hosts}")
        if radix < 2:
            raise TopologyError(f"radix must be >= 2, got {radix}")
        self.num_hosts = num_hosts
        self.radix = radix
        #: Leaf switches, each serving radix/2 hosts (other half uplinks).
        hosts_per_leaf = max(1, radix // 2)
        self.num_leaves = math.ceil(num_hosts / hosts_per_leaf)
        self.hosts_per_leaf = hosts_per_leaf

    @property
    def size(self) -> int:
        return self.num_hosts

    def leaf_of(self, host: int) -> int:
        if not 0 <= host < self.num_hosts:
            raise TopologyError(f"host {host} out of range")
        return host // self.hosts_per_leaf

    def switch_hops(self, src: int, dst: int) -> int:
        """Number of switch elements traversed between two hosts.

        Same leaf: one element.  Different leaves: leaf -> spine ->
        leaf, i.e. three elements (full bisection guarantees a
        non-blocking spine path).
        """
        if src == dst:
            return 0
        return 1 if self.leaf_of(src) == self.leaf_of(dst) else 3

    def is_full_bisection(self) -> bool:
        """The model assumes full bisection by construction."""
        return True

    def all_pairs_max_hops(self) -> int:
        return 1 if self.num_leaves == 1 else 3

    def ports(self) -> List[Tuple[int, int]]:
        """(host, leaf switch) attachment list."""
        return [(h, self.leaf_of(h)) for h in range(self.num_hosts)]
