"""QMP message-memory and message-handle objects.

In real QMP, applications *declare* message memory and directional
channels once, then ``QMP_start``/``QMP_wait`` them every iteration —
persistent communication, which is how LQCD halo exchanges amortize
setup.  These classes model those declared objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.errors import QmpError


@dataclass
class MsgMem:
    """Declared message memory: a byte extent plus optional payload."""

    nbytes: int
    data: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise QmpError(f"negative msgmem size {self.nbytes}")


class MsgHandle:
    """A declared directional send or receive channel.

    Created by :meth:`QMPMachine.declare_send_relative` or
    :meth:`QMPMachine.declare_receive_relative`; restartable.
    """

    def __init__(self, machine, msgmem: MsgMem, axis: int, sign: int,
                 is_send: bool) -> None:
        self.machine = machine
        self.msgmem = msgmem
        self.axis = axis
        self.sign = sign
        self.is_send = is_send
        #: Fixed peer for point-to-point declared channels (axis < 0).
        self.peer_rank = None
        self._request = None

    @property
    def started(self) -> bool:
        return self._request is not None

    def start(self) -> None:
        """QMP_start: launch the declared operation (non-blocking)."""
        if self._request is not None:
            raise QmpError("handle already started; wait() it first")
        self._request = self.machine._start_handle(self)

    def wait(self):
        """Process: QMP_wait — block until the operation completes."""
        if self._request is None:
            raise QmpError("handle not started")
        request = self._request
        yield from request.wait()
        self._request = None
        if not self.is_send:
            self.msgmem.data = request.received_data
        return self.msgmem.data


class MultiHandle:
    """QMP_declare_multiple: start/wait a set of handles together."""

    def __init__(self, handles: List[MsgHandle]) -> None:
        if not handles:
            raise QmpError("empty multi-handle")
        self.handles = list(handles)

    def start(self) -> None:
        for handle in self.handles:
            handle.start()

    def wait(self):
        """Process: wait for every constituent handle."""
        for handle in self.handles:
            yield from handle.wait()
