"""QMP — the QCD Message Passing API (paper section 5).

QMP is the paper's domain-specific messaging system: "a subset of
functionalities of MPI" focused on what Lattice QCD codes need —
logical mesh topology queries, declared (persistent) nearest-neighbor
message channels, and global reductions.  It shares the messaging core
with the MPI implementation, so the two "perform the same on key
benchmarks" by construction here too.

The API mirrors the real libqmp's C surface in pythonic form:
``declare_msgmem`` / ``declare_send_relative`` /
``declare_receive_relative`` / ``start`` / ``wait`` plus
``sum_double``, ``max_double``, ``broadcast`` and ``barrier``.
"""

from repro.qmp.api import QMPMachine
from repro.qmp.msgmem import MsgMem, MsgHandle, MultiHandle

__all__ = ["QMPMachine", "MsgMem", "MsgHandle", "MultiHandle"]
