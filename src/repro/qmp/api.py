"""The QMP machine interface.

One :class:`QMPMachine` per rank wraps the node's communicator (and
through it the shared messaging core).  Nearest-neighbor traffic uses a
dedicated tag space; reductions use the paper's mesh algorithms.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

import numpy as np

from repro.errors import QmpError
from repro.mpi.communicator import Communicator
from repro.mpi.op import MAX, MIN, SUM
from repro.qmp.msgmem import MsgHandle, MsgMem, MultiHandle
from repro.topology.torus import Direction

#: Tag base for declared relative channels: tag encodes (axis, sign)
#: so simultaneous exchanges on all axes never cross-match.
_TAG_RELATIVE = 200
#: Tag for declared point-to-point channels (declare_send_to).
_TAG_DIRECT = 240


class QMPMachine:
    """Per-rank QMP state (mirrors libqmp's global machine)."""

    def __init__(self, comm: Communicator) -> None:
        if comm.torus is None:
            raise QmpError("QMP requires a mesh communicator")
        self.comm = comm
        self.torus = comm.torus

    # -- topology queries (QMP_get_*) ---------------------------------------
    @property
    def rank(self) -> int:
        """QMP_get_node_number."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """QMP_get_number_of_nodes."""
        return self.comm.size

    def logical_dimensions(self) -> Tuple[int, ...]:
        """QMP_get_logical_dimensions."""
        return self.torus.dims

    def logical_coordinates(self) -> Tuple[int, ...]:
        """QMP_get_logical_coordinates_from(this node)."""
        return self.torus.coords(self.comm.group.world_rank(self.comm.rank))

    def neighbor_rank(self, axis: int, sign: int) -> int:
        """Rank one hop along (axis, sign)."""
        world = self.comm.group.world_rank(self.comm.rank)
        neighbor = self.torus.neighbor(world, Direction(axis, sign))
        return self.comm.group.local_rank(neighbor)

    # -- declared message channels -----------------------------------------
    def declare_msgmem(self, nbytes: int, data: Any = None) -> MsgMem:
        """QMP_declare_msgmem."""
        return MsgMem(nbytes, data)

    def declare_send_relative(self, msgmem: MsgMem, axis: int,
                              sign: int) -> MsgHandle:
        """QMP_declare_send_relative."""
        self._check_axis(axis, sign)
        return MsgHandle(self, msgmem, axis, sign, is_send=True)

    def declare_receive_relative(self, msgmem: MsgMem, axis: int,
                                 sign: int) -> MsgHandle:
        """QMP_declare_receive_relative."""
        self._check_axis(axis, sign)
        return MsgHandle(self, msgmem, axis, sign, is_send=False)

    def declare_multiple(self, handles: Sequence[MsgHandle]) -> MultiHandle:
        """QMP_declare_multiple."""
        return MultiHandle(list(handles))

    def declare_send_to(self, msgmem: MsgMem, rank: int) -> MsgHandle:
        """QMP_declare_send_to: a declared channel to an arbitrary
        rank (routed through the mesh by the kernel switch)."""
        handle = MsgHandle(self, msgmem, axis=-1, sign=+1, is_send=True)
        handle.peer_rank = rank
        return handle

    def declare_receive_from(self, msgmem: MsgMem, rank: int) -> MsgHandle:
        """QMP_declare_receive_from."""
        handle = MsgHandle(self, msgmem, axis=-1, sign=-1,
                           is_send=False)
        handle.peer_rank = rank
        return handle

    def _check_axis(self, axis: int, sign: int) -> None:
        if not 0 <= axis < self.torus.ndim:
            raise QmpError(f"axis {axis} out of range for {self.torus!r}")
        if sign not in (-1, 1):
            raise QmpError(f"sign must be +-1, got {sign}")

    def _start_handle(self, handle: MsgHandle):
        """Launch a declared operation; returns the core request."""
        if handle.axis < 0:
            # Point-to-point declared channel (declare_send_to /
            # declare_receive_from): a fixed tag pairs the endpoints.
            peer = handle.peer_rank
            if handle.is_send:
                return self.comm.isend(peer, _TAG_DIRECT,
                                       nbytes=handle.msgmem.nbytes,
                                       data=handle.msgmem.data)
            return self.comm.irecv(peer, _TAG_DIRECT,
                                   nbytes=handle.msgmem.nbytes)
        tag = _TAG_RELATIVE + 4 * handle.axis + (0 if handle.sign > 0 else 2)
        if handle.is_send:
            peer = self.neighbor_rank(handle.axis, handle.sign)
            return self.comm.isend(peer, tag, nbytes=handle.msgmem.nbytes,
                                   data=handle.msgmem.data)
        # A receive from direction (axis, sign) matches the peer's send
        # in direction (axis, -sign): same tag from the peer's side.
        peer = self.neighbor_rank(handle.axis, handle.sign)
        peer_tag = _TAG_RELATIVE + 4 * handle.axis + (0 if handle.sign < 0 else 2)
        return self.comm.irecv(peer, peer_tag,
                               nbytes=handle.msgmem.nbytes)

    # -- collectives -------------------------------------------------------
    def sum_double(self, value: float):
        """Process: QMP_sum_double."""
        result = yield from self.comm.allreduce(
            nbytes=8, op=SUM, data=np.float64(value)
        )
        return float(result)

    def sum_double_array(self, values: "np.ndarray"):
        """Process: QMP_sum_double_array."""
        arr = np.asarray(values, dtype=np.float64)
        result = yield from self.comm.allreduce(
            nbytes=arr.nbytes, op=SUM, data=arr
        )
        return result

    def max_double(self, value: float):
        """Process: QMP_max_double."""
        result = yield from self.comm.allreduce(
            nbytes=8, op=MAX, data=np.float64(value)
        )
        return float(result)

    def min_double(self, value: float):
        """Process: QMP_min_double."""
        result = yield from self.comm.allreduce(
            nbytes=8, op=MIN, data=np.float64(value)
        )
        return float(result)

    def broadcast(self, nbytes: int, data: Any = None, root: int = 0):
        """Process: QMP_broadcast."""
        result = yield from self.comm.bcast(root, nbytes=nbytes, data=data)
        return result

    def barrier(self):
        """Process: QMP_barrier."""
        yield from self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover
        return f"QMPMachine(rank={self.rank}/{self.size})"
