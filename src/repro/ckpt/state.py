"""Deterministic state signatures for checkpoint verification.

A live simulation cannot be serialized byte-for-byte — processes are
Python generators holding live frames — so checkpoints restore by
*replay* (rebuild from the spec, re-apply the logged window inputs;
see :mod:`repro.ckpt` and ``docs/CHECKPOINT.md``).  What makes replay
trustworthy is this module: a compact, deterministic digest over every
state surface that could diverge, captured at the quiescent window
barrier and compared bit-for-bit after restore.

Covered surfaces, one per stack layer:

* ``sim/`` — clock (as ``float.hex``), event-heap and fast-path-deque
  entries ``(time, priority, sequence, event type)``, the monotone
  sequence counter, processed-event and progress counters;
* ``hw/`` — per-link frame/byte/drop counters, boundary-link egress
  sequence numbers, the exact :func:`random.Random.getstate` of every
  fault-injector stream, NIC port counters;
* ``via/`` — kernel-agent counters and go-back-N reliability state
  (next tx seq, expected rx seq, unacked window depth, rto, retries);
* ``mpi/`` — per-rank communicator recovery epoch;
* ``obs/`` — flight-recorder span-set content hash.

Two runs with equal digests have processed the same events, advanced
the same RNGs, and hold the same pending-event structure — any
divergence a resumed run could later exhibit is already visible here.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Optional


def _hexf(value: float) -> str:
    """Bit-exact float encoding (repr can round-trip, hex is explicit)."""
    return float(value).hex()


def sim_signature(sim) -> dict:
    """Pending-event structure and counters of one Simulator."""
    heap = sorted(
        (_hexf(when), priority, seq, type(event).__name__)
        for when, priority, seq, event in sim._queue
    )
    fast = [
        [(_hexf(when), seq, type(event).__name__)
         for when, seq, event in lane]
        for lane in (sim._urgent, sim._normal)
    ]
    return {
        "now": _hexf(sim.now),
        "sequence": sim._sequence,
        "req_seq": getattr(sim, "_req_ids", 0),
        "events": sim.events_processed,
        "progress": sim.progress,
        "heap": heap,
        "urgent": fast[0],
        "normal": fast[1],
    }


def _rng_state(rng) -> list:
    """``random.Random.getstate()`` flattened to nested lists."""
    kind, internal, gauss = rng.getstate()
    return [kind, list(internal), gauss]


def cluster_signature(cluster) -> dict:
    """Hardware + VIA + liveness state of one MeshCluster."""
    links = []
    for link in cluster.links:
        entry = {
            "name": link.name,
            "stats": {k: list(v) if isinstance(v, list) else v
                      for k, v in link.stats.items()},
        }
        seq = getattr(link, "_egress_seq", None)
        if seq is not None:
            entry["egress_seq"] = seq
        faults = getattr(link, "faults", None)
        if faults is not None:
            entry["rngs"] = [_rng_state(rng) for rng in faults._rngs]
        links.append(entry)
    links.sort(key=lambda e: e["name"])
    nodes = []
    for node in cluster.nodes:
        if node is None:
            nodes.append(None)
            continue
        ports = {
            str(pid): dict(port.stats)
            for pid, port in sorted(node.ports.items())
        }
        via = None
        if node.via is not None:
            agent = node.via.agent
            via = {
                "stats": dict(agent.stats),
                "msg_seq": node.via._next_msg_id,
                "channels": {
                    str(vi_id): {
                        "next_seq": ch.next_seq,
                        "rx_expected": ch.rx_expected,
                        "unacked": len(ch.unacked),
                        "rto": _hexf(ch.rto),
                        "retries": ch.retries,
                        "stats": dict(ch.stats),
                    }
                    for vi_id, ch in sorted(agent._channels.items())
                },
            }
        nodes.append({"rank": node.rank, "ports": ports, "via": via})
    return {
        "links": links,
        "nodes": nodes,
        "alive": list(cluster._alive),
        "deaths": [(rank, _hexf(when), by, reason)
                   for rank, when, by, reason in cluster.death_log],
    }


def comm_signature(comms) -> dict:
    """ULFM recovery epochs, keyed by rank."""
    return {str(rank): comm.epoch for rank, comm in sorted(comms.items())}


def recorder_signature(recorder) -> Optional[dict]:
    """Span-set content hash of a flight recorder (None when off)."""
    if recorder is None:
        return None
    keys = recorder.span_keys()
    digest = hashlib.sha256(repr(keys).encode()).hexdigest()
    return {"spans": len(keys), "keys_sha256": digest}


def shard_digest(runtime) -> str:
    """The verification digest of one ShardRuntime at a window barrier.

    Built from deterministically ordered dicts of primitives, so a
    fixed-protocol pickle of the combined payload is itself
    deterministic (same construction order => same bytes); the sha256
    over it is the bit-identity witness the restore path checks.
    Pickle rather than ``repr`` because it serialises the large RNG /
    heap sections at C speed — digests run at every capture, and this
    keeps the measured checkpoint overhead inside its <5% budget.
    Digests are only ever compared under one code version (the store's
    ``meta.json`` guard refuses cross-version restores), so pickle's
    per-version encoding is not a portability concern.
    """
    payload = {
        "shard_id": runtime.shard_id,
        "sim": sim_signature(runtime.sim),
        "cluster": cluster_signature(runtime.cluster),
        "comms": comm_signature(runtime.comms),
        "recorder": recorder_signature(runtime.sim.recorder),
        "outbox": len(runtime.cluster.pdes_outbox),
        "notify_outbox": len(runtime.notify_outbox),
    }
    return hashlib.sha256(pickle.dumps(payload, protocol=4)).hexdigest()
