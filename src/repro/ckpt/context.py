"""Process-wide note of the most recent durable checkpoint.

The checkpoint writers (:func:`repro.ckpt.campaign.run_resumable`, the
PDES coordinator) record every persisted checkpoint here; the error
surfaces (the hang watchdog's :class:`~repro.errors.HangError`, the
cluster ``hang_report``, the service router's structured errors) read
it back, so a killed or hung job's error names exactly where a resumed
run will pick up.  One slot per process is the right granularity: a
worker process runs one job at a time, and the coordinator notes on
behalf of the whole shard set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ckpt.store import checkpoint_id


@dataclass(frozen=True)
class CheckpointNote:
    """What the latest durable checkpoint is, and where resume lands."""

    key: str
    kind: str   # "item" (campaign) or "window" (PDES)
    index: int

    @property
    def ckpt_id(self) -> str:
        return checkpoint_id(self.key, self.kind, self.index)


_current: Optional[CheckpointNote] = None


def note(key: str, kind: str, index: int) -> CheckpointNote:
    """Record the latest durable checkpoint for this process."""
    global _current
    _current = CheckpointNote(key, kind, index)
    return _current


def current() -> Optional[CheckpointNote]:
    return _current


def clear() -> None:
    global _current
    _current = None
