"""Item-level resumable campaigns (the sequential-engine checkpoint).

PDES windows are the natural barrier for *one long sharded run*; a
chaos or sweep campaign is instead a list of independent deterministic
items, and its natural quiescent point is *between items*.
:func:`run_resumable` persists each item's payload as it completes, so
a crashed/killed/hung worker re-running the same campaign loads every
finished item from the store and recomputes only the remainder — retry
becomes resume without touching the item functions at all.

Determinism makes this safe: an item payload is a pure function of the
campaign key (a canonical config hash), so a loaded payload is
bit-identical to what recomputation would produce — pinned by
``tests/test_ckpt_property.py`` across fault configs, and by the
service cache's integrity tripwire in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro import __version__
from repro.ckpt import context
from repro.ckpt.store import CheckpointStore
from repro.errors import ReproError


class SimulatedCrash(ReproError):
    """Deliberate mid-campaign death (tests / chaos drills only)."""


@dataclass
class CampaignProgress:
    """What :func:`run_resumable` did: payloads plus resume accounting."""

    key: str
    results: List[object] = field(default_factory=list)
    loaded: int = 0      # items restored from the store
    computed: int = 0    # items actually executed this run


def run_resumable(key: str, items: Sequence[object],
                  run_item: Callable[[object, int], object],
                  store: Optional[CheckpointStore] = None, *,
                  config_hash: Optional[str] = None,
                  crash_after: Optional[int] = None) -> CampaignProgress:
    """Run ``run_item(item, index)`` over ``items``, checkpointing each.

    With no store this is a plain loop (zero overhead, zero behavior
    change).  With a store, each completed item is persisted atomically
    under ``key`` before the next begins; a rerun of the same key loads
    completed items instead of recomputing them.  ``config_hash``
    (default: the key itself, which service callers derive from the
    canonical config) guards the store against config/code drift.

    ``crash_after=k`` raises :class:`SimulatedCrash` right after item
    ``k`` persists — the test hook for crash-at-any-item coverage.
    """
    if store is not None:
        store.open_key(key, "item", config_hash or key, __version__)
    progress = CampaignProgress(key=key)
    for index, item in enumerate(items):
        payload = store.get_item(key, index) if store is not None else None
        if payload is not None:
            progress.loaded += 1
        else:
            payload = run_item(item, index)
            progress.computed += 1
            if store is not None:
                store.put_item(key, index, payload)
        if store is not None:
            context.note(key, "item", index)
        progress.results.append(payload)
        if crash_after is not None and index == crash_after:
            raise SimulatedCrash(
                f"simulated crash after campaign item {index} "
                f"(checkpoint {context.current().ckpt_id})"
                if store is not None else
                f"simulated crash after campaign item {index}"
            )
    return progress
