"""Content-addressed, crash-safe checkpoint storage.

Layout (one directory per run key, keys are
:func:`repro.canonical.content_hash` digests of the run's canonical
configuration, so identical configs share checkpoints and different
configs can never collide)::

    <root>/
      <key>/
        meta.json          # {key, kind, config_hash, code_version}
        item-000003.json   # campaign checkpoints: stable_json payloads
        window-000012.pkl  # PDES checkpoints: pickled window sets
                           # (incremental log tails chained by "base";
                           # latest_window() reassembles full logs)

Every write is atomic (temp file + ``os.replace``), so a worker killed
mid-write leaves either the previous checkpoint or the new one, never
a torn file — the property that makes SIGKILL chaos safe to point at
this layer.

``meta.json`` is the restore guard: opening a key validates the stored
config hash and code version against the restoring run and raises
:class:`~repro.errors.CheckpointMismatchError` on any disagreement.  A
checkpoint written by different code or a different configuration is
worthless-but-plausible state; refusing it is what keeps resumed runs
inside the bit-identity contract.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro import __version__, telemetry
from repro.canonical import stable_json
from repro.errors import CheckpointError, CheckpointMismatchError

_ITEM_RE = re.compile(r"^item-(\d{6})\.json$")
_WINDOW_RE = re.compile(r"^window-(\d{6})\.pkl$")


def checkpoint_id(key: str, kind: str, index: int) -> str:
    """Human-quotable checkpoint name: ``<key16>/<kind>-<index>``."""
    return f"{key[:16]}/{kind}-{index:06d}"


@dataclass(frozen=True)
class CheckpointRef:
    """Pointer to the newest durable checkpoint under one key."""

    key: str
    kind: str
    index: int

    @property
    def ckpt_id(self) -> str:
        return checkpoint_id(self.key, self.kind, self.index)


class CheckpointStore:
    """Filesystem-backed checkpoint store rooted at ``root``."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- key lifecycle --------------------------------------------------

    def _key_dir(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        return self.root / key

    def open_key(self, key: str, kind: str,
                 config_hash: str,
                 code_version: str = __version__) -> Path:
        """Create-or-validate the directory for ``key``.

        Raises :class:`CheckpointMismatchError` when an existing key
        was written under a different config hash or code version.
        """
        directory = self._key_dir(key)
        meta_path = directory / "meta.json"
        meta = {
            "key": key,
            "kind": kind,
            "config_hash": config_hash,
            "code_version": code_version,
        }
        if meta_path.exists():
            stored = json.loads(meta_path.read_text())
            for field in ("config_hash", "code_version"):
                if stored.get(field) != meta[field]:
                    raise CheckpointMismatchError(
                        f"checkpoint {key[:16]} was written with "
                        f"{field}={stored.get(field)!r} but this run has "
                        f"{meta[field]!r}; refusing to resume from it"
                    )
            return directory
        directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(meta_path, stable_json(meta).encode())
        return directory

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- campaign items (JSON payloads) ---------------------------------

    def put_item(self, key: str, index: int, payload) -> str:
        directory = self._key_dir(key)
        path = directory / f"item-{index:06d}.json"
        tel = telemetry.ACTIVE
        write_start = time.perf_counter() if tel is not None else 0.0
        data = stable_json(payload).encode()
        self._atomic_write(path, data)
        if tel is not None:
            tel.registry.histogram("ckpt_write_seconds", kind="item",
                                   ).observe(time.perf_counter()
                                             - write_start)
            tel.registry.counter("ckpt_bytes_total",
                                 kind="item").inc(len(data))
        return checkpoint_id(key, "item", index)

    def get_item(self, key: str, index: int):
        path = self._key_dir(key) / f"item-{index:06d}.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- PDES window sets (pickled coordinator state) -------------------

    def put_window(self, key: str, window: int, data: dict) -> str:
        directory = self._key_dir(key)
        path = directory / f"window-{window:06d}.pkl"
        tel = telemetry.ACTIVE
        write_start = time.perf_counter() if tel is not None else 0.0
        encoded = pickle.dumps(data, protocol=4)
        self._atomic_write(path, encoded)
        if tel is not None:
            tel.registry.histogram("ckpt_write_seconds", kind="window",
                                   ).observe(time.perf_counter()
                                             - write_start)
            tel.registry.counter("ckpt_bytes_total",
                                 kind="window").inc(len(encoded))
        return checkpoint_id(key, "window", window)

    def windows(self, key: str) -> List[int]:
        directory = self._key_dir(key)
        if not directory.is_dir():
            return []
        found = []
        for name in os.listdir(directory):
            match = _WINDOW_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _read_window(self, key: str, window: int) -> dict:
        path = self._key_dir(key) / f"window-{window:06d}.pkl"
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def latest_window(self, key: str) -> Optional[Tuple[int, dict]]:
        """Newest window set for ``key``, with its full replay logs.

        Window files are *incremental*: each holds only the log tail
        since the previous capture plus a ``base`` pointer (so capture
        cost stays proportional to the checkpoint interval, not the
        run length).  This walks the base chain and splices the tails
        back into the complete per-shard logs the restore path needs.
        A file holding full ``logs`` (the first capture, or the legacy
        format) terminates the chain.
        """
        indices = self.windows(key)
        if not indices:
            return None
        tel = telemetry.ACTIVE
        restore_start = time.perf_counter() if tel is not None else 0.0
        window = indices[-1]
        newest = self._read_window(key, window)
        chain = [newest]
        while "logs" not in chain[-1]:
            base = chain[-1].get("base")
            if base is None:
                break
            chain.append(self._read_window(key, base))
        logs: Optional[List[list]] = None
        for part in reversed(chain):
            tails = part["logs"] if "logs" in part \
                else part.get("logs_tail", [])
            if logs is None:
                logs = [list(tail) for tail in tails]
            else:
                if len(tails) != len(logs):
                    raise CheckpointError(
                        f"window chain for {key[:16]} changed shard "
                        f"count mid-run ({len(logs)} vs {len(tails)})"
                    )
                for index, tail in enumerate(tails):
                    logs[index].extend(tail)
        data = dict(newest)
        data["logs"] = logs or []
        data.pop("logs_tail", None)
        data.pop("base", None)
        if tel is not None:
            tel.registry.histogram("ckpt_restore_seconds").observe(
                time.perf_counter() - restore_start)
            tel.registry.counter("ckpt_restores_total").inc()
        return window, data

    def drop_windows_after(self, key: str, keep_up_to: int) -> int:
        """Delete window checkpoints above ``keep_up_to`` (test/ops aid:
        force a resume from an earlier barrier)."""
        dropped = 0
        for window in self.windows(key):
            if window > keep_up_to:
                os.unlink(self._key_dir(key) / f"window-{window:06d}.pkl")
                dropped += 1
        return dropped

    # -- inspection -----------------------------------------------------

    def latest(self, key: str) -> Optional[CheckpointRef]:
        """Newest checkpoint under ``key``, item or window kind."""
        directory = self._key_dir(key)
        if not directory.is_dir():
            return None
        best: Optional[CheckpointRef] = None
        for name in os.listdir(directory):
            for kind, pattern in (("item", _ITEM_RE),
                                  ("window", _WINDOW_RE)):
                match = pattern.match(name)
                if match:
                    ref = CheckpointRef(key, kind, int(match.group(1)))
                    if best is None or ref.index > best.index:
                        best = ref
        return best


# -- process-wide default store (set by service workers / CLIs) --------

_DEFAULT_ROOT: Optional[str] = None


def set_default_root(root: Optional[str]) -> None:
    """Install (or clear, with None) the process-wide store root."""
    global _DEFAULT_ROOT
    _DEFAULT_ROOT = str(root) if root is not None else None


def default_store() -> Optional[CheckpointStore]:
    """The process default store, if a root was installed.

    Resolution order: :func:`set_default_root`, then the
    ``REPRO_CKPT_DIR`` environment variable, else ``None`` (callers
    treat a missing store as checkpointing-off).
    """
    root = _DEFAULT_ROOT or os.environ.get("REPRO_CKPT_DIR")
    if not root:
        return None
    return CheckpointStore(root)
