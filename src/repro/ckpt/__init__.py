"""Deterministic checkpoint/restart (``repro.ckpt``).

A live simulation holds Python generators, so no byte-level snapshot
exists; instead the repo's determinism contract makes *replay* exact:

* checkpoint = build spec + complete log of cross-shard window inputs
  (or completed campaign-item payloads) + a bit-exact state digest;
* restore = rebuild from the spec, replay the log, verify the digest.

Modules: :mod:`~repro.ckpt.store` (content-addressed atomic storage),
:mod:`~repro.ckpt.state` (state digests), :mod:`~repro.ckpt.campaign`
(item-level resume), :mod:`~repro.ckpt.context` (latest-checkpoint
note surfaced in hang/service errors).  See ``docs/CHECKPOINT.md``.
"""

from repro.ckpt import context
from repro.ckpt.campaign import CampaignProgress, SimulatedCrash, run_resumable
from repro.ckpt.state import shard_digest
from repro.ckpt.store import (
    CheckpointRef,
    CheckpointStore,
    checkpoint_id,
    default_store,
    set_default_root,
)

__all__ = [
    "CampaignProgress",
    "CheckpointRef",
    "CheckpointStore",
    "SimulatedCrash",
    "checkpoint_id",
    "context",
    "default_store",
    "run_resumable",
    "set_default_root",
    "shard_digest",
]
