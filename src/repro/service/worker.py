"""Worker-process main loop.

Each fleet worker is a separate OS process: it reads jobs from its
pipe, executes them through the pure :func:`repro.service.jobs.execute`
code path, and writes results back.  A daemon thread heartbeats on the
same pipe (guarded by a lock — ``Connection`` is not thread-safe) so
the parent's supervisor can distinguish *working* from *wedged*: a
SIGSTOPped or livelocked worker stops heartbeating and is killed and
replaced, while a long legitimate run keeps beating.

Message shapes on the pipe (plain tuples, pickled by multiprocessing):

parent -> worker
    ``("job", job_id, spec_wire_dict)`` and ``("stop",)``
worker -> parent
    ``("ready", pid)`` once at startup,
    ``("heartbeat", monotonic_t)`` periodically,
    ``("result", job_id, payload, meta)`` on success, where ``meta``
    carries the worker-side simulator event count for the job so the
    parent can fold it into its own ``TOTAL_EVENTS`` (older
    three-element results are still accepted) plus any
    checkpoint/resume telemetry the job published through
    :data:`repro.service.jobs.LAST_RUN_META` — out-of-band, because
    the payload itself must stay bit-identical across retries,
    ``("error", job_id, error_type, message)`` on a deterministic
    job failure (the worker survives and takes the next job).
"""

from __future__ import annotations

import os
import threading
from typing import Any


def worker_main(conn: Any, heartbeat_interval: float = 0.1,
                ckpt_dir: Any = None, telemetry_on: bool = False) -> None:
    """Run the worker loop over ``conn`` until ``stop`` or pipe EOF.

    ``ckpt_dir`` (from the fleet) becomes this process's default
    checkpoint store root, so every job that checkpoints writes where
    a replacement worker will look after a crash.  When
    ``telemetry_on`` the worker enables its own telemetry plane and
    ships a *cumulative* registry snapshot with every result (in
    ``meta``, never the payload — cache bit-identity); the parent
    keeps the newest snapshot per worker and merges on read.
    """
    if ckpt_dir:
        from repro.ckpt import set_default_root

        set_default_root(ckpt_dir)
    worker_tel = None
    if telemetry_on:
        from repro import telemetry

        worker_tel = telemetry.enable()
    send_lock = threading.Lock()
    stopping = threading.Event()

    def _send(message) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (OSError, ValueError):
                return False

    def _beat() -> None:
        import time

        while not stopping.is_set():
            if not _send(("heartbeat", time.monotonic())):
                return
            stopping.wait(heartbeat_interval)

    _send(("ready", os.getpid()))
    threading.Thread(target=_beat, name="heartbeat", daemon=True).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                break
            if op != "job":
                continue
            _, job_id, wire = message
            try:
                from repro.service import jobs
                from repro.service.protocol import JobSpec
                from repro.sim import core as sim_core

                before = sim_core.TOTAL_EVENTS
                payload = jobs.execute(JobSpec.from_wire(wire))
                meta = {"events": sim_core.TOTAL_EVENTS - before}
                meta.update(jobs.LAST_RUN_META)
                if worker_tel is not None:
                    worker_tel.registry.counter(
                        "worker_jobs_total").inc()
                    meta["telemetry"] = worker_tel.registry.snapshot()
                reply = ("result", job_id, payload, meta)
            except Exception as exc:  # deterministic job failure
                reply = ("error", job_id, type(exc).__name__, str(exc))
            if not _send(reply):
                break
    finally:
        stopping.set()
        try:
            conn.close()
        except OSError:
            pass


__all__ = ["worker_main"]
