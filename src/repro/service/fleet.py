"""Supervised worker fleet: process pool with crash/hang detection.

The fleet owns ``size`` worker *processes* (spawn start method — no
inherited event-loop or lock state) connected by duplex pipes and
integrated with asyncio via ``loop.add_reader``.  Supervision mirrors
the keepalive idiom of the simulated failure detector in
``via/kernel_agent.py``, one layer up and in wall-clock time:

* **crash** — the worker's pipe hits EOF (SIGKILL, abort, exit); the
  in-flight job fails with :class:`WorkerCrashed` and a replacement
  worker is spawned immediately;
* **hang** — a *busy* worker stops heartbeating for ``hang_timeout``
  seconds (SIGSTOP, wedged syscall, livelock); the supervisor SIGKILLs
  it, which folds into the crash path (one death path, like the
  link-death teardown in the engine);
* **deadline** — the router's per-attempt timeout fires; the fleet
  kills the worker mid-job so a runaway simulation can never pin a
  pool slot.

Workers enter the dispatchable pool only after their ``ready``
message, so boot time (interpreter + numpy import under spawn) is
never misread as a hang.  ``dispatches`` counts real engine runs —
the counter the cache tests assert against.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

from repro import telemetry
from repro.service.protocol import (
    DeadlineExceeded,
    JobFailed,
    JobSpec,
    ServiceError,
    WorkerCrashed,
)
from repro.service.worker import worker_main
from repro.sim import core as sim_core

_WORKER_IDS = itertools.count()

#: Queue sentinel used to wake idle-waiters when the fleet stops.
_STOP_SENTINEL = object()


def _mark_retrieved(future: "asyncio.Future") -> None:
    """Touch the future's exception so an abandoned attempt (deadline
    kill, cancelled caller) never logs 'exception was never
    retrieved'."""
    if not future.cancelled():
        future.exception()


class FleetStopped(ServiceError):
    """A job was submitted to a fleet that is not running."""


class WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("index", "process", "conn", "state", "job",
                 "last_heartbeat", "jobs_done", "started_at")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: "starting" -> "idle" <-> "busy" -> "dead"
        self.state = "starting"
        #: The in-flight (job_id, JobSpec, Future) triple, if busy.
        self.job: Optional[tuple] = None
        self.last_heartbeat = time.monotonic()
        self.jobs_done = 0
        self.started_at = time.monotonic()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def __repr__(self) -> str:  # pragma: no cover
        return f"WorkerHandle(#{self.index} pid={self.pid} {self.state})"


class Fleet:
    """A supervised pool of worker processes executing job specs."""

    def __init__(self, size: int = 2, *,
                 heartbeat_interval: float = 0.1,
                 hang_timeout: float = 5.0,
                 on_dispatch: Optional[Callable] = None,
                 ckpt_dir: Optional[str] = None) -> None:
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        self.size = size
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        #: Shared checkpoint-store root handed to every worker (jobs
        #: that checkpoint write here; a replacement worker resumes
        #: from here).  ``None`` = allocate a private one at start()
        #: and remove it at stop().
        self.ckpt_dir = ckpt_dir
        self._owns_ckpt_dir = False
        #: Chaos/test hook, called as ``on_dispatch(fleet, handle,
        #: spec)`` right after a job is written to a worker.
        self.on_dispatch = on_dispatch
        #: Engine runs actually dispatched to workers (cache-hit and
        #: coalesced requests never increment this).
        self.dispatches = 0
        self.counters: Dict[str, int] = {
            "jobs_ok": 0, "jobs_failed": 0, "crashes": 0, "hangs": 0,
            "restarts": 0, "deadline_kills": 0, "worker_events": 0,
            "ckpt_loaded": 0, "ckpt_computed": 0, "ckpt_resumes": 0,
        }
        self.workers: List[WorkerHandle] = []
        self._idle: "asyncio.Queue[WorkerHandle]" = None  # set in start
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._running = False
        self._next_job_id = itertools.count()
        self._ctx = multiprocessing.get_context("spawn")

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Spawn the initial workers and the supervision task."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Queue()
        self._running = True
        if self.ckpt_dir is None:
            self.ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
            self._owns_ckpt_dir = True
        for _ in range(self.size):
            self._spawn_worker()
        self._supervisor = self._loop.create_task(self._supervise(),
                                                  name="fleet-supervisor")

    def _spawn_worker(self) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Workers inherit the plane's on/off state (spawn start method:
        # the child enables its own registry and ships cumulative
        # snapshots back in result meta).
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.heartbeat_interval, self.ckpt_dir,
                  telemetry.enabled()),
            daemon=True,
            name=f"repro-service-worker-{next(_WORKER_IDS)}",
        )
        process.start()
        # The parent must drop its copy of the child's pipe end or the
        # pipe never reports EOF when the child dies.
        child_conn.close()
        handle = WorkerHandle(len(self.workers), process, parent_conn)
        self.workers.append(handle)
        self._loop.add_reader(parent_conn.fileno(),
                              self._on_readable, handle)
        return handle

    async def stop(self) -> None:
        """Stop every worker (politely when idle, by force otherwise)."""
        self._running = False
        if self._idle is not None:
            for _ in range(self.size + 1):
                self._idle.put_nowait(_STOP_SENTINEL)
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for handle in self.workers:
            if handle.state == "dead":
                continue
            # A SIGSTOPped-but-idle worker would otherwise sit out the
            # polite-stop join; wake it first (harmless when running).
            self._signal(handle, signal.SIGCONT)
            if handle.state in ("idle", "starting"):
                try:
                    handle.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            else:
                self._signal(handle, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        for handle in self.workers:
            if handle.state == "dead":
                continue
            remaining = max(0.0, deadline - time.monotonic())
            await self._loop.run_in_executor(
                None, handle.process.join, remaining)
            if handle.process.is_alive():
                self._signal(handle, signal.SIGKILL)
                await self._loop.run_in_executor(
                    None, handle.process.join, 2.0)
            self._retire(handle, fail_job=True)
        if self._owns_ckpt_dir and self.ckpt_dir is not None:
            shutil.rmtree(self.ckpt_dir, ignore_errors=True)
            self.ckpt_dir = None
            self._owns_ckpt_dir = False

    # -- dispatch -----------------------------------------------------------
    async def run_job(self, spec: JobSpec, timeout: float) -> Any:
        """Run ``spec`` on an idle worker; the result payload, or raise.

        Raises :class:`JobFailed` for deterministic worker-side
        failures, :class:`WorkerCrashed` when the worker dies mid-job,
        and :class:`DeadlineExceeded` when ``timeout`` elapses (the
        worker is killed so the slot frees immediately).
        """
        if not self._running:
            raise FleetStopped("fleet is not running")
        handle = await self._acquire_idle()
        job_id = next(self._next_job_id)
        future = self._loop.create_future()
        future.add_done_callback(_mark_retrieved)
        handle.state = "busy"
        handle.job = (job_id, spec, future)
        handle.last_heartbeat = time.monotonic()
        self.dispatches += 1
        tel = telemetry.ACTIVE
        dispatch_start = tel.now() if tel is not None else 0.0
        if tel is not None:
            tel.registry.counter("fleet_dispatch_total").inc()
        try:
            handle.conn.send(("job", job_id, spec.to_wire()))
        except (OSError, ValueError):
            # Lost the worker between acquire and send: fold into the
            # crash path (the reader EOF may race us; _worker_died is
            # idempotent).
            self._worker_died(handle)
            raise WorkerCrashed(
                f"worker #{handle.index} died before accepting the job"
            ) from None
        if self.on_dispatch is not None:
            self.on_dispatch(self, handle, spec)
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.counters["deadline_kills"] += 1
            if tel is not None:
                tel.registry.counter("fleet_deadline_kills_total").inc()
                tel.events.warn(
                    "fleet.deadline_kill",
                    f"{spec.label()} blew its {timeout:.1f}s deadline",
                    run=tel.run_id, worker=handle.index, job_id=job_id)
            self._signal(handle, signal.SIGKILL)
            raise DeadlineExceeded(
                f"{spec.label()} exceeded its {timeout:.1f}s attempt "
                f"deadline on worker #{handle.index} (killed)"
            ) from None
        if tel is not None:
            tel.wall_span("dispatch", spec.label(), "fleet",
                          dispatch_start, tel.now())
        return payload

    async def _acquire_idle(self) -> WorkerHandle:
        while True:
            if not self._running:
                raise FleetStopped("fleet stopped while waiting for a "
                                   "worker")
            handle = await self._idle.get()
            if handle is not _STOP_SENTINEL and handle.state == "idle":
                return handle
            # Otherwise: a stale entry (the worker died, and was
            # replaced, while queued) or the stop sentinel — loop and
            # re-check the running flag.

    # -- pipe events --------------------------------------------------------
    def _on_readable(self, handle: WorkerHandle) -> None:
        try:
            while handle.conn.poll():
                message = handle.conn.recv()
                self._on_message(handle, message)
                if handle.state == "dead":
                    return
        except (EOFError, OSError):
            self._worker_died(handle)

    def _on_message(self, handle: WorkerHandle, message: tuple) -> None:
        op = message[0]
        if op == "heartbeat":
            handle.last_heartbeat = time.monotonic()
            return
        if op == "ready":
            handle.last_heartbeat = time.monotonic()
            if handle.state == "starting":
                handle.state = "idle"
                self._idle.put_nowait(handle)
            return
        if op in ("result", "error"):
            job = handle.job
            if job is None or job[0] != message[1]:
                return  # response to a job we already abandoned
            _, spec, future = job
            handle.job = None
            handle.jobs_done += 1
            handle.state = "idle"
            handle.last_heartbeat = time.monotonic()
            self._idle.put_nowait(handle)
            tel = telemetry.ACTIVE
            if op == "result":
                self.counters["jobs_ok"] += 1
                if tel is not None:
                    tel.registry.counter("fleet_jobs_total",
                                         outcome="ok").inc()
                if len(message) > 3:
                    # Fold the worker simulator's event count into this
                    # process's global tally; without this, fleet runs
                    # undercount TOTAL_EVENTS by everything simulated in
                    # child processes.
                    meta = message[3]
                    events = int(meta.get("events", 0))
                    if events > 0:
                        sim_core.record_external_events(events)
                        self.counters["worker_events"] += events
                    # Checkpoint/resume telemetry rides in meta (never
                    # the payload — cache bit-identity).
                    loaded = int(meta.get("ckpt_loaded", 0))
                    self.counters["ckpt_loaded"] += loaded
                    self.counters["ckpt_computed"] += int(
                        meta.get("ckpt_computed", 0))
                    if loaded or meta.get("ckpt_resumed_from") is not None:
                        self.counters["ckpt_resumes"] += 1
                    # The worker's cumulative registry snapshot rides
                    # out-of-band in meta; keep the newest per worker
                    # (indices are unique — workers are never reused).
                    worker_snapshot = meta.get("telemetry")
                    if tel is not None and worker_snapshot is not None:
                        tel.absorb_worker(f"w{handle.index}",
                                          worker_snapshot)
                if not future.done():
                    future.set_result(message[2])
            else:
                self.counters["jobs_failed"] += 1
                if tel is not None:
                    tel.registry.counter("fleet_jobs_total",
                                         outcome="failed").inc()
                if not future.done():
                    future.set_exception(JobFailed(message[2], message[3]))

    def _worker_died(self, handle: WorkerHandle) -> None:
        """Crash path: fail the in-flight job, replace the worker."""
        if handle.state == "dead":
            return
        tel = telemetry.ACTIVE
        if self._running:
            self.counters["crashes"] += 1
            if tel is not None:
                tel.registry.counter("fleet_crashes_total").inc()
                tel.events.warn(
                    "fleet.crash",
                    f"worker #{handle.index} (pid {handle.pid}) died",
                    run=tel.run_id, worker=handle.index,
                    state=handle.state)
        self._retire(handle, fail_job=True)
        if self._running:
            self.counters["restarts"] += 1
            if tel is not None:
                tel.registry.counter("fleet_respawns_total").inc()
            self._spawn_worker()

    def _retire(self, handle: WorkerHandle, fail_job: bool) -> None:
        if handle.state == "dead":
            return
        was = handle.state
        handle.state = "dead"
        tel = telemetry.ACTIVE
        if tel is not None:
            tel.registry.histogram("fleet_worker_lifetime_seconds").observe(
                time.monotonic() - handle.started_at)
        try:
            self._loop.remove_reader(handle.conn.fileno())
        except (OSError, ValueError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        job, handle.job = handle.job, None
        if fail_job and job is not None:
            _, spec, future = job
            if not future.done():
                future.set_exception(WorkerCrashed(
                    f"worker #{handle.index} (pid {handle.pid}) died "
                    f"while running {spec.label()} (was {was})"
                ))
        # Reap the process without blocking the loop.
        self._loop.run_in_executor(None, handle.process.join, 5.0)

    # -- supervision --------------------------------------------------------
    async def _supervise(self) -> None:
        """Wall-clock watchdog: kill busy workers that stop beating."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for handle in list(self.workers):
                if handle.state != "busy":
                    continue
                if now - handle.last_heartbeat > self.hang_timeout:
                    self.counters["hangs"] += 1
                    tel = telemetry.ACTIVE
                    if tel is not None:
                        tel.registry.counter(
                            "fleet_hang_kills_total").inc()
                        tel.events.error(
                            "fleet.hang",
                            f"worker #{handle.index} silent for "
                            f"{now - handle.last_heartbeat:.1f}s, killing",
                            run=tel.run_id, worker=handle.index)
                    # SIGKILL works on stopped processes too; death
                    # arrives through the pipe-EOF crash path.
                    self._signal(handle, signal.SIGKILL)

    def _signal(self, handle: WorkerHandle, signum: int) -> bool:
        """Send ``signum`` to the worker (False if already gone)."""
        if handle.pid is None:
            return False
        try:
            os.kill(handle.pid, signum)
            return True
        except (ProcessLookupError, PermissionError):
            return False

    # -- introspection ------------------------------------------------------
    def alive_workers(self) -> List[WorkerHandle]:
        return [h for h in self.workers if h.state != "dead"]

    def busy_workers(self) -> List[WorkerHandle]:
        return [h for h in self.workers if h.state == "busy"]

    def status(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "alive": len(self.alive_workers()),
            "busy": len(self.busy_workers()),
            "dispatches": self.dispatches,
            "ckpt_dir": self.ckpt_dir,
            "counters": dict(self.counters),
            "workers": [
                {"index": h.index, "pid": h.pid, "state": h.state,
                 "jobs_done": h.jobs_done}
                for h in self.workers if h.state != "dead"
            ],
        }


__all__ = ["Fleet", "FleetStopped", "WorkerHandle"]
