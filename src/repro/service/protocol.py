"""Service wire protocol: job specs, cache keys, and response shapes.

Transport is JSON lines (one request or response object per line, over
a local TCP socket or the in-process transport).  Every request names
an ``op``; ``submit`` carries a job spec:

.. code-block:: json

    {"op": "submit", "id": "c1", "deadline_s": 30,
     "job": {"kind": "figure", "name": "fig2",
             "args": {"quick": true}, "seed": 0}}

Responses are one of three shapes, all carrying the request ``id``:

``ok``
    ``{"id", "status": "ok", "result", "key", "cache", "attempts",
    "elapsed_s"}`` — ``cache`` is ``"hit"``, ``"miss"`` (a fresh
    engine run) or ``"coalesced"`` (piggybacked on an identical
    in-flight request).
``error``
    ``{"id", "status": "error", "error", "message", "retriable",
    "attempts"}`` — structured; ``retriable`` tells the client whether
    resubmitting the same request can succeed.  When the job has a
    durable checkpoint (:mod:`repro.ckpt`), ``checkpoint`` carries
    ``{"id", "kind", "index"}`` — where a resubmitted run resumes.
``overloaded``
    ``{"id", "status": "overloaded", "retriable": true,
    "retry_after_s"}`` — admission control shed the request before
    accepting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import __version__
from repro.canonical import Canonical, content_hash
from repro.errors import ReproError

#: Workload families the service executes (see :mod:`repro.service.jobs`).
JOB_KINDS = ("figure", "point", "chaos", "trace", "breakdown", "pdes")

#: JSON scalar types permitted as job argument values.
_ARG_SCALARS = (bool, int, float, str, type(None))


class ServiceError(ReproError):
    """Base class for service-layer errors."""


class ProtocolError(ServiceError):
    """Malformed request or job spec (non-retriable client error)."""


class JobFailed(ServiceError):
    """The job itself failed deterministically inside a worker.

    Retrying cannot help (same config, same deterministic engine), so
    the router surfaces it as a non-retriable structured error.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.detail = message


class WorkerCrashed(ServiceError):
    """The worker process running the job died (exit / lost pipe)."""


class WorkerHung(ServiceError):
    """The worker stopped heartbeating and was killed by supervision."""


class DeadlineExceeded(ServiceError):
    """One attempt ran past its wall-clock deadline and was killed."""


@dataclass(frozen=True)
class JobSpec(Canonical):
    """One experiment request, canonical and hashable by content.

    ``args`` is a sorted tuple of ``(key, value)`` pairs (JSON scalars
    only) so the spec is frozen/hashable and two dicts with different
    insertion order produce the same spec — and therefore the same
    cache key.
    """

    kind: str
    name: str = ""
    args: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    seed: int = 0

    @staticmethod
    def make(kind: str, name: str = "", seed: int = 0,
             **args: Any) -> "JobSpec":
        return JobSpec(kind=kind, name=name, seed=seed,
                       args=tuple(sorted(args.items())))

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Parse and validate the ``job`` object of a submit request."""
        if not isinstance(data, Mapping):
            raise ProtocolError(f"job must be an object, got {data!r}")
        kind = data.get("kind")
        if kind not in JOB_KINDS:
            raise ProtocolError(
                f"unknown job kind {kind!r}; choose from {JOB_KINDS}"
            )
        name = data.get("name", "")
        if not isinstance(name, str):
            raise ProtocolError(f"job name must be a string, got {name!r}")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(f"seed must be an integer, got {seed!r}")
        raw_args = data.get("args", {})
        if not isinstance(raw_args, Mapping):
            raise ProtocolError(f"args must be an object, got {raw_args!r}")
        for key, value in raw_args.items():
            if not isinstance(key, str):
                raise ProtocolError(f"arg keys must be strings: {key!r}")
            if not isinstance(value, _ARG_SCALARS):
                raise ProtocolError(
                    f"arg {key!r} must be a JSON scalar, got {value!r}"
                )
        return cls(kind=kind, name=name, seed=seed,
                   args=tuple(sorted(raw_args.items())))

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "args": dict(self.args), "seed": self.seed}

    def arg(self, key: str, default: Any = None) -> Any:
        for name, value in self.args:
            if name == key:
                return value
        return default

    def cache_key(self) -> str:
        """Content address of this job's result.

        Canonical hash of the full run identity: the workload spec
        itself, the hardware/protocol parameter sets the engine will
        run with (defaults; workload args carry any overrides such as
        loss rate), the seed, and the code version — a new release
        never serves a stale cached result.
        """
        from repro.hw.params import default_gige, default_host, default_via

        return content_hash({
            "job": self,
            "gige": default_gige(),
            "host": default_host(),
            "via": default_via(),
            "code_version": __version__,
        })

    def label(self) -> str:
        return f"{self.kind}:{self.name}" if self.name else self.kind


# -- response builders --------------------------------------------------------
def ok_response(request_id: Any, key: str, result: Any, cache: str,
                attempts: int, elapsed_s: float) -> Dict[str, Any]:
    return {
        "id": request_id, "status": "ok", "result": result,
        "key": key, "cache": cache, "attempts": attempts,
        "elapsed_s": round(elapsed_s, 6),
    }


def error_response(request_id: Any, error: str, message: str,
                   retriable: bool, attempts: int = 0,
                   key: Optional[str] = None,
                   checkpoint: Optional[Dict[str, Any]] = None,
                   ) -> Dict[str, Any]:
    response = {
        "id": request_id, "status": "error", "error": error,
        "message": message, "retriable": retriable,
        "attempts": attempts, "key": key,
    }
    if checkpoint is not None:
        response["checkpoint"] = checkpoint
    return response


def overloaded_response(request_id: Any,
                        retry_after_s: float) -> Dict[str, Any]:
    return {
        "id": request_id, "status": "overloaded", "retriable": True,
        "retry_after_s": round(retry_after_s, 6),
    }


__all__ = [
    "DeadlineExceeded",
    "JOB_KINDS",
    "JobFailed",
    "JobSpec",
    "ProtocolError",
    "ServiceError",
    "WorkerCrashed",
    "WorkerHung",
    "error_response",
    "ok_response",
    "overloaded_response",
]
