"""Simulation-as-a-service: a fault-tolerant asyncio front-end.

The ROADMAP's production-traffic direction: many concurrent clients
submit experiment requests (bench figures, point workloads, chaos
campaigns, traced runs) over a local JSON-lines socket protocol; a
router dispatches them to a supervised fleet of worker *processes*
running the deterministic engine, and results land in a
content-addressed cache keyed on the canonical hash of
``(params, topology, workload, seed, code version)`` so repeated
requests are free.

Robustness contract (see ``docs/SERVICE.md``):

* per-request deadlines; timeout => retry with exponential backoff on
  a fresh worker, bounded budget, then a *structured* error — never a
  hang;
* worker supervision detects crashes (pipe EOF / exit code) and hangs
  (lost heartbeat wall-clock watchdog) and restarts workers; the cache
  plus single-flight request coalescing give exactly-once results;
* admission control: a bounded pending set, load shedding with a
  retriable "overloaded" response, graceful drain on shutdown.

``python -m repro.service`` serves; ``--chaos`` runs the seeded
service-level chaos harness; ``--load-test N`` runs the concurrent
client load test and writes ``BENCH_SERVICE.json``.
"""

from repro.service.cache import ResultCache
from repro.service.fleet import Fleet
from repro.service.protocol import JobSpec
from repro.service.router import Router, RouterConfig
from repro.service.server import ServiceClient, ServiceServer

__all__ = [
    "Fleet",
    "JobSpec",
    "ResultCache",
    "Router",
    "RouterConfig",
    "ServiceClient",
    "ServiceServer",
]
