"""Asyncio front-end: JSON-lines over a local TCP socket.

One connection may pipeline any number of requests; responses carry
the request ``id`` and may arrive out of order (submits run
concurrently).  Ops: ``submit`` (the workhorse), ``ping``, ``status``
(fleet/cache/router snapshot), ``metrics`` (live telemetry snapshot —
merged registry JSON + Prometheus text + event-log tail, served
without touching the fleet), ``shutdown`` (graceful drain: stop
accepting, finish in-flight work, stop the fleet).

:class:`ServiceClient` is the matching line-protocol client;
tests and the load harness can also bypass sockets entirely and call
``Router.submit`` directly (the in-process transport).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro import telemetry
from repro.service.router import Router
from repro.telemetry.registry import to_prometheus


def metrics_response(request_id: Any = None,
                     events_tail: int = 50) -> Dict[str, Any]:
    """Live telemetry snapshot as a wire response (no fleet round
    trip: the merged view is this process's registry folded with the
    newest snapshot each worker has already shipped in result meta)."""
    tel = telemetry.ACTIVE
    if tel is None:
        return {"id": request_id, "status": "ok", "enabled": False}
    snapshot = tel.merged_snapshot()
    return {
        "id": request_id,
        "status": "ok",
        "enabled": True,
        "run": tel.run_id,
        "uptime_s": round(tel.now(), 3),
        "snapshot": snapshot,
        "prometheus": to_prometheus(snapshot),
        "events": tel.events.tail(events_tail),
    }


class ServiceServer:
    """Serves a :class:`Router` over a local TCP JSON-lines socket."""

    def __init__(self, router: Router, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_started = asyncio.Event()
        self._stopped = asyncio.Event()

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(response: Dict[str, Any]) -> None:
            data = json.dumps(response, sort_keys=True) + "\n"
            async with write_lock:
                try:
                    writer.write(data.encode())
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    pass  # client went away; nothing to deliver to

        async def run_submit(request: Dict[str, Any]) -> None:
            await respond(await self.router.submit(request))

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    await respond({
                        "id": None, "status": "error",
                        "error": "ProtocolError",
                        "message": f"bad request line: {exc}",
                        "retriable": False,
                    })
                    continue
                op = request.get("op", "submit")
                if op == "ping":
                    await respond({"id": request.get("id"),
                                   "status": "ok", "pong": True})
                elif op == "status":
                    status = self.router.status()
                    status["id"] = request.get("id")
                    status["telemetry"] = telemetry.enabled()
                    await respond(status)
                elif op == "metrics":
                    await respond(metrics_response(request.get("id")))
                elif op == "shutdown":
                    await respond({"id": request.get("id"),
                                   "status": "ok", "draining": True})
                    asyncio.get_running_loop().create_task(
                        self.shutdown())
                elif op == "submit":
                    task = asyncio.get_running_loop().create_task(
                        run_submit(request))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    await respond({
                        "id": request.get("id"), "status": "error",
                        "error": "ProtocolError",
                        "message": f"unknown op {op!r}",
                        "retriable": False,
                    })
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: close the listener, drain, stop the fleet."""
        if self._shutdown_started.is_set():
            await self._stopped.wait()
            return
        self._shutdown_started.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            await self.router.drain()
        await self.router.fleet.stop()
        self._stopped.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown request (or task cancellation)."""
        await self._stopped.wait()


class ServiceClient:
    """Minimal JSON-lines client for the service socket."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and read one response (serialized per
        client; open several clients for concurrency)."""
        async with self._lock:
            self._writer.write(
                (json.dumps(payload) + "\n").encode())
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def submit(self, job: Dict[str, Any],
                     request_id: Any = None,
                     deadline_s: Optional[float] = None) -> Dict[str, Any]:
        request = {"op": "submit", "id": request_id, "job": job}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        return await self.request(request)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


__all__ = ["ServiceClient", "ServiceServer", "metrics_response"]
