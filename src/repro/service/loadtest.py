"""Concurrent-client load test over the in-process transport.

Simulates ``clients`` concurrent clients (asyncio tasks calling
``Router.submit`` directly — no socket overhead, so the numbers
measure the service layer itself) against a small worker fleet.  The
request mix cycles over ``distinct`` point-workload configurations, so
the test exercises all three fast paths at scale: engine runs
(misses), single-flight coalescing, and cache hits — plus admission
control, because ``max_pending`` is far below the client count and
shed clients retry with backoff until accepted.

The contract asserted by ``tests/test_service_load.py`` and the CI
smoke: **zero dropped accepted requests** — every client ends with an
``ok`` response (sheds are pre-acceptance and retriable by design) —
and exactly one engine dispatch per distinct configuration.  The
report (throughput, p50/p99/max latency, counter totals) is written to
``BENCH_SERVICE.json``, the start of the BENCH service trajectory.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List

from repro import telemetry
from repro.service.cache import ResultCache
from repro.service.fleet import Fleet
from repro.service.protocol import JobSpec, ServiceError
from repro.service.router import Router, RouterConfig
from repro.sim.monitor import Probe
from repro.telemetry.registry import snapshot_counter

#: Telemetry counter -> load-report field, the exact-reconciliation
#: contract: after a load test, each telemetry counter's *delta* must
#: equal the corresponding router/fleet total in the report.
_RECONCILE = (
    ("service_requests_total", {}, ("router", "requests")),
    ("service_cache_total", {"result": "hit"}, ("router", "cache_hits")),
    ("service_retries_total", {}, ("router", "retries")),
    ("service_shed_total", {}, ("router", "shed")),
    ("service_coalesced_total", {}, ("router", "coalesced")),
    ("service_completed_total", {}, ("router", "completed")),
    ("fleet_dispatch_total", {}, ("engine_dispatches",)),
)


def _series_label(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _reconcile_counters(snapshot: Dict[str, Any]) -> Dict[str, int]:
    return {_series_label(name, labels):
            snapshot_counter(snapshot, name, **labels)
            for name, labels, _path in _RECONCILE}


class LoadTestFailed(ServiceError):
    """A client finished without an ``ok`` response."""


def _spec_pool(distinct: int) -> List[JobSpec]:
    """``distinct`` deterministic point workloads (varying message
    sizes and repeat counts => distinct cache keys and run lengths)."""
    sizes = (4, 64, 256, 1024, 4096, 16384)
    pool = []
    for i in range(distinct):
        pool.append(JobSpec.make(
            "point", "via_latency",
            nbytes=sizes[i % len(sizes)],
            repeats=20 + i // len(sizes),
        ))
    return pool


async def run_load_test(clients: int = 1000, workers: int = 2,
                        distinct: int = 48, max_pending: int = 16,
                        max_client_retries: int = 400) -> Dict[str, Any]:
    """Run the load test; returns the report dict (pure: no files, no
    stdout — callers decide where the report goes)."""
    pool = _spec_pool(distinct)
    fleet = Fleet(workers, heartbeat_interval=0.1, hang_timeout=30.0)
    router = Router(fleet, ResultCache(), RouterConfig(
        max_pending=max_pending, max_attempts=3, deadline_s=120.0,
        retry_after_s=0.02))
    probe = Probe()
    outcomes = {"ok": 0, "failed": 0, "gave_up": 0}
    tel = telemetry.ACTIVE
    # Counter *baselines*, so the report reconciles even when earlier
    # runs in this process already advanced the plane's counters.
    tel_before = (_reconcile_counters(tel.merged_snapshot())
                  if tel is not None else None)

    async def client(index: int) -> Dict[str, Any]:
        spec = pool[index % len(pool)]
        wire = spec.to_wire()
        started = time.monotonic()
        for attempt in range(1, max_client_retries + 1):
            response = await router.submit(
                {"id": f"c{index}", "job": wire})
            status = response["status"]
            if status == "ok":
                latency_ms = (time.monotonic() - started) * 1e3
                probe.observe("latency_ms", latency_ms, keep=True)
                probe.observe(f"latency_ms:{response['cache']}",
                              latency_ms)
                outcomes["ok"] += 1
                return response
            if status == "overloaded" or (status == "error"
                                          and response.get("retriable")):
                # Deterministic client-side jitter: spread retries so
                # the shed herd doesn't stampede back in lockstep.
                base = response.get("retry_after_s", 0.02)
                await asyncio.sleep(base * (1.0 + (index % 10) / 10.0))
                continue
            outcomes["failed"] += 1
            return response
        outcomes["gave_up"] += 1
        return response

    await fleet.start()
    wall_start = time.monotonic()
    try:
        responses = await asyncio.gather(
            *(client(i) for i in range(clients)))
        # Second wave: with every job resolved, one request per
        # distinct spec must be a pure cache hit — and must not
        # dispatch any engine run.
        dispatches_before_wave = fleet.dispatches
        hit_wave = await asyncio.gather(
            *(router.submit({"id": f"hit{i}", "job": s.to_wire()})
              for i, s in enumerate(pool)))
        hit_wave_hits = sum(1 for r in hit_wave
                            if r["status"] == "ok" and r["cache"] == "hit")
        hit_wave_dispatches = fleet.dispatches - dispatches_before_wave
    finally:
        wall_s = time.monotonic() - wall_start
        await fleet.stop()

    bad = [r for r in responses if r["status"] != "ok"]
    stats = probe.stats("latency_ms")
    report = {
        "clients": clients,
        "workers": workers,
        "distinct_jobs": len(pool),
        "max_pending": max_pending,
        "ok": outcomes["ok"],
        "failed": outcomes["failed"] + outcomes["gave_up"],
        "dropped_accepted": (router.counters["accepted"]
                             - router.counters["completed"]
                             - router.counters["job_failures"]
                             - router.counters["retriable_errors"]),
        "engine_dispatches": fleet.dispatches,
        "hit_wave": {"requests": len(pool), "hits": hit_wave_hits,
                     "dispatches": hit_wave_dispatches},
        "router": dict(router.counters),
        "cache": router.cache.snapshot(),
        "fleet_counters": dict(fleet.counters),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(outcomes["ok"] / wall_s, 1),
        "latency_ms": {
            "mean": round(stats.mean, 3),
            "p50": round(probe.percentile("latency_ms", 50), 3),
            "p99": round(probe.percentile("latency_ms", 99), 3),
            "max": round(stats.maximum, 3),
        },
        "failures": bad[:5],
    }
    if tel is not None:
        tel_after = _reconcile_counters(tel.merged_snapshot())
        deltas = {label: tel_after[label] - tel_before[label]
                  for label in tel_after}
        expected = {}
        for name, labels, path in _RECONCILE:
            value: Any = report
            for step in path:
                value = value[step]
            expected[_series_label(name, labels)] = value
        report["telemetry"] = {
            "enabled": True,
            "run": tel.run_id,
            "counters": deltas,
            "expected": expected,
            "reconciled": deltas == expected,
        }
    return report


def check_report(report: Dict[str, Any]) -> None:
    """Raise :class:`LoadTestFailed` unless the contract held."""
    if report["failed"] or report["ok"] != report["clients"]:
        raise LoadTestFailed(
            f"{report['failed']} of {report['clients']} clients did "
            f"not complete: {report['failures']!r}"
        )
    if report["dropped_accepted"]:
        raise LoadTestFailed(
            f"{report['dropped_accepted']} accepted requests never "
            f"resolved"
        )
    if report["engine_dispatches"] != report["distinct_jobs"]:
        raise LoadTestFailed(
            f"expected exactly one engine run per distinct job "
            f"({report['distinct_jobs']}), saw "
            f"{report['engine_dispatches']} dispatches"
        )
    wave = report["hit_wave"]
    if wave["hits"] != wave["requests"] or wave["dispatches"]:
        raise LoadTestFailed(
            f"cache-hit wave expected {wave['requests']} hits and no "
            f"engine runs, saw {wave['hits']} hits and "
            f"{wave['dispatches']} dispatches"
        )
    section = report.get("telemetry")
    if section is not None and not section["reconciled"]:
        mismatches = {
            label: (section["counters"][label],
                    section["expected"][label])
            for label in section["expected"]
            if section["counters"].get(label) != section["expected"][label]
        }
        raise LoadTestFailed(
            f"telemetry counters do not reconcile with the load report "
            f"(telemetry, expected): {mismatches!r}"
        )


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write the report as pretty sorted JSON (the CI artifact)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    latency = report["latency_ms"]
    lines = (
        f"service load test: {report['clients']} clients, "
        f"{report['workers']} workers, {report['distinct_jobs']} "
        f"distinct jobs, max_pending={report['max_pending']}\n"
        f"  ok={report['ok']} failed={report['failed']} "
        f"dropped_accepted={report['dropped_accepted']}\n"
        f"  engine runs={report['engine_dispatches']} "
        f"cache_hits={report['router']['cache_hits']} "
        f"coalesced={report['router']['coalesced']} "
        f"shed={report['router']['shed']} "
        f"hit_wave={report['hit_wave']['hits']}/"
        f"{report['hit_wave']['requests']}\n"
        f"  wall={report['wall_s']}s "
        f"throughput={report['throughput_rps']} req/s  latency "
        f"p50={latency['p50']}ms p99={latency['p99']}ms "
        f"max={latency['max']}ms\n"
    )
    section = report.get("telemetry")
    if section is not None:
        verdict = "reconciled" if section["reconciled"] else "MISMATCH"
        lines += (f"  telemetry: {verdict} "
                  f"({len(section['counters'])} counters checked)\n")
    return lines


__all__ = [
    "LoadTestFailed",
    "check_report",
    "render_report",
    "run_load_test",
    "write_report",
]
