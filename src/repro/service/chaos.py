"""Service-level chaos: SIGKILL/SIGSTOP workers under live requests.

``python -m repro.service --chaos`` (and ``tests/test_service_chaos``)
drive a seeded campaign against a real fleet:

1. build a request mix (figures, traces, breakdowns, point workloads,
   a lossy seeded point run, duplicates for coalescing, plus malformed
   specs that must fail *structurally*);
2. compute unperturbed reference payloads in-process through the same
   pure :func:`repro.service.jobs.execute` code path the workers use;
3. derive a deterministic fault plan from the seed (CRC32 mixing, the
   same idiom as the engine-level chaos in ``bench/chaos.py``): some
   request keys get their first dispatch's worker SIGKILLed after a
   seeded delay, some SIGSTOPped (the supervisor must detect the lost
   heartbeat and kill);
4. submit everything concurrently and verify the service contract:
   **every accepted request terminates** (a global wall-clock budget
   guards the harness itself), every ``ok`` result is **bit-identical**
   to its unperturbed reference, and every non-ok outcome is a
   **structured** error with the expected retriability.

:func:`chaos_campaign` runs the whole thing twice with the same seed
and checks the outcome map (status + payload hash per request) is
identical across reruns — the service-layer determinism check.
"""

from __future__ import annotations

import asyncio
import signal
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.canonical import content_hash, stable_json
from repro.service.cache import ResultCache
from repro.service.fleet import Fleet
from repro.service.jobs import execute
from repro.service.protocol import JobSpec, ServiceError
from repro.service.router import Router, RouterConfig

#: Overall harness budget (s): nothing may outlive this.
CAMPAIGN_BUDGET_S = 300.0


class ChaosContractViolation(ServiceError):
    """The service broke its fault-tolerance contract under chaos."""


def _mix(seed: int, index: int, salt: str = "") -> int:
    return zlib.crc32(f"service-chaos:{seed}:{index}:{salt}".encode()) \
        & 0x7FFFFFFF


def _spec_pool() -> List[JobSpec]:
    """Distinct, deterministic jobs long enough for kills to land
    mid-run (figures/traces) mixed with fast point workloads."""
    return [
        JobSpec.make("figure", "fig5", quick=True),
        JobSpec.make("figure", "fig2", quick=True),
        JobSpec.make("figure", "routing", quick=True),
        JobSpec.make("trace", quick=True),
        JobSpec.make("breakdown", quick=True),
        JobSpec.make("point", "via_latency", nbytes=4, repeats=25),
        JobSpec.make("point", "via_latency", nbytes=1024, hops=2),
        JobSpec.make("point", "tcp_latency", nbytes=256),
        JobSpec.make("point", "via_pingpong_bandwidth", nbytes=16384),
        JobSpec.make("point", "via_latency", nbytes=4, loss=0.01,
                     seed=7),
        # Checkpointing workloads: a kill mid-run leaves window/item
        # snapshots a retry resumes from (crash-resume coverage).
        JobSpec.make("pdes", "aggregate", dims="2x2x2", nshards=2,
                     ckpt_every=8),
        JobSpec.make("chaos", campaigns=2, seed=3),
    ]


def plan_campaign(seed: int, requests: int
                  ) -> Tuple[List[JobSpec], Dict[str, Tuple[str, float]]]:
    """The request list and the per-key fault plan for ``seed``.

    Returns ``(specs, faults)`` where ``faults`` maps a job's cache
    key to ``(fault, delay_s)`` with fault in ``{"kill", "stall"}``;
    only the *first* dispatch of a key is targeted, so the bounded
    retry budget always suffices.
    """
    pool = _spec_pool()
    specs = [pool[i % len(pool)] for i in range(requests)]
    faults: Dict[str, Tuple[str, float]] = {}
    for i, spec in enumerate(specs):
        key = spec.cache_key()
        if key in faults:
            continue
        draw = _mix(seed, i, "fault") % 100
        if draw < 40:
            fault = "kill"
        elif draw < 65:
            fault = "stall"
        else:
            continue
        delay_s = 0.05 + (_mix(seed, i, "delay") % 1000) / 1000.0 * 0.45
        faults[key] = (fault, round(delay_s, 3))
    return specs, faults


def reference_payloads(specs: List[JobSpec]) -> Dict[str, str]:
    """Unperturbed reference results, frozen text per cache key.

    Runs in-process through the exact worker code path; the engine's
    determinism makes these the ground truth every chaos-era result
    must match bit-for-bit.
    """
    references: Dict[str, str] = {}
    for spec in specs:
        key = spec.cache_key()
        if key not in references:
            references[key] = stable_json(execute(spec))
    return references


async def run_service_chaos(seed: int = 0, requests: int = 12,
                            workers: int = 3,
                            references: Optional[Dict[str, str]] = None,
                            ) -> Dict[str, Any]:
    """One chaos run; returns the verdict report (raises on contract
    violation)."""
    specs, fault_plan = plan_campaign(seed, requests)
    if references is None:
        references = reference_payloads(specs)
    pending_faults = dict(fault_plan)
    injected = {"kill": 0, "stall": 0}
    chaos_tasks = set()

    def on_dispatch(fleet: Fleet, handle, spec: JobSpec) -> None:
        fault = pending_faults.pop(spec.cache_key(), None)
        if fault is None:
            return
        kind, delay_s = fault

        async def strike() -> None:
            await asyncio.sleep(delay_s)
            if handle.state == "dead" or not fleet._running:
                return
            injected[kind] += 1
            signum = signal.SIGKILL if kind == "kill" else signal.SIGSTOP
            fleet._signal(handle, signum)

        task = asyncio.get_running_loop().create_task(strike())
        chaos_tasks.add(task)
        task.add_done_callback(chaos_tasks.discard)

    fleet = Fleet(workers, heartbeat_interval=0.05, hang_timeout=1.5,
                  on_dispatch=on_dispatch)
    router = Router(fleet, ResultCache(), RouterConfig(
        max_pending=requests + 4, max_attempts=4,
        backoff_base_s=0.05, deadline_s=60.0))
    await fleet.start()
    try:
        submits = [
            router.submit({"id": f"r{i}", "job": spec.to_wire()})
            for i, spec in enumerate(specs)
        ]
        # Malformed requests must produce structured errors, chaos or no.
        submits.append(router.submit({
            "id": "bad-op",
            "job": {"kind": "point", "name": "no_such_op"},
        }))
        submits.append(router.submit({
            "id": "bad-kind", "job": {"kind": "warp-drive"},
        }))
        responses = await asyncio.wait_for(
            asyncio.gather(*submits), CAMPAIGN_BUDGET_S)
    finally:
        for task in list(chaos_tasks):
            task.cancel()
        await fleet.stop()

    # -- verify the contract ------------------------------------------------
    verdicts: Dict[str, Dict[str, Any]] = {}
    for i, (spec, response) in enumerate(zip(specs, responses)):
        key = spec.cache_key()
        label = f"request r{i} ({spec.label()})"
        if response["status"] == "ok":
            text = stable_json(response["result"])
            if text != references[key]:
                raise ChaosContractViolation(
                    f"{label}: result differs from the unperturbed "
                    f"reference run"
                )
            outcome = {"status": "ok", "hash": content_hash(text)}
        elif response["status"] == "error":
            if not response.get("retriable"):
                raise ChaosContractViolation(
                    f"{label}: non-retriable error under chaos: "
                    f"{response!r}"
                )
            outcome = {"status": "retriable-error",
                       "error": response["error"]}
        else:
            raise ChaosContractViolation(
                f"{label}: unexpected response {response!r}"
            )
        entry = verdicts.setdefault(key[:16], outcome)
        if entry != outcome:
            raise ChaosContractViolation(
                f"{label}: same key resolved differently within one "
                f"run: {entry!r} vs {outcome!r}"
            )
    for rid, response in zip(("bad-op", "bad-kind"), responses[-2:]):
        if response["status"] != "error" or response.get("retriable"):
            raise ChaosContractViolation(
                f"malformed request {rid} got {response!r} instead of "
                f"a structured non-retriable error"
            )
        verdicts[rid] = {"status": "structured-error",
                         "error": response["error"]}
    return {
        "seed": seed,
        "requests": requests,
        "workers": workers,
        "distinct_keys": len(references),
        "faults_planned": {k[:16]: v for k, v in fault_plan.items()},
        "faults_injected": dict(injected),
        "fleet": {"dispatches": fleet.dispatches,
                  **{k: v for k, v in fleet.counters.items()}},
        "router": dict(router.counters),
        "verdicts": verdicts,
        "ok": sum(1 for v in verdicts.values()
                  if v["status"] == "ok"),
    }


def chaos_campaign(seed: int = 0, requests: int = 12, workers: int = 3,
                   runs: int = 2) -> Dict[str, Any]:
    """Run the campaign ``runs`` times with one seed and require
    identical outcome maps (the service-determinism check).  Returns
    the combined report; raises :class:`ChaosContractViolation` on any
    violation."""
    specs, _ = plan_campaign(seed, requests)
    references = reference_payloads(specs)
    reports = [
        asyncio.run(run_service_chaos(seed, requests, workers,
                                      references=references))
        for _ in range(runs)
    ]
    first = reports[0]["verdicts"]
    for rerun, report in enumerate(reports[1:], start=2):
        if report["verdicts"] != first:
            raise ChaosContractViolation(
                f"chaos rerun {rerun} produced different outcomes for "
                f"seed {seed}: {first!r} vs {report['verdicts']!r}"
            )
    combined = dict(reports[0])
    combined["runs"] = runs
    combined["deterministic"] = True
    combined["faults_injected_per_run"] = [
        r["faults_injected"] for r in reports
    ]
    return combined


def render_report(report: Dict[str, Any]) -> str:
    """Human summary of a :func:`chaos_campaign` report."""
    lines = [
        f"service chaos: seed={report['seed']} "
        f"requests={report['requests']} workers={report['workers']} "
        f"runs={report.get('runs', 1)}",
        f"  outcomes: {report['ok']} ok / "
        f"{len(report['verdicts'])} distinct "
        f"(all bit-identical to unperturbed references)",
        f"  faults planned: {len(report['faults_planned'])} "
        f"({report['faults_injected']} landed in run 1)",
        f"  fleet: {report['fleet']}",
        f"  deterministic across reruns: "
        f"{report.get('deterministic', 'n/a')}",
    ]
    return "\n".join(lines) + "\n"


__all__ = [
    "CAMPAIGN_BUDGET_S",
    "ChaosContractViolation",
    "chaos_campaign",
    "plan_campaign",
    "reference_payloads",
    "render_report",
    "run_service_chaos",
]
