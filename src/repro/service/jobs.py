"""Pure job execution: one importable function per workload family.

:func:`execute` is the single code path shared by service workers, the
service CLI, and the chaos harness's unperturbed reference runs.  It
returns plain JSON-able result payloads and never touches stdout or
the filesystem; determinism of the engine means ``execute(spec)`` is a
pure function of the spec (plus code version), which is exactly what
makes the result cache sound.

Workload families (``JobSpec.kind``):

``figure``
    One registered bench experiment (``fig2`` ... ``table1``,
    ablations); ``args: {"quick": bool}``.
``point``
    One microbenchmark point: ``name`` is the op (see
    :data:`POINT_OPS`), args are its scalar knobs (``nbytes``,
    ``repeats``, ``hops``), optional ``loss`` (per-frame loss rate,
    fault streams seeded by ``seed``).
``chaos``
    A seeded engine-level chaos campaign batch:
    ``args: {"campaigns": int}``, fault seed from ``seed``; with a
    process checkpoint store (:func:`repro.ckpt.default_store`) each
    campaign is persisted as it completes, so a retried job resumes
    instead of recomputing.
``trace``
    The traced fig5-style collective; returns span/event counts and
    the content hash of the span identity set.
``breakdown``
    The per-span-kind latency breakdown report of the fig2 point
    workload.
``pdes``
    One sharded PDES run: ``name`` is the workload, ``args:
    {"dims": "4x2x2", "nshards": int, "ckpt_every": int}``.  With a
    checkpoint store the run snapshots every ``ckpt_every`` windows
    and resumes from the newest persisted window set on retry.

Checkpoint/resume telemetry (windows resumed, campaigns loaded,
recoveries) varies with crash timing, so it never enters the payload —
retried runs must stay bit-identical for the cache integrity tripwire.
It is published through :data:`LAST_RUN_META` instead, which the
worker folds into its out-of-band result ``meta``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.service.protocol import JobSpec, ProtocolError

#: Resume/recovery telemetry of the most recent :func:`execute` in this
#: process.  Out-of-band on purpose: payloads are content-addressed and
#: must not depend on how many checkpoints a particular attempt loaded.
LAST_RUN_META: Dict[str, Any] = {}

#: Point ops: name -> (callable factory, unit, allowed scalar args).
POINT_OPS: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {
    "via_latency": ("via_latency", "us", ("nbytes", "repeats", "hops")),
    "tcp_latency": ("tcp_latency", "us", ("nbytes", "repeats")),
    "mpi_latency": ("mpi_latency", "us", ("nbytes", "repeats")),
    "via_pingpong_bandwidth": (
        "via_pingpong_bandwidth", "MB/s", ("nbytes", "repeats")),
    "tcp_pingpong_bandwidth": (
        "tcp_pingpong_bandwidth", "MB/s", ("nbytes", "repeats")),
    "via_simultaneous_bandwidth": (
        "via_simultaneous_bandwidth", "MB/s", ("nbytes",)),
    "tcp_simultaneous_bandwidth": (
        "tcp_simultaneous_bandwidth", "MB/s", ("nbytes",)),
}


def _result_payload(result) -> Dict[str, Any]:
    """An :class:`~repro.bench.harness.ExperimentResult` as plain JSON."""
    from repro.canonical import to_canonical

    return {
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": to_canonical(result.rows),
        "notes": list(result.notes),
    }


def _run_figure(spec: JobSpec) -> Dict[str, Any]:
    from repro.bench.harness import EXPERIMENTS, run_experiment

    if spec.name not in EXPERIMENTS:
        raise ProtocolError(
            f"unknown figure {spec.name!r}; choose from {EXPERIMENTS}"
        )
    result = run_experiment(spec.name, quick=bool(spec.arg("quick", True)))
    payload = _result_payload(result)
    payload["kind"] = "figure"
    return payload


def _run_point(spec: JobSpec) -> Dict[str, Any]:
    from repro.bench import microbench as mb

    op = POINT_OPS.get(spec.name)
    if op is None:
        raise ProtocolError(
            f"unknown point op {spec.name!r}; choose from "
            f"{tuple(sorted(POINT_OPS))}"
        )
    func_name, unit, allowed = op
    func: Callable = getattr(mb, func_name)
    kwargs = {}
    for key in allowed:
        value = spec.arg(key)
        if value is not None:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(
                    f"point arg {key!r} must be an integer, got {value!r}"
                )
            kwargs[key] = value
    loss = spec.arg("loss", 0.0)
    if loss:
        from repro.hw import faults

        faults.clear_registry()
        faults.set_ambient(faults.FaultParams(seed=spec.seed,
                                              loss_rate=float(loss)))
        try:
            value = func(**kwargs)
        finally:
            faults.set_ambient(None)
            faults.clear_registry()
    else:
        value = func(**kwargs)
    return {"kind": "point", "op": spec.name, "unit": unit,
            "args": dict(spec.args), "value": float(value)}


def _run_chaos(spec: JobSpec) -> Dict[str, Any]:
    from repro.bench.chaos import (ALL_SCENARIOS, campaign_row,
                                   chaos_summary, run_campaign)
    from repro.ckpt import default_store, run_resumable
    from repro.hw import faults

    campaigns = spec.arg("campaigns", 1)
    if not isinstance(campaigns, int) or isinstance(campaigns, bool) \
            or campaigns < 1:
        raise ProtocolError(
            f"chaos campaigns must be a positive integer, got "
            f"{campaigns!r}"
        )
    scenario = spec.arg("scenario")
    if scenario is not None and scenario not in ALL_SCENARIOS:
        raise ProtocolError(
            f"unknown chaos scenario {scenario!r}; choose from "
            f"{tuple(ALL_SCENARIOS)}"
        )

    def one_campaign(_item, index: int):
        faults.clear_registry()
        try:
            return campaign_row(run_campaign(index, spec.seed,
                                             scenario=scenario))
        finally:
            faults.clear_registry()

    # Each campaign row persists as it completes (when this process
    # has a checkpoint store); a retry after a crash/hang-kill loads
    # the finished rows and only computes the remainder.  The summary
    # is built from rows either way, so the payload is bit-identical.
    progress = run_resumable(spec.cache_key(), list(range(campaigns)),
                             one_campaign, default_store())
    LAST_RUN_META.update(ckpt_loaded=progress.loaded,
                         ckpt_computed=progress.computed)
    result = chaos_summary(progress.results, spec.seed)
    payload = _result_payload(result)
    payload["kind"] = "chaos"
    payload["fault_seed"] = spec.seed
    return payload


def _run_pdes(spec: JobSpec) -> Dict[str, Any]:
    from repro.canonical import to_canonical
    from repro.ckpt import default_store
    from repro.pdes import CheckpointPolicy, run_sharded

    dims_arg = spec.arg("dims", "2x2x2")
    try:
        dims = tuple(int(part) for part in str(dims_arg).split("x"))
    except ValueError:
        dims = ()
    if not dims or any(d < 1 for d in dims):
        raise ProtocolError(
            f"pdes dims must look like '4x2x2', got {dims_arg!r}"
        )
    nshards = spec.arg("nshards", 2)
    if not isinstance(nshards, int) or isinstance(nshards, bool) \
            or nshards < 1:
        raise ProtocolError(
            f"pdes nshards must be a positive integer, got {nshards!r}"
        )
    every = spec.arg("ckpt_every", 16)
    if not isinstance(every, int) or isinstance(every, bool) or every < 0:
        raise ProtocolError(
            f"pdes ckpt_every must be a non-negative integer, got "
            f"{every!r}"
        )
    store = default_store()
    policy = CheckpointPolicy(every=every, store=store,
                              resume=store is not None,
                              key=spec.cache_key())
    # Shards stay in-process: fleet workers are daemonic and may not
    # spawn children.  Crash-resume still works — the *worker* is the
    # unit that dies and the window sets are on disk.
    result = run_sharded(dims, workload=spec.name or "aggregate",
                         nshards=nshards, checkpoint=policy)
    LAST_RUN_META.update(
        ckpt_windows_written=result.checkpoints,
        ckpt_recoveries=result.recoveries,
        ckpt_resumed_from=result.resumed_from,
        ckpt_new_windows=result.windows,
    )
    return {
        "kind": "pdes",
        "workload": spec.name or "aggregate",
        "dims": list(dims),
        "nshards": nshards,
        "table": to_canonical(result.table),
        "events": result.events_processed,
        "finish_us": result.now,
    }


def _run_trace(spec: JobSpec) -> Dict[str, Any]:
    from repro.bench.observability import trace_stats

    payload = trace_stats(quick=bool(spec.arg("quick", True)))
    payload["kind"] = "trace"
    return payload


def _run_breakdown(spec: JobSpec) -> Dict[str, Any]:
    from repro.bench.observability import breakdown_report

    return {"kind": "breakdown",
            "report": breakdown_report(quick=bool(spec.arg("quick", True)))}


_RUNNERS = {
    "figure": _run_figure,
    "point": _run_point,
    "chaos": _run_chaos,
    "trace": _run_trace,
    "breakdown": _run_breakdown,
    "pdes": _run_pdes,
}


def execute(spec: JobSpec) -> Dict[str, Any]:
    """Run one job to completion; returns its JSON-able payload.

    Deterministic: equal specs produce bit-identical payloads (the
    cache and the chaos harness both rely on this).  Raises
    :class:`ProtocolError` for specs that can never succeed and lets
    engine errors (:class:`~repro.errors.ReproError`) propagate — the
    worker reports both as structured, non-retriable job failures.
    """
    LAST_RUN_META.clear()
    runner = _RUNNERS.get(spec.kind)
    if runner is None:
        raise ProtocolError(f"unknown job kind {spec.kind!r}")
    return runner(spec)


__all__ = ["LAST_RUN_META", "POINT_OPS", "execute"]
