"""Request router: admission control, coalescing, deadlines, retries.

The router sits between the transport (socket server or in-process
client) and the fleet.  For each submit request it:

1. validates the job spec (malformed specs get a structured,
   non-retriable ``ProtocolError`` response);
2. consults the content-addressed cache — a hit returns the frozen
   result without touching the fleet;
3. coalesces with an identical in-flight request (single-flight: one
   engine run serves every concurrent requester of the same key);
4. applies admission control — if the accepted-pending set is full the
   request is shed *before* acceptance with a retriable ``overloaded``
   response (bounded queue, no unbounded buffering);
5. runs the job with a per-attempt wall-clock deadline, retrying on a
   fresh worker with exponential backoff when the worker crashes,
   hangs, or blows the deadline — up to ``max_attempts``, then a
   structured retriable error.  Deterministic job failures are never
   retried.

Every accepted request therefore terminates: attempts are bounded,
each attempt is bounded by its deadline (enforced by killing the
worker), and backoffs are finite.  Per-request lifecycle spans and
fleet metrics go to a wall-clock :class:`~repro.obs.FlightRecorder`,
reusing the simulator's observability layer one level up.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro import telemetry
from repro.obs import FlightRecorder
from repro.service.cache import ResultCache
from repro.service.fleet import Fleet, FleetStopped
from repro.service.protocol import (
    DeadlineExceeded,
    JobFailed,
    JobSpec,
    ProtocolError,
    WorkerCrashed,
    error_response,
    ok_response,
    overloaded_response,
)


@dataclass(frozen=True)
class RouterConfig:
    """Robustness knobs (see the failure matrix in docs/SERVICE.md)."""

    #: Accepted-but-unfinished requests admitted before load shedding.
    max_pending: int = 64
    #: Attempt budget per accepted request (first try + retries).
    max_attempts: int = 3
    #: Exponential backoff: ``base * factor**(attempt-1)`` seconds.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: Default per-attempt wall-clock deadline (requests may lower it
    #: with a ``deadline_s`` field; it is clamped to this ceiling).
    deadline_s: float = 120.0
    #: Hint returned with overloaded responses.
    retry_after_s: float = 0.05
    #: Graceful-drain budget before shutdown gives up waiting.
    drain_timeout_s: float = 60.0


class Router:
    """Dispatches validated requests to the fleet through the cache."""

    def __init__(self, fleet: Fleet, cache: Optional[ResultCache] = None,
                 config: Optional[RouterConfig] = None) -> None:
        self.fleet = fleet
        self.cache = cache if cache is not None else ResultCache()
        self.config = config or RouterConfig()
        #: Wall-clock observability: per-request spans + fleet metrics
        #: timeline (0.25 s buckets; times are seconds since router
        #: creation on the "service" track).
        self.recorder = FlightRecorder(metrics_interval=0.25)
        self.counters: Dict[str, int] = {
            "requests": 0, "accepted": 0, "completed": 0,
            "cache_hits": 0, "coalesced": 0, "shed": 0,
            "bad_requests": 0, "job_failures": 0, "retries": 0,
            "retriable_errors": 0, "drained_rejects": 0,
        }
        self._pending = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        self._draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        self._t0 = time.monotonic()
        tel = telemetry.ACTIVE
        if tel is not None:
            # The wall-clock request recorder joins the unified trace
            # export under the "wall:router/..." tracks.
            tel.register_wall_recorder("router", self.recorder)

    # -- observability helpers ---------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _observe_load(self) -> None:
        t = self._now()
        self.recorder.metrics.observe("queue_depth", t, self._pending)
        self.recorder.metrics.observe("busy_workers", t,
                                      len(self.fleet.busy_workers()))
        tel = telemetry.ACTIVE
        if tel is not None:
            tel.registry.gauge("service_queue_depth").set(self._pending)
            tel.registry.gauge("service_busy_workers").set(
                len(self.fleet.busy_workers()))

    # -- the submit path ----------------------------------------------------
    async def submit(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Handle one submit request end to end; always returns a
        response dict, never raises, never hangs."""
        self.counters["requests"] += 1
        tel = telemetry.ACTIVE
        if tel is not None:
            tel.registry.counter("service_requests_total").inc()
        rid = request.get("id")
        started = time.monotonic()
        try:
            spec = JobSpec.from_wire(request.get("job"))
        except ProtocolError as exc:
            self.counters["bad_requests"] += 1
            if tel is not None:
                tel.registry.counter("service_bad_requests_total").inc()
                tel.events.warn("service.bad_request", str(exc),
                                run=tel.run_id)
            return error_response(rid, "ProtocolError", str(exc),
                                  retriable=False)
        key = spec.cache_key()
        trace = self.recorder.start_trace(spec.label(), "service",
                                          self._now())

        cached = self.cache.get(key)
        if cached is not None:
            self.counters["cache_hits"] += 1
            if tel is not None:
                tel.registry.counter("service_cache_total",
                                     result="hit").inc()
            self.recorder.event(trace, "cache-hit", spec.label(),
                                "service", self._now())
            return ok_response(rid, key, cached, "hit", attempts=0,
                               elapsed_s=time.monotonic() - started)

        leader = self._inflight.get(key)
        if leader is not None:
            self.counters["coalesced"] += 1
            if tel is not None:
                tel.registry.counter("service_coalesced_total").inc()
            self.recorder.event(trace, "coalesced", spec.label(),
                                "service", self._now())
            response = dict(await leader)
            response["id"] = rid
            if response["status"] == "ok":
                response["cache"] = "coalesced"
            response["elapsed_s"] = round(time.monotonic() - started, 6)
            return response

        if self._draining:
            self.counters["drained_rejects"] += 1
            if tel is not None:
                tel.registry.counter("service_drained_rejects_total").inc()
            return error_response(rid, "ShuttingDown",
                                  "service is draining; resubmit later",
                                  retriable=True)
        if self._pending >= self.config.max_pending:
            self.counters["shed"] += 1
            if tel is not None:
                tel.registry.counter("service_shed_total").inc()
                tel.events.warn("service.shed", spec.label(),
                                run=tel.run_id, pending=self._pending)
            self.recorder.event(trace, "shed", spec.label(), "service",
                                self._now())
            return overloaded_response(rid, self.config.retry_after_s)

        # Accepted: from here the request MUST terminate with a
        # response, and the single-flight future MUST resolve so
        # coalesced waiters can never hang.
        self.counters["accepted"] += 1
        if tel is not None:
            tel.registry.counter("service_accepted_total").inc()
            tel.registry.counter("service_cache_total",
                                 result="miss").inc()
        self._pending += 1
        self._drained.clear()
        self._observe_load()
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            response = await self._execute(rid, spec, key, trace, started,
                                           request.get("deadline_s"))
        except Exception as exc:  # belt and braces: never leak a raise
            response = error_response(rid, type(exc).__name__, str(exc),
                                      retriable=True)
        finally:
            del self._inflight[key]
            future.set_result(response)
            self._pending -= 1
            if self._pending == 0:
                self._drained.set()
            self._observe_load()
        self.recorder.span(trace, "request", spec.label(), "service",
                           started - self._t0, self._now())
        return response

    async def _execute(self, rid: Any, spec: JobSpec, key: str,
                       trace: int, started: float,
                       requested_deadline: Any = None) -> Dict[str, Any]:
        # The deadline is a *request* field, not part of the job spec,
        # so it can never perturb the cache key.
        deadline = self.config.deadline_s
        if isinstance(requested_deadline, (int, float)) \
                and not isinstance(requested_deadline, bool) \
                and requested_deadline > 0:
            deadline = min(float(requested_deadline), deadline)
        last_error: Optional[Exception] = None
        tel = telemetry.ACTIVE
        for attempt in range(1, self.config.max_attempts + 1):
            attempt_start = self._now()
            try:
                payload = await self.fleet.run_job(spec, timeout=deadline)
            except JobFailed as exc:
                # Deterministic failure: retrying re-runs the same
                # engine on the same config — surface it immediately.
                self.counters["job_failures"] += 1
                self.recorder.span(trace, "attempt-failed", spec.label(),
                                   "service", attempt_start, self._now())
                if tel is not None:
                    tel.registry.histogram(
                        "service_attempt_seconds", outcome="failed",
                    ).observe(self._now() - attempt_start)
                    tel.registry.counter("service_job_failures_total").inc()
                    tel.events.error("service.job_failure", exc.detail,
                                     run=tel.run_id, job=spec.label(),
                                     error_type=exc.error_type,
                                     attempt=attempt)
                return error_response(rid, exc.error_type, exc.detail,
                                      retriable=False, attempts=attempt,
                                      key=key)
            except (WorkerCrashed, DeadlineExceeded, FleetStopped) as exc:
                last_error = exc
                self.recorder.span(trace, "attempt-lost", spec.label(),
                                   "service", attempt_start, self._now())
                if tel is not None:
                    tel.registry.histogram(
                        "service_attempt_seconds", outcome="lost",
                    ).observe(self._now() - attempt_start)
                    tel.events.warn("service.attempt_lost", str(exc),
                                    run=tel.run_id, job=spec.label(),
                                    error_type=type(exc).__name__,
                                    attempt=attempt)
                if attempt >= self.config.max_attempts or isinstance(
                        exc, FleetStopped):
                    break
                self.counters["retries"] += 1
                if tel is not None:
                    tel.registry.counter("service_retries_total").inc()
                backoff = (self.config.backoff_base_s *
                           self.config.backoff_factor ** (attempt - 1))
                self.recorder.event(trace, "retry", spec.label(),
                                    "service", self._now())
                await asyncio.sleep(backoff)
            else:
                self.cache.put(key, payload)
                self.counters["completed"] += 1
                self.recorder.span(trace, "attempt-ok", spec.label(),
                                   "service", attempt_start, self._now())
                if tel is not None:
                    tel.registry.histogram(
                        "service_attempt_seconds", outcome="ok",
                    ).observe(self._now() - attempt_start)
                    tel.registry.counter("service_completed_total").inc()
                return ok_response(rid, key, payload, "miss",
                                   attempts=attempt,
                                   elapsed_s=time.monotonic() - started)
        self.counters["retriable_errors"] += 1
        if tel is not None:
            tel.registry.counter("service_retriable_errors_total").inc()
            tel.events.error(
                "service.retry_exhausted",
                f"{spec.label()}: {last_error}", run=tel.run_id,
                job=spec.label(), attempts=self.config.max_attempts)
        return error_response(
            rid, type(last_error).__name__,
            f"{spec.label()}: retry budget exhausted after "
            f"{self.config.max_attempts} attempts ({last_error})",
            retriable=True, attempts=self.config.max_attempts, key=key,
            checkpoint=self._latest_checkpoint(key),
        )

    def _latest_checkpoint(self, key: str) -> Optional[Dict[str, Any]]:
        """Newest durable checkpoint for ``key``, as wire-shaped info.

        Attached to retriable errors so the client knows a resubmit
        resumes rather than recomputes (``None`` when the job never
        checkpointed — e.g. it crashed before the first snapshot).
        """
        root = self.fleet.ckpt_dir
        if not root:
            return None
        from repro.ckpt import CheckpointStore

        try:
            ref = CheckpointStore(root).latest(key)
        except OSError:  # pragma: no cover - unreadable store
            return None
        if ref is None:
            return None
        return {"id": ref.ckpt_id, "kind": ref.kind, "index": ref.index}

    # -- drain / status ------------------------------------------------------
    async def drain(self) -> bool:
        """Stop admitting, wait for in-flight requests to finish.

        Returns True when the pending set emptied within the drain
        budget (False means shutdown proceeded with work abandoned).
        """
        self._draining = True
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   self.config.drain_timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        return self._pending

    def status(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "pending": self._pending,
            "draining": self._draining,
            "counters": dict(self.counters),
            "cache": self.cache.snapshot(),
            "fleet": self.fleet.status(),
            "uptime_s": round(self._now(), 3),
            "metrics_series": self.recorder.metrics.names(),
        }


__all__ = ["Router", "RouterConfig"]
