"""CLI: ``python -m repro.service`` — serve, chaos, or load test.

* ``python -m repro.service --workers 4 --port 7115`` starts the
  socket server and serves until a ``shutdown`` request arrives.
* ``python -m repro.service --chaos --seed 1`` runs the seeded
  service-level chaos campaign twice and verifies determinism.
* ``python -m repro.service --load-test 1000`` runs the concurrent
  client load test and writes ``BENCH_SERVICE.json``.
* ``--telemetry`` enables the wall-clock telemetry plane for any of
  the above (adds the ``metrics`` op to the server, and the counter
  reconciliation section + summary to the load test);
  ``--telemetry-trace unified.json`` additionally writes the unified
  wall+sim Chrome/Perfetto trace.
"""

from __future__ import annotations

import argparse
import asyncio
import sys


async def _serve(args) -> int:
    from repro.service.cache import ResultCache
    from repro.service.fleet import Fleet
    from repro.service.router import Router, RouterConfig
    from repro.service.server import ServiceServer

    fleet = Fleet(args.workers)
    router = Router(fleet, ResultCache(capacity=args.cache_capacity),
                    RouterConfig(max_pending=args.max_pending))
    server = ServiceServer(router, host=args.host, port=args.port)
    await fleet.start()
    host, port = await server.start()
    sys.stdout.write(
        f"[repro.service: {args.workers} workers, listening on "
        f"{host}:{port}; JSON lines, ops: submit/status/ping/"
        f"shutdown]\n"
    )
    sys.stdout.flush()
    await server.serve_until_shutdown()
    sys.stdout.write("[repro.service: drained and stopped]\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Simulation-as-a-service front-end "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in the fleet")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at "
                             "startup)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission-control bound before load "
                             "shedding")
    parser.add_argument("--cache-capacity", type=int, default=4096,
                        help="result-cache entries before LRU "
                             "eviction")
    parser.add_argument("--chaos", action="store_true",
                        help="run the seeded service chaos campaign "
                             "(twice; verifies determinism) and exit")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos schedule seed")
    parser.add_argument("--requests", type=int, default=12,
                        help="chaos campaign request count")
    parser.add_argument("--load-test", type=int, default=0, metavar="N",
                        help="run the N-client load test and exit")
    parser.add_argument("--bench-out", default="BENCH_SERVICE.json",
                        help="load-test report path")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the wall-clock telemetry plane "
                             "(metrics registry + event log; adds the "
                             "'metrics' op and the load-test "
                             "reconciliation section)")
    parser.add_argument("--telemetry-trace", default=None, metavar="PATH",
                        help="with --telemetry: write the unified "
                             "wall+sim Chrome/Perfetto trace to PATH "
                             "on exit")
    args = parser.parse_args(argv)

    if args.telemetry_trace and not args.telemetry:
        parser.error("--telemetry-trace requires --telemetry")
    if args.telemetry:
        from repro import telemetry

        telemetry.enable()

    if args.chaos:
        from repro.service.chaos import chaos_campaign, render_report

        report = chaos_campaign(seed=args.seed, requests=args.requests,
                                workers=args.workers)
        sys.stdout.write(render_report(report))
        return 0

    if args.load_test:
        from repro.service import loadtest

        report = asyncio.run(loadtest.run_load_test(
            clients=args.load_test, workers=args.workers))
        loadtest.check_report(report)
        loadtest.write_report(args.bench_out, report)
        sys.stdout.write(loadtest.render_report(report))
        sys.stdout.write(f"[report written to {args.bench_out}]\n")
        if args.telemetry:
            _telemetry_epilogue(args.telemetry_trace)
        return 0

    return asyncio.run(_serve(args))


def _telemetry_epilogue(trace_path) -> None:
    """Print the live counter totals; optionally write the unified
    wall+sim trace (the sim domain comes from a small in-process
    traced collective — worker-process sim recorders stay worker-side)."""
    from repro import telemetry
    from repro.telemetry.registry import top_counters

    tel = telemetry.ACTIVE
    sys.stdout.write("[telemetry counters]\n")
    for name, value in top_counters(tel.merged_snapshot(), limit=12):
        sys.stdout.write(f"  {name} = {value}\n")
    if trace_path:
        from repro.bench.observability import traced_collective
        from repro.telemetry.export import (
            validate_unified_trace,
            write_unified_trace,
        )

        sim_recorder = traced_collective(nbytes=1024)
        trace = write_unified_trace(tel, trace_path,
                                    [("collective", sim_recorder)])
        problems = validate_unified_trace(trace)
        if problems:
            raise RuntimeError("unified trace failed validation: "
                               + "; ".join(problems[:5]))
        sys.stdout.write(
            f"[unified trace: {trace_path} — "
            f"{len(trace['traceEvents'])} events, clock domains "
            f"wall+sim; open at https://ui.perfetto.dev]\n")


if __name__ == "__main__":
    raise SystemExit(main())
