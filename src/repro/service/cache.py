"""Content-addressed result cache.

Keys are canonical content hashes of the full run identity
(:meth:`repro.service.protocol.JobSpec.cache_key`); values are result
payloads frozen as deterministic JSON text at insertion time.  Because
the engine is deterministic, a key fully determines its value — the
cache therefore *verifies* that property: inserting a different
payload under an existing key raises :class:`CacheIntegrityError`
instead of silently replacing the stored result.  This is what turns
"retry on a fresh worker" into exactly-once semantics: however many
times a request is retried, killed, or coalesced, one frozen result
text serves every response bit-identically.

Eviction is LRU over a bounded entry count; every hit re-decodes the
frozen text so callers can never mutate the stored result in place.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.canonical import stable_json
from repro.service.protocol import ServiceError


class CacheIntegrityError(ServiceError):
    """Two different payloads were inserted under one content key."""


class ResultCache:
    """Bounded LRU store of frozen result payloads, keyed by content."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "insertions": 0, "evictions": 0,
        }

    def get(self, key: str) -> Optional[Any]:
        """The payload stored under ``key`` (a fresh decode), or None."""
        text = self._entries.get(key)
        if text is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return json.loads(text)

    def get_text(self, key: str) -> Optional[str]:
        """The frozen JSON text under ``key`` (no stats side effects)."""
        return self._entries.get(key)

    def put(self, key: str, payload: Any) -> str:
        """Freeze ``payload`` under ``key``; returns the frozen text.

        Idempotent for identical payloads; a *different* payload under
        an existing key means determinism was violated somewhere and
        raises :class:`CacheIntegrityError`.
        """
        text = stable_json(payload)
        existing = self._entries.get(key)
        if existing is not None:
            if existing != text:
                raise CacheIntegrityError(
                    f"content key {key[:16]} already holds a different "
                    f"result ({len(existing)} vs {len(text)} bytes)"
                )
            self._entries.move_to_end(key)
            return text
        self._entries[key] = text
        self.stats["insertions"] += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats["evictions"] += 1
        return text

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        """Stats plus current size (for the status endpoint)."""
        out = dict(self.stats)
        out["entries"] = len(self._entries)
        out["capacity"] = self.capacity
        return out


__all__ = ["CacheIntegrityError", "ResultCache"]
