"""Event primitives for the simulation kernel.

An :class:`Event` moves through three states:

* *pending* — created but not yet triggered;
* *triggered* — a value (or failure) is set and the event sits in the
  simulator queue;
* *processed* — the simulator has popped it and run its callbacks.

Processes wait on events by ``yield``-ing them; the kernel resumes the
process when the event is processed, sending the event's value into the
generator (or throwing its exception).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulator

#: Priority tiers for same-time events. URGENT events (interrupts,
#: resource bookkeeping) run before NORMAL ones at equal timestamps.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or failure has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Set a success value and schedule processing now."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Set a failure and schedule processing now.

        The exception is thrown into every process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=0.0, priority=priority)
        return self

    # -- kernel hook --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks. Called exactly once by the simulator."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately-ish if already processed."""
        if self.callbacks is None:
            # Already processed: schedule a shim so ordering stays causal.
            stub = Event(self.sim, name=f"late-callback:{self.name}")
            stub.callbacks.append(lambda _e: callback(self))
            stub._ok = self._ok
            stub._value = self._value if self._value is not _PENDING else None
            self.sim.schedule(stub, delay=0.0, priority=URGENT)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"

    # -- composition --------------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created via :meth:`repro.sim.Simulator.timeout`; triggering happens
    at construction, so a Timeout cannot be cancelled — model
    cancellable waits with a plain :class:`Event` plus
    :class:`AnyOf`.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Building the label costs more than the rest of the
        # constructor; only pay for it when a trace will read it.
        if not name and sim.trace is not None:
            name = f"timeout({delay:g})"
        super().__init__(sim, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay, priority=NORMAL)


class Callback(Event):
    """A pre-triggered event that invokes ``fn`` when processed.

    Replaces the spawn-a-process-to-run-one-timeout pattern on hot
    paths (bus wakeups, link deliveries): one queue entry instead of an
    init event, a timeout, and a process-completion event.  ``fn`` runs
    before any waiter callbacks, at the event's scheduled instant.
    """

    __slots__ = ("fn",)

    def __init__(self, sim: "Simulator", fn: Callable[[], None],
                 delay: float = 0.0, at: Optional[float] = None,
                 priority: int = NORMAL, name: str = "") -> None:
        super().__init__(sim, name=name)
        self.fn = fn
        self._ok = True
        self._value = None
        if at is not None:
            sim.schedule_at(self, at, priority=priority)
        else:
            sim.schedule(self, delay=delay, priority=priority)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        self.fn()
        for callback in callbacks:
            callback(self)


class Condition(Event):
    """Base for AnyOf/AllOf composition over a set of events.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value at the moment the condition fired.
    """

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError(
                    "cannot mix events from different simulators"
                )
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                # Already processed before the condition existed.
                self._check(event)
            else:
                event.add_callback(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout is "triggered" the
        # moment it is created, but it hasn't happened until the clock
        # reaches it.
        return {
            event: event._value
            for event in self.events
            if event._processed and event._ok
        }


class AnyOf(Condition):
    """Fires as soon as any constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Fires when all constituent events have been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
