"""Generator-based simulation processes.

A process body is a generator that yields :class:`~repro.sim.events.Event`
objects; the kernel resumes it with the event's value (or throws the
event's exception).  A :class:`Process` is itself an event that fires
with the generator's return value, so processes can wait on each other::

    def child(sim):
        yield sim.timeout(3)
        return 42

    def parent(sim):
        result = yield sim.spawn(child(sim))
        assert result == 42
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import InterruptError, SimulationError
from repro.sim.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class _Initialize(Event):
    """Internal event that starts a freshly spawned process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(
            sim,
            name=f"init:{process.name}" if sim.trace is not None else "",
        )
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim.schedule(self, delay=0.0, priority=URGENT)


class Process(Event):
    """A running coroutine inside the simulation.

    Do not instantiate directly — use :meth:`Simulator.spawn`.
    """

    __slots__ = ("generator", "_target", "is_alive")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"spawn() requires a generator, got {generator!r} — "
                "did you call the process function with ()?"
            )
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self.generator = generator
        #: The event this process is currently waiting on (None while
        #: it is being resumed or before it starts).
        self._target: Optional[Event] = None
        self.is_alive = True
        _Initialize(sim, self)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        The process keeps its place in any resource queues; waiting on
        the original target again is the process body's responsibility.
        Interrupting a dead process raises :class:`SimulationError`.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self._target is None and not self.triggered:
            # Process is starting up this instant; interrupt still works
            # because the interrupt event carries URGENT priority and the
            # resume hook checks for stale targets.
            pass
        interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_event._ok = False
        interrupt_event._value = InterruptError(cause)
        interrupt_event.callbacks.append(self._resume)
        self.sim.schedule(interrupt_event, delay=0.0, priority=URGENT)

    # -- kernel hook --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if not self.is_alive:
            return  # e.g. interrupted to death while a timeout was pending
        if event is not self._target and self._target is not None:
            # A stale wakeup: the process was interrupted while waiting
            # on `self._target`; that original event may fire later and
            # must not resume us twice unless we re-waited on it.
            if not isinstance(event._value, InterruptError):
                return
        self.sim._active_process = self
        # Detach from the old target so stale wakeups are detectable.
        old_target, self._target = self._target, None
        try:
            if event._ok:
                next_target = self.generator.send(event._value)
            else:
                exc = event._value
                if isinstance(exc, InterruptError) and old_target is not None:
                    # Leave the original event's callback in place only if
                    # it has not fired; the stale-wakeup guard above
                    # handles the case where it does fire.
                    pass
                next_target = self.generator.throw(exc)
        except StopIteration as stop:
            self.is_alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.is_alive = False
            if self.callbacks:
                self.fail(exc)
            else:
                # Nobody is waiting on this process: surface the crash
                # instead of losing it.
                self.sim._crash(self, exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(next_target, Event):
            self.is_alive = False
            self.fail(SimulationError(
                f"{self.name} yielded non-event {next_target!r}"
            ))
            return
        if next_target.sim is not self.sim:
            self.is_alive = False
            self.fail(SimulationError(
                f"{self.name} yielded event from another simulator"
            ))
            return
        self._target = next_target
        if next_target.callbacks is None:
            # Already processed: resume on the next URGENT tick with the
            # same outcome, preserving causal ordering.
            shim = Event(self.sim, name=f"shim:{self.name}")
            shim._ok = next_target._ok
            shim._value = next_target._value
            shim.callbacks.append(self._resume)
            self._target = shim
            self.sim.schedule(shim, delay=0.0, priority=URGENT)
        else:
            next_target.callbacks.append(self._resume)
