"""Tracing and measurement instrumentation for simulations.

A :class:`Trace` attached to a simulator records every processed event;
:class:`Probe` accumulates named samples (latency observations,
bandwidth points) with summary statistics.  Both are deliberately
allocation-light so they can stay attached during benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One processed event: (timestamp, event name, event type)."""

    time: float
    name: str
    kind: str


class Trace:
    """Ring-buffer event trace.

    Parameters
    ----------
    limit:
        Keep only the last ``limit`` records (None = unbounded).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit
        self.records: List[TraceRecord] = []

    def record(self, time: float, event: Any) -> None:
        self.records.append(
            TraceRecord(time, getattr(event, "name", ""), type(event).__name__)
        )
        if self.limit is not None and len(self.records) > self.limit:
            del self.records[: len(self.records) - self.limit]

    def filter(self, substring: str) -> List[TraceRecord]:
        """Records whose name contains ``substring``."""
        return [r for r in self.records if substring in r.name]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class SampleStats:
    """Streaming summary statistics over float samples (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


#: Kernel-agent counters that describe reliable-delivery/fault-recovery
#: activity (summed mesh-wide by ``MeshCluster.reliability_stats``).
RELIABILITY_COUNTERS = (
    "dropped_bad_checksum",
    "acks_sent",
    "acks_received",
    "retransmits",
    "timeouts",
    "dup_frames",
    "ooo_dropped",
    "rel_failures",
    "connect_retries",
    "dup_connects",
    "dup_accepts",
)


def reliability_summary(totals: Dict[str, int]) -> str:
    """One-line human summary of aggregated reliability counters.

    Only nonzero counters are shown; returns ``"no fault activity"``
    when nothing fired (the lossless case).
    """
    parts = [
        f"{key}={totals[key]}"
        for key in (*RELIABILITY_COUNTERS, "frames_dropped",
                    "frames_corrupted")
        if totals.get(key)
    ]
    return " ".join(parts) if parts else "no fault activity"


class Probe:
    """Named sample accumulator for simulation measurements."""

    def __init__(self) -> None:
        self._stats: Dict[str, SampleStats] = {}
        self._samples: Dict[str, List[float]] = {}

    def observe(self, name: str, value: float, keep: bool = False) -> None:
        """Record one sample under ``name``.

        ``keep=True`` retains the raw sample (for percentiles); summary
        statistics are always maintained.
        """
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SampleStats()
        stats.add(value)
        if keep:
            self._samples.setdefault(name, []).append(value)

    def stats(self, name: str) -> SampleStats:
        return self._stats[name]

    def samples(self, name: str) -> List[float]:
        return self._samples.get(name, [])

    def names(self) -> List[str]:
        return sorted(self._stats)

    def mean(self, name: str) -> float:
        return self._stats[name].mean
