"""Tracing and measurement instrumentation for simulations.

A :class:`Trace` attached to a simulator records every processed event;
:class:`Probe` accumulates named samples (latency observations,
bandwidth points) with summary statistics.  Both are deliberately
allocation-light so they can stay attached during benchmarks.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One processed event: (timestamp, event name, event type)."""

    time: float
    name: str
    kind: str


class Trace:
    """Ring-buffer event trace.

    Parameters
    ----------
    limit:
        Keep only the last ``limit`` records (None = unbounded).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit
        # deque(maxlen=...) trims in O(1) per append; a plain list needs
        # an O(n) slice-delete once the buffer is full.
        self.records: Deque[TraceRecord] = deque(maxlen=limit)

    def record(self, time: float, event: Any) -> None:
        self.records.append(
            TraceRecord(time, getattr(event, "name", ""), type(event).__name__)
        )

    def filter(self, substring: str) -> List[TraceRecord]:
        """Records whose name contains ``substring``."""
        return [r for r in self.records if substring in r.name]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Records as plain dicts (JSON/export friendly)."""
        return [
            {"time": r.time, "name": r.name, "kind": r.kind}
            for r in self.records
        ]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class SampleStats:
    """Streaming summary statistics over float samples (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "SampleStats") -> "SampleStats":
        """Fold ``other`` into this accumulator (parallel Welford
        combine, Chan et al.); returns ``self``."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


#: Kernel-agent counters that describe reliable-delivery/fault-recovery
#: activity (summed mesh-wide by ``MeshCluster.reliability_stats``).
RELIABILITY_COUNTERS = (
    "dropped_bad_checksum",
    "acks_sent",
    "acks_received",
    "retransmits",
    "timeouts",
    "dup_frames",
    "ooo_dropped",
    "rel_failures",
    "connect_retries",
    "dup_connects",
    "dup_accepts",
    # Failure-detector activity (node faults only).
    "keepalives_sent",
    "keepalives_received",
    "dead_notices_sent",
    "dead_notices_received",
    "peers_declared_dead",
    "recv_drained",
)


def reliability_summary(totals: Dict[str, int]) -> str:
    """One-line human summary of aggregated reliability counters.

    Only nonzero counters are shown; returns ``"no fault activity"``
    when nothing fired (the lossless case).
    """
    parts = [
        f"{key}={totals[key]}"
        for key in (*RELIABILITY_COUNTERS, "frames_dropped",
                    "frames_corrupted", "hangs_detected", "retry_storms")
        if totals.get(key)
    ]
    return " ".join(parts) if parts else "no fault activity"


class Watchdog:
    """Hang and retry-storm monitor for node-fault campaigns.

    Periodic timers (keepalives, retransmission timers) keep the event
    queue busy forever, so the kernel's :class:`DeadlockError` can
    never fire during a *distributed* hang — the queue never drains.
    The watchdog bounds those instead: it samples the simulator's
    application-progress counter (bumped on descriptor/request/
    collective completions) and raises
    :class:`~repro.errors.HangError` with a diagnostic naming the
    stuck VIs/requests/ranks when no progress lands within
    ``hang_after`` us while the simulation is still being driven.

    ``hang_after`` defaults comfortably above the longest legitimate
    quiet stretch (a full connect/retransmission retry budget, ~40 ms
    of simulated time at the default RTO schedule).

    Retry storms — more than ``storm_retransmits`` retransmissions in
    one ``interval`` — are counted in ``counters["retry_storms"]``
    (surfaced through ``reliability_summary``), not fatal.

    Installed automatically by ``MeshCluster.attach_via`` when node
    faults are configured; instantiable manually for other setups.
    """

    def __init__(self, cluster, interval: float = 500.0,
                 hang_after: float = 60_000.0,
                 storm_retransmits: int = 200) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.interval = interval
        self.hang_after = hang_after
        self.storm_retransmits = storm_retransmits
        self.counters = {"hangs_detected": 0, "retry_storms": 0,
                         "checks": 0}
        self._last_progress = self.sim.progress
        self._stalled_since = self.sim.now
        self._last_retransmits = 0
        self.sim.spawn(self._loop(), name="watchdog")

    def _retransmit_total(self) -> int:
        return sum(
            node.via.agent.stats["retransmits"]
            for node in self.cluster.nodes if node.via is not None
        )

    def _loop(self):
        from repro.errors import HangError

        sim = self.sim
        while True:
            yield sim.timeout(self.interval)
            self.counters["checks"] += 1
            progress = sim.progress
            if progress != self._last_progress:
                self._last_progress = progress
                self._stalled_since = sim.now
            elif sim.now - self._stalled_since > self.hang_after:
                from repro.ckpt import context as ckpt_context

                self.counters["hangs_detected"] += 1
                note = ckpt_context.current()
                raise HangError(
                    f"no application progress for "
                    f"{sim.now - self._stalled_since:.0f}us "
                    f"(hang watchdog, t={sim.now:.1f}us)\n"
                    + self.cluster.hang_report(),
                    config_hash=self.cluster.config_hash(),
                    fault_seed=self.cluster.fault_seed,
                    checkpoint_id=note.ckpt_id if note else None,
                    checkpoint_index=note.index if note else None,
                )
            retransmits = self._retransmit_total()
            if retransmits - self._last_retransmits >= \
                    self.storm_retransmits:
                self.counters["retry_storms"] += 1
            self._last_retransmits = retransmits


class Probe:
    """Named sample accumulator for simulation measurements."""

    def __init__(self) -> None:
        self._stats: Dict[str, SampleStats] = {}
        self._samples: Dict[str, List[float]] = {}

    def observe(self, name: str, value: float, keep: bool = False) -> None:
        """Record one sample under ``name``.

        ``keep=True`` retains the raw sample (for percentiles); summary
        statistics are always maintained.
        """
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SampleStats()
        stats.add(value)
        if keep:
            self._samples.setdefault(name, []).append(value)

    def stats(self, name: str) -> SampleStats:
        return self._stats[name]

    def samples(self, name: str) -> List[float]:
        return self._samples.get(name, [])

    def names(self) -> List[str]:
        return sorted(self._stats)

    def mean(self, name: str) -> float:
        return self._stats[name].mean

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-th percentile of the kept samples under ``name``
        (linear interpolation between closest ranks).

        Requires the samples to have been observed with ``keep=True``;
        raises :class:`ValueError` otherwise or when ``q`` is outside
        ``[0, 100]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        samples = self._samples.get(name)
        if not samples:
            raise ValueError(f"no kept samples under {name!r}")
        ordered = sorted(samples)
        position = (len(ordered) - 1) * (q / 100.0)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    def merge(self, other: "Probe") -> "Probe":
        """Fold another probe's series into this one (mesh-wide
        aggregation of per-node probes); returns ``self``."""
        for name, stats in other._stats.items():
            mine = self._stats.get(name)
            if mine is None:
                mine = self._stats[name] = SampleStats()
            mine.merge(stats)
        for name, samples in other._samples.items():
            self._samples.setdefault(name, []).extend(samples)
        return self
