"""The simulator event loop.

The scheduler is a binary heap of ``(time, priority, sequence, event)``
tuples.  The monotone ``sequence`` counter makes same-time same-priority
ordering FIFO, so the whole simulation is deterministic — a hard
requirement for reproducing the paper's tables bit-for-bit across runs.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Event, NORMAL, Timeout
from repro.sim.process import Process


class Simulator:
    """Owns the clock and the event queue.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.monitor.Trace` receiving a record per
        processed event (cheap to leave off; benchmarks run untraced).
    """

    def __init__(self, trace: Optional["Trace"] = None) -> None:
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self.trace = trace
        self._crashed: list = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Queue ``event`` for processing at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event)
        )

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------
    def step(self) -> float:
        """Process one event; returns its timestamp."""
        if not self._queue:
            raise DeadlockError("event queue empty")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self.trace is not None:
            self.trace.record(when, event)
        event._process()
        if self._crashed:
            process, exc = self._crashed.pop()
            exc.add_note(
                f"(unhandled in process {process.name!r} at "
                f"t={when:.3f}us)"
            )
            raise exc
        return when

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced exactly to ``until`` even if no event lands there.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until} is before now={self._now}"
            )
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises :class:`DeadlockError` if the queue drains first and
        :class:`SimulationError` if ``limit`` is exceeded.
        """
        while not process.triggered:
            if not self._queue:
                raise DeadlockError(
                    f"simulation deadlocked waiting for {process.name!r} "
                    f"at t={self._now:.3f}us"
                )
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"{process.name!r} did not finish by t={limit}us"
                )
            self.step()
        # Drain same-time bookkeeping? No: caller decides. Just report.
        if not process.ok:
            raise process.value
        return process.value

    def peek(self) -> float:
        """Timestamp of the next event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def queue_length(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    # -- crash plumbing -------------------------------------------------------
    def _crash(self, process: Process, exc: BaseException) -> None:
        """Record an unhandled process failure; re-raised by step()."""
        self._crashed.append((process, exc))
