"""The simulator event loop.

The scheduler is a binary heap of ``(time, priority, sequence, event)``
tuples.  The monotone ``sequence`` counter makes same-time same-priority
ordering FIFO, so the whole simulation is deterministic — a hard
requirement for reproducing the paper's tables bit-for-bit across runs.

When the fast path is enabled (see :mod:`repro.fastpath`), zero-delay
events — the bulk of all traffic: store dispatches, resource grants,
process wakeups — bypass the heap into two FIFO deques (one per
priority tier).  Entries appended to a deque carry the current clock
and a monotone sequence number, so each deque is sorted by
``(time, priority, sequence)`` by construction and a three-way merge
against the heap preserves the exact reference processing order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, Optional

from repro import fastpath
from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Event, NORMAL, Timeout, URGENT, _PENDING
from repro.sim.process import Process

#: Events processed across every simulator in this interpreter; read by
#: ``python -m repro.bench --profile`` to report events per experiment.
TOTAL_EVENTS = 0

_INF = float("inf")


def record_external_events(count: int) -> None:
    """Fold events processed by simulators in *other* processes into
    :data:`TOTAL_EVENTS`.

    Worker processes (the service fleet, PDES shard workers) each run
    their own interpreter, so their simulators bump their own module
    global; callers that collect per-simulator ``events_processed``
    deltas over the wire report them here so profile output counts the
    whole experiment, not just the parent's share.
    """
    if count < 0:
        raise SimulationError(
            f"external event count must be non-negative ({count})"
        )
    global TOTAL_EVENTS
    TOTAL_EVENTS += count


class Simulator:
    """Owns the clock and the event queue.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.monitor.Trace` receiving a record per
        processed event (cheap to leave off; benchmarks run untraced).
    """

    def __init__(self, trace: Optional["Trace"] = None) -> None:
        self._now = 0.0
        self._queue: list = []
        #: Zero-delay events, (time, sequence, event); sorted by
        #: construction since time and sequence are monotone.
        self._urgent: deque = deque()
        self._normal: deque = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self.trace = trace
        #: Optional message-lifecycle flight recorder
        #: (:class:`repro.obs.recorder.FlightRecorder`).  ``None`` keeps
        #: every instrumentation site to one attribute test and leaves
        #: the hot scheduler loops untouched.
        self.recorder = None
        self._crashed: list = []
        #: Events processed by this simulator.
        self.events_processed = 0
        #: Request-handle id stream (messaging core).  Per-simulator,
        #: not process-global, because rendezvous ids cross the wire:
        #: a checkpoint replay rebuilding this simulator mid-process
        #: must hand out the same ids as the original run.
        self._req_ids = 0
        #: Application-progress counter: completion surfaces (VI
        #: descriptor completions, messaging-core request completions,
        #: kernel-collective results) bump this so the hang watchdog
        #: can distinguish real progress from timer churn — keepalive
        #: and retransmission timers keep the event queue busy forever,
        #: so queue activity alone cannot witness liveness.
        self.progress = 0
        #: Optional zero-argument callable returning extra diagnostics
        #: (stuck VIs/requests/ranks); appended to deadlock and hang
        #: reports.  Installed by ``MeshCluster`` when node faults are
        #: configured.
        self.hang_diagnostics = None
        #: Sampled once at construction; all fast-path branches key off
        #: this so a mid-run flag flip cannot desynchronize a simulation.
        self._fast = fastpath.enabled()

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Queue ``event`` for processing at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._sequence = sequence = self._sequence + 1
        if delay == 0.0 and self._fast:
            if priority == NORMAL:
                self._normal.append((self._now, sequence, event))
                return
            if priority == URGENT:
                self._urgent.append((self._now, sequence, event))
                return
        heapq.heappush(
            self._queue, (self._now + delay, priority, sequence, event)
        )

    def schedule_at(self, event: Event, when: float,
                    priority: int = NORMAL) -> None:
        """Queue ``event`` for processing at absolute time ``when``.

        Needed by the frame-train fast path: replaying a planned
        timestamp through ``schedule(delay=when - now)`` would round
        differently (``fl(now + fl(when - now)) != when`` in general).
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}"
            )
        self._sequence = sequence = self._sequence + 1
        if when == self._now and self._fast:
            if priority == NORMAL:
                self._normal.append((when, sequence, event))
                return
            if priority == URGENT:
                self._urgent.append((when, sequence, event))
                return
        heapq.heappush(self._queue, (when, priority, sequence, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def sleep_until(self, when: float) -> Event:
        """A pre-triggered event that fires at absolute time ``when``."""
        event = Event(self)
        event._ok = True
        event._value = None
        self.schedule_at(event, when, priority=NORMAL)
        return event

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- queue selection -----------------------------------------------------
    def _select(self):
        """(time, source) of the next event; source 0 means empty.

        Sources: 1 = urgent deque, 2 = normal deque, 3 = heap.
        """
        best = None
        source = 0
        entries = self._urgent
        if entries:
            head = entries[0]
            best = (head[0], URGENT, head[1])
            source = 1
        entries = self._normal
        if entries:
            head = entries[0]
            key = (head[0], NORMAL, head[1])
            if best is None or key < best:
                best = key
                source = 2
        entries = self._queue
        if entries:
            head = entries[0]
            key = (head[0], head[1], head[2])
            if best is None or key < best:
                best = key
                source = 3
        if source == 0:
            return _INF, 0
        return best[0], source

    def _pop(self, source: int) -> Event:
        if source == 1:
            return self._urgent.popleft()[2]
        if source == 2:
            return self._normal.popleft()[2]
        return heapq.heappop(self._queue)[3]

    # -- execution ----------------------------------------------------------
    def step(self) -> float:
        """Process one event; returns its timestamp."""
        when, source = self._select()
        if source == 0:
            raise DeadlockError("event queue empty")
        event = self._pop(source)
        self._now = when
        self.events_processed += 1
        global TOTAL_EVENTS
        TOTAL_EVENTS += 1
        if self.trace is not None:
            self.trace.record(when, event)
        event._process()
        if self._crashed:
            process, exc = self._crashed.pop()
            exc.add_note(
                f"(unhandled in process {process.name!r} at "
                f"t={when:.3f}us)"
            )
            raise exc
        return when

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced exactly to ``until`` even if no event lands there.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until} is before now={self._now}"
            )
        if self._fast and self.trace is None and not self._crashed:
            # Hot loop: no trace branch, the three-way merge inlined
            # without key-tuple allocation, and same-instant heap runs
            # drained in one batch.  ``until`` folds into a single
            # float compare so window-bounded callers (the PDES
            # coordinator) get the same loop.
            bound = _INF if until is None else until
            processed = 0
            crashed = self._crashed
            urgent = self._urgent
            normal = self._normal
            queue = self._queue
            heappop = heapq.heappop
            heappush = heapq.heappush
            try:
                while True:
                    if urgent:
                        head = urgent[0]
                        when = head[0]
                        if normal and normal[0][0] < when:
                            head = normal[0]
                            when = head[0]
                            priority = NORMAL
                            source = 2
                        else:
                            priority = URGENT
                            source = 1
                    elif normal:
                        head = normal[0]
                        when = head[0]
                        priority = NORMAL
                        source = 2
                    else:
                        source = 0
                    if queue:
                        entry = queue[0]
                        entry_time = entry[0]
                        if source == 0 or entry_time < when or (
                            entry_time == when
                            and (entry[1] < priority
                                 or (entry[1] == priority
                                     and entry[2] < head[1]))
                        ):
                            when = entry_time
                            source = 3
                    if source == 0 or when > bound:
                        break
                    if source == 1:
                        event = urgent.popleft()[2]
                    elif source == 2:
                        event = normal.popleft()[2]
                    else:
                        # Batch drain: every heap entry at this
                        # (time, priority) is already in final order —
                        # the sequence field settles ties — and in fast
                        # mode no new heap entry can appear at the
                        # current instant (zero-delay scheduling goes
                        # to the deques), so dispatching the run
                        # without re-running the merge per event is
                        # order-exact.
                        first = heappop(queue)
                        priority = first[1]
                        batch = [first]
                        while (queue and queue[0][0] == when
                               and queue[0][1] == priority):
                            batch.append(heappop(queue))
                        self._now = when
                        index = 0
                        nbatch = len(batch)
                        normal_batch = priority == NORMAL
                        while index < nbatch:
                            if normal_batch and urgent:
                                # A zero-delay urgent event scheduled
                                # mid-batch outranks the rest of it.
                                break
                            event = batch[index][3]
                            index += 1
                            processed += 1
                            event._process()
                            if crashed:
                                break
                        if index < nbatch:
                            # Requeue the unprocessed tail verbatim:
                            # the original tuples keep their original
                            # sequence numbers, so relative order
                            # against everything else is untouched.
                            for item in batch[index:]:
                                heappush(queue, item)
                        if crashed:
                            process, exc = crashed.pop()
                            exc.add_note(
                                f"(unhandled in process {process.name!r}"
                                f" at t={when:.3f}us)"
                            )
                            raise exc
                        continue
                    self._now = when
                    processed += 1
                    event._process()
                    if crashed:
                        process, exc = crashed.pop()
                        exc.add_note(
                            f"(unhandled in process {process.name!r} at "
                            f"t={when:.3f}us)"
                        )
                        raise exc
            finally:
                self.events_processed += processed
                global TOTAL_EVENTS
                TOTAL_EVENTS += processed
            if until is not None and self._now < until:
                self._now = until
            return self._now
        while True:
            when, source = self._select()
            if source == 0:
                break
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises :class:`DeadlockError` if the queue drains first and
        :class:`SimulationError` if ``limit`` is exceeded.
        """
        if (self._fast and self.trace is None and limit is None
                and not self._crashed):
            # Mirror of run()'s hot loop: the per-event deadlock check
            # folds into the merge, and the stop condition reads the
            # process's triggered flag directly.
            processed = 0
            crashed = self._crashed
            urgent = self._urgent
            normal = self._normal
            queue = self._queue
            heappop = heapq.heappop
            heappush = heapq.heappush
            try:
                while process._value is _PENDING:
                    if urgent:
                        head = urgent[0]
                        when = head[0]
                        if normal and normal[0][0] < when:
                            head = normal[0]
                            when = head[0]
                            priority = NORMAL
                            source = 2
                        else:
                            priority = URGENT
                            source = 1
                    elif normal:
                        head = normal[0]
                        when = head[0]
                        priority = NORMAL
                        source = 2
                    else:
                        source = 0
                    if queue:
                        entry = queue[0]
                        entry_time = entry[0]
                        if source == 0 or entry_time < when or (
                            entry_time == when
                            and (entry[1] < priority
                                 or (entry[1] == priority
                                     and entry[2] < head[1]))
                        ):
                            when = entry_time
                            source = 3
                    if source == 0:
                        raise self._deadlock(process)
                    if source == 1:
                        event = urgent.popleft()[2]
                    elif source == 2:
                        event = normal.popleft()[2]
                    else:
                        # Same batch drain as run(); additionally stops
                        # the moment the awaited process completes, so
                        # later same-instant events stay queued exactly
                        # as the per-event reference loop leaves them.
                        first = heappop(queue)
                        priority = first[1]
                        batch = [first]
                        while (queue and queue[0][0] == when
                               and queue[0][1] == priority):
                            batch.append(heappop(queue))
                        self._now = when
                        index = 0
                        nbatch = len(batch)
                        normal_batch = priority == NORMAL
                        while index < nbatch:
                            if process._value is not _PENDING:
                                break
                            if normal_batch and urgent:
                                break
                            event = batch[index][3]
                            index += 1
                            processed += 1
                            event._process()
                            if crashed:
                                break
                        if index < nbatch:
                            for item in batch[index:]:
                                heappush(queue, item)
                        if crashed:
                            proc, exc = crashed.pop()
                            exc.add_note(
                                f"(unhandled in process {proc.name!r} "
                                f"at t={when:.3f}us)"
                            )
                            raise exc
                        continue
                    self._now = when
                    processed += 1
                    event._process()
                    if crashed:
                        proc, exc = crashed.pop()
                        exc.add_note(
                            f"(unhandled in process {proc.name!r} at "
                            f"t={when:.3f}us)"
                        )
                        raise exc
            finally:
                self.events_processed += processed
                global TOTAL_EVENTS
                TOTAL_EVENTS += processed
            if not process.ok:
                raise process.value
            return process.value
        while not process.triggered:
            when, source = self._select()
            if source == 0:
                raise self._deadlock(process)
            if limit is not None and when > limit:
                raise SimulationError(
                    f"{process.name!r} did not finish by t={limit}us"
                )
            self.step()
        # Drain same-time bookkeeping? No: caller decides. Just report.
        if not process.ok:
            raise process.value
        return process.value

    def _deadlock(self, process: Process) -> DeadlockError:
        """Build a deadlock error, appending hang diagnostics if any."""
        message = (
            f"simulation deadlocked waiting for {process.name!r} "
            f"at t={self._now:.3f}us"
        )
        if self.hang_diagnostics is not None:
            message += "\n" + self.hang_diagnostics()
        return DeadlockError(message)

    def peek(self) -> float:
        """Timestamp of the next event, or +inf if the queue is empty."""
        return self._select()[0]

    @property
    def queue_length(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue) + len(self._urgent) + len(self._normal)

    # -- crash plumbing -------------------------------------------------------
    def _crash(self, process: Process, exc: BaseException) -> None:
        """Record an unhandled process failure; re-raised by step()."""
        self._crashed.append((process, exc))
