"""Shared-resource primitives (mutexes, counted resources).

Used to model contended hardware: the PCI-X bus, a NIC's DMA engine, a
CPU that can run one interrupt handler at a time.  Semantics follow the
usual simulation-resource contract: ``request()`` returns an event that
fires when the resource is granted; ``release()`` hands it to the next
waiter in FIFO (or priority) order.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Request(Event):
    """Grant event returned by :meth:`Resource.request`.

    Usable as a context token: pass it back to ``release``.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        sim = resource.sim
        super().__init__(
            sim,
            name=f"request:{resource.name}" if sim.trace is not None else "",
        )
        self.resource = resource


class Resource:
    """A counted resource with FIFO waiters.

    Parameters
    ----------
    sim: owning simulator.
    capacity: number of concurrent holders (1 == mutex).
    """

    __slots__ = ("sim", "capacity", "name", "_holders", "_waiters", "stats")

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: set = set()
        self._waiters: list = []
        #: Cumulative statistics for utilization analysis.
        self.stats = {"grants": 0, "waits": 0}

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    def request(self) -> Request:
        """Ask for the resource; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity and not self._waiters:
            self._grant(req)
        else:
            self.stats["waits"] += 1
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the resource; wakes the next waiter if any."""
        if request not in self._holders:
            raise SimulationError(
                f"release of {request!r} that does not hold {self.name!r}"
            )
        self._holders.discard(request)
        self._dispatch()

    def try_acquire(self) -> "Request | None":
        """Synchronous grant when the resource is free, else None.

        The seed path grants synchronously too (``request()`` adds the
        holder immediately); its grant event exists only to wake the
        requester at the same instant.  A caller that proceeds inline
        instead observes and produces identical timestamps.
        """
        if self._waiters or len(self._holders) >= self.capacity:
            return None
        req = Request(self)
        self._holders.add(req)
        self.stats["grants"] += 1
        req._ok = True
        req._value = req
        return req

    def _grant(self, req: Request) -> None:
        self._holders.add(req)
        self.stats["grants"] += 1
        req.succeed(req, priority=URGENT)

    def _dispatch(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            self._grant(self._waiters.pop(0))

    def use(self, duration: float):
        """Process helper: hold the resource for ``duration`` us.

        Usage: ``yield from bus.use(t)``.
        """
        req = self.try_acquire() if self.sim._fast else None
        if req is None:
            req = self.request()
            yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)


class PriorityRequest(Request):
    """Request carrying a priority (lower value served first)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int,
                 order: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self._order = order

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """Resource whose waiters are served in (priority, FIFO) order.

    Models e.g. a NIC transmit path where control packets (flow-control
    token updates) preempt queued bulk data.
    """

    __slots__ = ("_order",)

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "priority-resource") -> None:
        super().__init__(sim, capacity=capacity, name=name)
        self._order = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        self._order += 1
        req = PriorityRequest(self, priority, self._order)
        if len(self._holders) < self.capacity and not self._waiters:
            self._grant(req)
        else:
            self.stats["waits"] += 1
            heapq.heappush(self._waiters, req)
        return req

    def try_acquire(self, priority: int = 0) -> "PriorityRequest | None":  # type: ignore[override]
        """Synchronous grant when free, else None (see Resource)."""
        if self._waiters or len(self._holders) >= self.capacity:
            return None
        self._order += 1
        req = PriorityRequest(self, priority, self._order)
        self._holders.add(req)
        self.stats["grants"] += 1
        req._ok = True
        req._value = req
        return req

    def _dispatch(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            self._grant(heapq.heappop(self._waiters))

    def use(self, duration: float, priority: int = 0):
        """Hold the resource for ``duration`` at ``priority``."""
        req = self.try_acquire(priority) if self.sim._fast else None
        if req is None:
            req = self.request(priority)
            yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)
