"""Buffered item stores (bounded queues) for producer/consumer models.

Descriptor rings, socket buffers and switch queues are all Stores: a
``put`` blocks when the store is full (back-pressure) and a ``get``
blocks when it is empty.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is in."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        sim = store.sim
        super().__init__(
            sim,
            name=f"put:{store.name}" if sim.trace is not None else "",
        )
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the item."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        sim = store.sim
        super().__init__(
            sim,
            name=f"get:{store.name}" if sim.trace is not None else "",
        )
        self.filter = filter


class Store:
    """FIFO store with finite or infinite capacity."""

    __slots__ = ("sim", "capacity", "name", "items", "_putters", "_getters",
                 "stats")

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 name: str = "store") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        self._putters: deque = deque()
        self._getters: deque = deque()
        self.stats = {"puts": 0, "gets": 0, "max_level": 0}

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event fires once there is room."""
        put_event = StorePut(self, item)
        self._putters.append(put_event)
        self._dispatch()
        return put_event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event fires with the item."""
        get_event = StoreGet(self)
        self._getters.append(get_event)
        self._dispatch()
        return get_event

    def try_get(self) -> Any:
        """Non-blocking get: the item, or None if empty.

        Only safe when no getters are queued (otherwise it would jump
        the line); raises in that case.
        """
        if self._getters:
            raise SimulationError(f"try_get on {self.name!r} with waiters")
        if not self.items:
            return None
        item = self.items.popleft()
        self.stats["gets"] += 1
        self._dispatch()
        return item

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: False when full (or putters are queued,
        which a sync insert would overtake).

        The synchronous fast path for sole-producer loops: the seed
        path's put event only exists to wake the producer again at the
        same instant, so skipping it does not move any timestamp.
        """
        if self._putters or len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self.stats["puts"] += 1
        if len(self.items) > self.stats["max_level"]:
            self.stats["max_level"] = len(self.items)
        self._dispatch()
        return True

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            self.stats["puts"] += 1
            if len(self.items) > self.stats["max_level"]:
                self.stats["max_level"] = len(self.items)
            event.succeed(priority=URGENT)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            self.stats["gets"] += 1
            event.succeed(self.items.popleft(), priority=URGENT)
            return True
        return False

    def _dispatch(self) -> None:
        if not self._putters and not self._getters:
            return
        progress = True
        while progress:
            progress = False
            while self._putters:
                if self._do_put(self._putters[0]):
                    self._putters.popleft()
                    progress = True
                else:
                    break
            while self._getters:
                if self._do_get(self._getters[0]):
                    self._getters.popleft()
                    progress = True
                else:
                    break


class FilterStore(Store):
    """Store whose getters may select items with a predicate.

    Used for receive-side message matching (match by tag/source).
    Getters are served in FIFO order *per matching item*: a getter whose
    filter matches nothing waits without blocking later getters.
    """

    __slots__ = ()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        get_event = StoreGet(self, filter=filter)
        self._getters.append(get_event)
        self._dispatch()
        return get_event

    def _do_get(self, event: StoreGet) -> bool:
        if event.filter is None:
            return super()._do_get(event)
        for index, item in enumerate(self.items):
            if event.filter(item):
                del self.items[index]
                self.stats["gets"] += 1
                event.succeed(item, priority=URGENT)
                return True
        return False

    def _dispatch(self) -> None:
        # Unlike the FIFO store, a blocked getter must not stall the
        # rest: scan all getters each round.
        progress = True
        while progress:
            progress = False
            while self._putters:
                if self._do_put(self._putters[0]):
                    self._putters.popleft()
                    progress = True
                else:
                    break
            satisfied = []
            for index, getter in enumerate(self._getters):
                if self._do_get(getter):
                    satisfied.append(index)
                    progress = True
            for index in reversed(satisfied):
                del self._getters[index]
