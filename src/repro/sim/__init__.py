"""Deterministic discrete-event simulation kernel.

This is the substrate on which every hardware and protocol model in the
package runs.  The design follows the classic process-interaction style
(generator-based coroutines yield :class:`Event` objects), with a
strictly deterministic event ordering: events scheduled for the same
simulated time are processed FIFO in scheduling order (with an optional
integer priority tier), so repeated runs with the same seed reproduce
byte-identical traces.

Public surface::

    sim = Simulator()
    def producer(sim, store):
        yield sim.timeout(2.0)
        yield store.put("item")
    store = Store(sim, capacity=4)
    sim.spawn(producer(sim, store))
    sim.run()

The clock unit is the microsecond (see :mod:`repro.units`).
"""

from repro.sim.core import Simulator
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    URGENT,
    NORMAL,
)
from repro.sim.process import Process
from repro.sim.resources import PriorityResource, Resource
from repro.sim.store import FilterStore, Store
from repro.sim.monitor import Trace, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Resource",
    "PriorityResource",
    "Store",
    "FilterStore",
    "Trace",
    "TraceRecord",
    "URGENT",
    "NORMAL",
]
