"""TCP segment representation (the model's sk_buff)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class SegmentKind(enum.Enum):
    SYN = "syn"
    SYN_ACK = "syn-ack"
    DATA = "data"
    ACK = "ack"
    FIN = "fin"


@dataclass
class TcpSegment:
    """One TCP segment on the wire.

    ``conn_id`` stands in for the (addr, port) 4-tuple; ``seq`` counts
    bytes like real TCP; ``psh`` marks the final segment of an
    application message (triggers an immediate ACK and carries the
    payload object).
    """

    kind: SegmentKind
    src_node: int
    dst_node: int
    conn_id: int
    seq: int = 0
    nbytes: int = 0
    psh: bool = False
    ack_bytes: int = 0
    payload: Any = field(default=None, repr=False)
    #: Total application-message bytes (on the psh segment).
    msg_bytes: int = 0
