"""Per-node kernel TCP/IP stack over the mesh GigE ports.

The stack installs itself as the receive driver on every port, routes
by destination mesh rank (direct port for nearest neighbors, kernel IP
forwarding with SDF routing otherwise), segments application messages
at the MSS, applies delayed ACKs and the send window, and charges the
kernel-path CPU costs from :class:`~repro.hw.params.TcpParams`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError, TcpError
from repro.hw.link import Frame
from repro.hw.nic import GigEPort
from repro.hw.node import Host, PRIO_KERNEL
from repro.hw.params import TcpParams
from repro.sim import Simulator, Store
from repro.topology.routing import sdf_next_direction
from repro.topology.torus import Torus
from repro.tcpip.segment import SegmentKind, TcpSegment
from repro.tcpip.socket import SocketState, TcpSocket


class TcpStack:
    """The kernel network stack of one node."""

    #: Kernel cost of connection handshake packet processing.
    HANDSHAKE_COST = 2.0

    def __init__(self, sim: Simulator, host: Host, rank: int, torus: Torus,
                 ports: Dict[int, GigEPort],
                 params: Optional[TcpParams] = None) -> None:
        if not ports:
            raise ConfigurationError(f"node {rank}: TCP stack with no ports")
        self.sim = sim
        self.host = host
        self.rank = rank
        self.torus = torus
        self.ports = dict(ports)
        self.params = params or TcpParams()
        mtu = next(iter(self.ports.values())).params.mtu
        self.mss = mtu - self.params.header_bytes
        if self.mss <= 0:
            raise ConfigurationError("TCP headers larger than MTU")
        self.sockets: Dict[int, TcpSocket] = {}
        self._listeners: Dict[int, object] = {}
        self._pending_syn: Dict[int, TcpSegment] = {}
        self._connectors: Dict[int, object] = {}
        self._forward_backlog = Store(sim, name=f"ipfwd[{rank}]")
        self.stats = {"segments_in": 0, "segments_out": 0, "acks": 0,
                      "forwarded": 0}
        for port in self.ports.values():
            port.set_driver(
                lambda frame, _port=port: self._handle_frame(frame, _port)
            )
        sim.spawn(self._forward_drain(), name=f"ipfwd-drain[{rank}]")

    # -- connection management ---------------------------------------------
    def listen(self, conn_id: int):
        """Process: passive open; returns an ESTABLISHED socket."""
        if conn_id in self.sockets:
            raise TcpError(f"conn {conn_id} already open on node {self.rank}")
        sock = TcpSocket(self, conn_id)
        sock.state = SocketState.LISTEN
        self.sockets[conn_id] = sock
        syn = self._pending_syn.pop(conn_id, None)
        if syn is None:
            wake = self.sim.event(name=f"listen:{conn_id}")
            self._listeners[conn_id] = wake
            syn = yield wake
        sock.peer_node = syn.src_node
        yield from self._transmit_control(
            syn.src_node, SegmentKind.SYN_ACK, conn_id
        )
        sock.state = SocketState.ESTABLISHED
        return sock

    def connect(self, dst_node: int, conn_id: int):
        """Process: active open; returns an ESTABLISHED socket."""
        if conn_id in self.sockets:
            raise TcpError(f"conn {conn_id} already open on node {self.rank}")
        sock = TcpSocket(self, conn_id, peer_node=dst_node)
        sock.state = SocketState.SYN_SENT
        self.sockets[conn_id] = sock
        wake = self.sim.event(name=f"connect:{conn_id}")
        self._connectors[conn_id] = wake
        yield from self._transmit_control(dst_node, SegmentKind.SYN, conn_id)
        yield wake
        sock.state = SocketState.ESTABLISHED
        return sock

    # -- transmit ---------------------------------------------------------
    def _egress(self, dst_node: int) -> GigEPort:
        direction = sdf_next_direction(self.torus, self.rank, dst_node)
        if direction is None:
            raise TcpError(f"node {self.rank}: no route to {dst_node}")
        port = self.ports.get(direction.port)
        if port is None:
            raise ConfigurationError(
                f"node {self.rank}: no adapter toward {dst_node}"
            )
        return port

    def transmit_data(self, sock: TcpSocket, seg_bytes: int, psh: bool,
                      payload, msg_bytes: int):
        """Process: put one data segment on the wire (kernel context)."""
        segment = TcpSegment(
            kind=SegmentKind.DATA,
            src_node=self.rank,
            dst_node=sock.peer_node,
            conn_id=sock.conn_id,
            seq=sock.next_seq,
            nbytes=seg_bytes,
            psh=psh,
            payload=payload,
            msg_bytes=msg_bytes,
        )
        sock.next_seq += seg_bytes
        self.stats["segments_out"] += 1
        frame = Frame(seg_bytes, self.params.header_bytes,
                      payload=segment, kind="tcp-data")
        yield from self._egress(sock.peer_node).enqueue_tx(frame)

    def _transmit_control(self, dst_node: int, kind: SegmentKind,
                          conn_id: int, ack_bytes: int = 0):
        yield from self.host.cpu_work(self.HANDSHAKE_COST
                                      if kind in (SegmentKind.SYN,
                                                  SegmentKind.SYN_ACK)
                                      else self.params.ack_cost,
                                      PRIO_KERNEL)
        segment = TcpSegment(kind=kind, src_node=self.rank,
                             dst_node=dst_node, conn_id=conn_id,
                             ack_bytes=ack_bytes)
        frame = Frame(0, self.params.header_bytes, payload=segment,
                      kind=f"tcp-{kind.value}")
        yield from self._egress(dst_node).enqueue_tx(frame)

    # -- receive (interrupt context) ---------------------------------------
    def _handle_frame(self, frame: Frame, port: GigEPort):
        segment: TcpSegment = frame.payload
        try:
            if segment.dst_node != self.rank:
                yield from self._forward(frame, segment)
                return
            if segment.kind is SegmentKind.DATA:
                yield from self._handle_data(segment)
            elif segment.kind is SegmentKind.ACK:
                yield from self._handle_ack(segment)
            elif segment.kind is SegmentKind.SYN:
                yield from self._handle_syn(segment)
            elif segment.kind is SegmentKind.SYN_ACK:
                yield from self._handle_syn_ack(segment)
            elif segment.kind is SegmentKind.FIN:
                yield from self._handle_fin(segment)
        finally:
            port.post_rx_descriptors(1)

    def _socket_for(self, segment: TcpSegment) -> TcpSocket:
        sock = self.sockets.get(segment.conn_id)
        if sock is None:
            raise TcpError(
                f"node {self.rank}: segment for unknown conn "
                f"{segment.conn_id}"
            )
        return sock

    def _handle_data(self, segment: TcpSegment):
        self.stats["segments_in"] += 1
        # Softirq protocol processing (IP input + TCP input).
        yield self.sim.timeout(self.params.per_segment_rx)
        sock = self._socket_for(segment)
        sock.data_arrived(segment.nbytes, segment.psh, segment.payload,
                          segment.seq + segment.nbytes)
        sock.segments_since_ack += 1
        sock.bytes_since_ack += segment.nbytes
        if segment.psh or sock.segments_since_ack >= self.params.segments_per_ack:
            ack_bytes = sock.bytes_since_ack
            sock.segments_since_ack = 0
            sock.bytes_since_ack = 0
            self.sim.spawn(
                self._transmit_control(sock.peer_node, SegmentKind.ACK,
                                       sock.conn_id, ack_bytes=ack_bytes),
                name=f"ack[{self.rank}:{sock.conn_id}]",
            )

    def _handle_ack(self, segment: TcpSegment):
        self.stats["acks"] += 1
        yield self.sim.timeout(self.params.ack_cost)
        self._socket_for(segment).ack_arrived(segment.ack_bytes)

    def _handle_syn(self, segment: TcpSegment):
        yield self.sim.timeout(self.HANDSHAKE_COST)
        wake = self._listeners.pop(segment.conn_id, None)
        if wake is None:
            self._pending_syn[segment.conn_id] = segment
        else:
            wake.succeed(segment)

    def transmit_fin(self, sock: TcpSocket):
        """Process: send the connection-teardown segment."""
        yield from self.host.cpu_work(self.params.ack_cost, PRIO_KERNEL)
        segment = TcpSegment(kind=SegmentKind.FIN, src_node=self.rank,
                             dst_node=sock.peer_node,
                             conn_id=sock.conn_id)
        frame = Frame(0, self.params.header_bytes, payload=segment,
                      kind="tcp-fin")
        yield from self._egress(sock.peer_node).enqueue_tx(frame)

    def _handle_fin(self, segment: TcpSegment):
        yield self.sim.timeout(self.params.ack_cost)
        sock = self.sockets.get(segment.conn_id)
        if sock is not None:
            sock.peer_closed()

    def _handle_syn_ack(self, segment: TcpSegment):
        yield self.sim.timeout(self.HANDSHAKE_COST)
        wake = self._connectors.pop(segment.conn_id, None)
        if wake is None:
            raise TcpError(
                f"node {self.rank}: SYN-ACK for conn {segment.conn_id} "
                "with no pending connect"
            )
        wake.succeed(segment)

    # -- IP forwarding ------------------------------------------------------
    def _forward(self, frame: Frame, segment: TcpSegment):
        self.stats["forwarded"] += 1
        yield self.sim.timeout(self.params.ip_forward_cost)
        out = Frame(frame.payload_bytes, frame.header_bytes,
                    payload=segment, kind=frame.kind)
        if len(self._forward_backlog) > 0:
            self._forward_backlog.items.append(out)
            self._forward_backlog._dispatch()
            return
        egress = self._egress(segment.dst_node)
        if not egress.try_enqueue_tx(out):
            self._forward_backlog.items.append(out)
            self._forward_backlog._dispatch()

    def _forward_drain(self):
        while True:
            frame = yield self._forward_backlog.get()
            segment: TcpSegment = frame.payload
            yield from self._egress(segment.dst_node).enqueue_tx(frame)
