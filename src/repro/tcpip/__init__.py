"""The TCP/IP baseline stack.

The paper's TCP comparator is the stock RedHat 9 (kernel 2.4.20)
network stack over the same Intel GigE adapters, with IP forwarding
configured so a mesh works at all (the MPICH-P4 setup of section 1).
This package models the parts of that stack that determine the
measured curves: the extra user<->kernel copies, the per-segment
protocol processing in process and softirq context, delayed ACKs, the
send window, and per-packet interrupt costs — all on the same NIC/link
models the VIA stack uses, so the comparison isolates exactly what the
paper compared.
"""

from repro.tcpip.segment import TcpSegment
from repro.tcpip.stack import TcpStack
from repro.tcpip.socket import TcpSocket

__all__ = ["TcpSegment", "TcpStack", "TcpSocket"]
