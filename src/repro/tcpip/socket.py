"""Blocking stream sockets over the modeled TCP stack.

The API is deliberately message-shaped (``send``/``recv`` of whole
application messages) because that is how the paper's TCP baseline was
exercised — but the model underneath is a byte stream with
segmentation, a send window and delayed ACKs, so the costs scale the
way real sockets do.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, List, Optional, TYPE_CHECKING

from repro.errors import TcpError
from repro.hw.node import PRIO_KERNEL, PRIO_USER

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcpip.stack import TcpStack


class SocketState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    LISTEN = "listen"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"


class TcpSocket:
    """One established (or in-progress) TCP connection endpoint."""

    def __init__(self, stack: "TcpStack", conn_id: int,
                 peer_node: Optional[int] = None) -> None:
        self.stack = stack
        self.conn_id = conn_id
        self.peer_node = peer_node
        self.state = SocketState.CLOSED
        # Send side.
        self.next_seq = 0
        self.in_flight = 0
        self._window_waiters: List = []
        # Receive side.
        self.available = 0
        self.consumed = 0
        self._payloads: deque = deque()
        self._recv_waiters: List = []
        #: Delayed-ACK state.
        self.segments_since_ack = 0
        self.bytes_since_ack = 0
        self.stats = {"sent_msgs": 0, "recv_msgs": 0,
                      "sent_bytes": 0, "recv_bytes": 0}

    # -- user API -------------------------------------------------------------
    def send(self, nbytes: int, payload: Any = None):
        """Process: send one application message of ``nbytes``.

        Returns once every byte has been accepted by the NIC transmit
        ring (socket-buffer semantics: the user buffer is reusable).
        """
        if self.state is not SocketState.ESTABLISHED:
            raise TcpError(f"send on {self.state.value} socket")
        if nbytes < 0:
            raise TcpError(f"negative send size {nbytes}")
        stack, host = self.stack, self.stack.host
        self.stats["sent_msgs"] += 1
        self.stats["sent_bytes"] += nbytes
        yield from host.cpu_work(
            host.params.syscall_cost + stack.params.send_overhead,
            PRIO_USER,
        )
        # The user->kernel copy (TCP's extra copy relative to VIA).
        if stack.params.send_copy and nbytes:
            yield from host.copy(nbytes, PRIO_USER)
        mss = stack.mss
        remaining = nbytes
        offset = 0
        while remaining > 0 or offset == 0:
            seg_bytes = min(mss, remaining)
            last = seg_bytes == remaining
            # Honor the send window.
            while self.in_flight + seg_bytes > stack.params.window_bytes:
                wake = stack.sim.event(name=f"win:{self.conn_id}")
                self._window_waiters.append(wake)
                yield wake
            self.in_flight += seg_bytes
            yield from host.cpu_work(stack.params.per_segment_tx,
                                     PRIO_KERNEL)
            yield from stack.transmit_data(
                self, seg_bytes, psh=last,
                payload=payload if last else None,
                msg_bytes=nbytes if last else 0,
            )
            offset += seg_bytes
            remaining -= seg_bytes
            if last:
                break

    def recv(self, nbytes: int):
        """Process: block until ``nbytes`` arrived; returns the list of
        message payload objects consumed (usually one)."""
        if self.state is not SocketState.ESTABLISHED:
            raise TcpError(f"recv on {self.state.value} socket")
        stack, host = self.stack, self.stack.host
        while self.available < nbytes:
            wake = stack.sim.event(name=f"rcv:{self.conn_id}")
            self._recv_waiters.append(wake)
            yield wake
        yield from host.cpu_work(
            host.params.syscall_cost + stack.params.recv_overhead,
            PRIO_USER,
        )
        # The kernel->user copy.
        if stack.params.recv_copy and nbytes:
            yield from host.copy(nbytes, PRIO_USER)
        self.available -= nbytes
        self.consumed += nbytes
        self.stats["recv_msgs"] += 1
        self.stats["recv_bytes"] += nbytes
        payloads = []
        while self._payloads and self._payloads[0][0] <= self.consumed:
            payloads.append(self._payloads.popleft()[1])
        return payloads

    def close(self):
        """Process: send FIN and close this end.

        Model simplification: one FIN closes both directions (the
        benchmarks never half-close); pending receives on the peer
        fail fast rather than hanging.
        """
        if self.state is not SocketState.ESTABLISHED:
            raise TcpError(f"close on {self.state.value} socket")
        self.state = SocketState.FIN_SENT
        yield from self.stack.transmit_fin(self)
        self.state = SocketState.CLOSED

    def peer_closed(self) -> None:
        """Stack-side: the remote end sent FIN."""
        self.state = SocketState.CLOSED
        waiters, self._recv_waiters = self._recv_waiters, []
        for wake in waiters:
            wake.fail(TcpError(
                f"conn {self.conn_id}: peer closed the connection"
            ))

    # -- stack-side notifications ----------------------------------------------
    def data_arrived(self, nbytes: int, psh: bool, payload: Any,
                     end_seq: int) -> None:
        self.available += nbytes
        if psh:
            self._payloads.append((end_seq, payload))
        waiters, self._recv_waiters = self._recv_waiters, []
        for wake in waiters:
            wake.succeed()

    def ack_arrived(self, ack_bytes: int) -> None:
        if ack_bytes > self.in_flight:
            raise TcpError(
                f"conn {self.conn_id}: ACK of {ack_bytes} bytes with only "
                f"{self.in_flight} in flight"
            )
        self.in_flight -= ack_bytes
        waiters, self._window_waiters = self._window_waiters, []
        for wake in waiters:
            wake.succeed()
