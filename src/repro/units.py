"""Units and physical constants used across the simulation.

The simulator clock counts **microseconds** (as floats).  Sizes are in
**bytes**.  Bandwidths are expressed in **bytes per microsecond**, which
is numerically equal to MB/s (1 byte/us = 1e6 bytes/s ~= 0.9537 MiB/s;
the paper, like most networking papers of the era, uses decimal MB/s,
so we do too: 1 MB/s == 1e6 bytes/s == 1 byte/us).

Keeping the conversion helpers here (rather than scattering magic
numbers) makes the calibration constants in :mod:`repro.hw.params`
auditable against the paper.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time. The simulator clock unit is 1 microsecond.
# ---------------------------------------------------------------------------
US = 1.0
MS = 1_000.0
S = 1_000_000.0
NS = 1e-3

# ---------------------------------------------------------------------------
# Sizes (decimal and binary). The paper's message-size axes are bytes.
# ---------------------------------------------------------------------------
BYTE = 1
KB = 1_000
MB = 1_000_000
KIB = 1024
MIB = 1024 * 1024

# ---------------------------------------------------------------------------
# Ethernet framing (IEEE 802.3 for Gigabit Ethernet over copper).
# ---------------------------------------------------------------------------
ETHERNET_MTU = 1500            # bytes of payload per frame
ETHERNET_HEADER = 14           # dst+src MAC + ethertype
ETHERNET_FCS = 4               # frame check sequence
ETHERNET_PREAMBLE = 8          # preamble + SFD
ETHERNET_IFG = 12              # inter-frame gap (96 bit times)
ETHERNET_MIN_FRAME = 64        # minimum frame size incl. header+FCS

#: Per-frame overhead on the wire beyond the payload, in bytes.
ETHERNET_WIRE_OVERHEAD = (
    ETHERNET_HEADER + ETHERNET_FCS + ETHERNET_PREAMBLE + ETHERNET_IFG
)

#: Raw Gigabit Ethernet signalling rate: 1 Gb/s == 125 bytes/us.
GIGE_WIRE_RATE = 125.0  # bytes per microsecond (== 125 MB/s)


def bandwidth_mbps(nbytes: float, elapsed_us: float) -> float:
    """Bandwidth in MB/s (== bytes/us) for ``nbytes`` over ``elapsed_us``.

    Raises ``ZeroDivisionError`` if ``elapsed_us`` is zero — a zero-time
    transfer indicates a simulation bug and should not be masked.
    """
    return nbytes / elapsed_us


def serialization_time(nbytes: float, rate_bytes_per_us: float) -> float:
    """Time (us) to clock ``nbytes`` onto a link of the given rate."""
    return nbytes / rate_bytes_per_us


def frames_for(nbytes: int, mtu: int = ETHERNET_MTU) -> int:
    """Number of Ethernet frames needed to carry ``nbytes`` of payload.

    A zero-byte message still occupies one frame (headers only), which
    matches how a zero-length VIA send or TCP segment hits the wire.
    """
    if nbytes <= 0:
        return 1
    return -(-nbytes // mtu)  # ceil division


def wire_bytes(payload: int, mtu: int = ETHERNET_MTU,
               per_frame_header: int = 0) -> int:
    """Total on-the-wire bytes for ``payload`` bytes of user data.

    ``per_frame_header`` accounts for protocol headers *inside* the
    Ethernet payload (e.g. VIA's framing header or TCP/IP headers),
    which reduce the user payload per frame.
    """
    effective_mtu = mtu - per_frame_header
    if effective_mtu <= 0:
        raise ValueError(
            f"per-frame header {per_frame_header} exceeds MTU {mtu}"
        )
    n = frames_for(payload, effective_mtu)
    return payload + n * (ETHERNET_WIRE_OVERHEAD + per_frame_header)


def pretty_size(nbytes: float) -> str:
    """Human-readable byte count: ``pretty_size(16384) == '16K'``."""
    nbytes = int(nbytes)
    if nbytes >= MB and nbytes % MB == 0:
        return f"{nbytes // MB}M"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB}K"
    return str(nbytes)


def pretty_time(us: float) -> str:
    """Human-readable microsecond value."""
    if us >= S:
        return f"{us / S:.3f}s"
    if us >= MS:
        return f"{us / MS:.3f}ms"
    return f"{us:.2f}us"
