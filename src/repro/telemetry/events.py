"""Structured, leveled wall-clock event log.

Records are plain dicts — one JSON object per line on export — with a
fixed envelope and free-form ``fields``:

``t``
    Seconds since the telemetry plane was enabled (monotonic clock, so
    unaffected by wall-clock steps), rounded to microseconds.
``seq``
    Per-process monotone sequence number; breaks ties between records
    sharing a timestamp.
``level``
    One of ``debug`` / ``info`` / ``warn`` / ``error``.
``schema``
    Dotted record type, e.g. ``service.retry`` or ``pdes.window`` —
    the contract for what ``fields`` contains.
``run``
    Correlation id (config hash or load-test run id) tying records to
    the run that emitted them.
``msg``
    Human-readable one-liner.
``fields``
    Schema-specific payload (job ids, attempt numbers, shard ids, …).

The log is a bounded deque: old records fall off rather than growing
without bound, which is the right trade for a crash/hang post-mortem
buffer (the tail is what matters).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, List, Optional

LEVELS = ("debug", "info", "warn", "error")


class EventLog:
    """Bounded in-memory structured log for one process."""

    def __init__(self, t0: Optional[float] = None,
                 maxlen: int = 4096) -> None:
        self.t0 = time.monotonic() if t0 is None else t0
        self._records: deque = deque(maxlen=maxlen)
        self._seq = 0

    def log(self, level: str, schema: str, msg: str, *,
            run: str = "", **fields) -> Dict[str, object]:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}, want one of {LEVELS}")
        record = {
            "t": round(time.monotonic() - self.t0, 6),
            "seq": self._seq,
            "level": level,
            "schema": schema,
            "run": run,
            "msg": msg,
            "fields": fields,
        }
        self._seq += 1
        self._records.append(record)
        return record

    def debug(self, schema: str, msg: str, **fields):
        return self.log("debug", schema, msg, **fields)

    def info(self, schema: str, msg: str, **fields):
        return self.log("info", schema, msg, **fields)

    def warn(self, schema: str, msg: str, **fields):
        return self.log("warn", schema, msg, **fields)

    def error(self, schema: str, msg: str, **fields):
        return self.log("error", schema, msg, **fields)

    def __len__(self) -> int:
        return len(self._records)

    def tail(self, n: int = 20) -> List[Dict[str, object]]:
        """The newest ``n`` records, oldest first."""
        if n <= 0:
            return []
        return list(self._records)[-n:]

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def write_jsonl(self, path: str) -> int:
        """Dump the buffer as JSON lines; returns the record count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


__all__ = ["EventLog", "LEVELS"]
