"""Unified wall-clock + sim-time trace export.

Merges two clock domains into one Chrome trace-event file that
Perfetto loads directly:

* **wall** — spans recorded against wall-clock seconds: the telemetry
  plane's own wall spans (fleet dispatches, PDES windows, checkpoint
  captures) plus any wall-clock FlightRecorders registered with the
  plane (the router's per-attempt "service" recorder).  Tracks are
  prefixed ``wall:``; seconds are scaled to microseconds for the
  ``ts``/``dur`` fields.
* **sim** — ordinary sim-time FlightRecorders (microsecond
  timestamps, PR 5).  Tracks are prefixed ``sim:``.

The two domains share nothing except the file: track names are
namespaced by their prefix and *process ids are allocated by a single
enumeration over all tracks*, so no pid collides across domains.
Every non-metadata event carries ``args.clock`` (``"wall"`` or
``"sim"``) so a consumer can separate them again.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.obs.export import validate_chrome_trace
from repro.obs.recorder import MESSAGE, FlightRecorder
from repro.telemetry import Telemetry

#: Wall seconds -> trace-event microseconds.
_WALL_SCALE = 1e6

WALL_PREFIX = "wall:"
SIM_PREFIX = "sim:"


def _recorder_items(recorder: FlightRecorder):
    """Yield ``(lane, phase, name, cat, trace, start, end)`` for every
    root, span and instant of a recorder."""
    for info in sorted(recorder.traces.values(), key=lambda i: i.trace):
        yield ("messages", "X", info.name, MESSAGE, info.trace,
               info.start, info.end, info.track)
    for span in recorder.spans:
        yield (span.kind, "X", f"{span.kind}:{span.name}", span.kind,
               span.trace, span.start, span.end, span.track)
    for span in recorder.events:
        yield ("events", "i", f"{span.kind}:{span.name}", span.kind,
               span.trace, span.start, span.start, span.track)


def unified_trace(tel: Telemetry,
                  sim_recorders: Iterable[Tuple[str, FlightRecorder]] = (),
                  ) -> Dict[str, Any]:
    """Build the two-clock-domain Chrome trace object.

    ``sim_recorders`` is ``(label, FlightRecorder)`` pairs; each
    recorder's tracks are exported under ``sim:<label>/<track>``.
    """
    # (prefixed_track, lane, phase, name, cat, trace, start_us, end_us,
    #  clock)
    items: List[tuple] = []

    for span in tel.wall_spans:
        items.append((WALL_PREFIX + span.track, span.kind, "X",
                      f"{span.kind}:{span.name}", span.kind, span.trace,
                      span.start * _WALL_SCALE, span.end * _WALL_SCALE,
                      "wall"))
    for label, recorder in sorted(tel.wall_recorders.items()):
        for (lane, phase, name, cat, trace,
             start, end, track) in _recorder_items(recorder):
            items.append((f"{WALL_PREFIX}{label}/{track}", lane, phase,
                          name, cat, trace, start * _WALL_SCALE,
                          end * _WALL_SCALE, "wall"))
    for label, recorder in sim_recorders:
        for (lane, phase, name, cat, trace,
             start, end, track) in _recorder_items(recorder):
            items.append((f"{SIM_PREFIX}{label}/{track}", lane, phase,
                          name, cat, trace, start, end, "sim"))

    tracks = sorted({item[0] for item in items})
    pid_of = {track: index + 1 for index, track in enumerate(tracks)}

    lanes: Dict[tuple, int] = {}
    lane_count: Dict[str, int] = {}

    def tid_of(track: str, lane: str) -> int:
        tid = lanes.get((track, lane))
        if tid is None:
            tid = lane_count.get(track, 0)
            lane_count[track] = tid + 1
            lanes[(track, lane)] = tid
        return tid

    events: List[Dict[str, Any]] = []
    for (track, lane, phase, name, cat, trace,
         start, end, clock) in items:
        event: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": phase, "ts": start,
            "pid": pid_of[track], "tid": tid_of(track, lane),
            "args": {"trace": trace, "clock": clock},
        }
        if phase == "X":
            event["dur"] = max(end - start, 0.0)
        else:
            event["s"] = "t"
        events.append(event)

    meta: List[Dict[str, Any]] = []
    for track in tracks:
        meta.append({"name": "process_name", "ph": "M",
                     "pid": pid_of[track], "tid": 0,
                     "args": {"name": track}})
    for (track, lane), tid in sorted(
            lanes.items(), key=lambda kv: (pid_of[kv[0][0]], kv[1])):
        meta.append({"name": "thread_name", "ph": "M",
                     "pid": pid_of[track], "tid": tid,
                     "args": {"name": lane}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms",
            "otherData": {"run": tel.run_id, "clockDomains":
                          ["wall", "sim"]}}


def write_unified_trace(tel: Telemetry, path: str,
                        sim_recorders: Iterable[
                            Tuple[str, FlightRecorder]] = (),
                        ) -> Dict[str, Any]:
    """Write the unified trace JSON to ``path``; returns the object."""
    trace = unified_trace(tel, sim_recorders)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return trace


def validate_unified_trace(trace: Dict[str, Any]) -> List[str]:
    """Schema-check a unified trace: the base trace-event checks plus
    the two-domain invariants (both clock domains present, every track
    namespaced, no pid shared between tracks).  Returns problems; an
    empty list means valid."""
    problems = validate_chrome_trace(trace)
    if problems:
        return problems
    events = trace["traceEvents"]
    track_of_pid: Dict[int, str] = {}
    for event in events:
        if event.get("ph") != "M" or event.get("name") != "process_name":
            continue
        pid = event["pid"]
        name = event["args"]["name"]
        if pid in track_of_pid and track_of_pid[pid] != name:
            problems.append(
                f"pid {pid} names two tracks: "
                f"{track_of_pid[pid]!r} and {name!r}")
        track_of_pid[pid] = name
    clocks = set()
    for event in events:
        if event.get("ph") == "M":
            continue
        clock = event.get("args", {}).get("clock")
        if clock not in ("wall", "sim"):
            problems.append(
                f"event {event.get('name')!r} lacks a clock domain")
            continue
        clocks.add(clock)
        track = track_of_pid.get(event["pid"])
        if track is None:
            problems.append(
                f"event {event.get('name')!r} on unnamed pid "
                f"{event['pid']}")
            continue
        expected = WALL_PREFIX if clock == "wall" else SIM_PREFIX
        if not track.startswith(expected):
            problems.append(
                f"{clock} event {event.get('name')!r} on track "
                f"{track!r} (expected prefix {expected!r})")
    for clock in ("wall", "sim"):
        if clock not in clocks:
            problems.append(f"no events in the {clock!r} clock domain")
    names = [track_of_pid[pid] for pid in track_of_pid]
    if len(names) != len(set(names)):
        problems.append("two pids share one track name")
    return problems


__all__ = [
    "SIM_PREFIX",
    "WALL_PREFIX",
    "unified_trace",
    "validate_unified_trace",
    "write_unified_trace",
]
