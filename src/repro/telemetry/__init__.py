"""Wall-clock telemetry plane.

``repro.obs`` (PR 5) answers "what happened in *simulated* time"; this
package answers "what is the *process* doing in wall-clock time" — the
operator's view of the router, the worker fleet, the PDES window loop
and the checkpoint store.

The plane is a process-global singleton gated exactly like the flight
recorder: ``telemetry.ACTIVE`` is ``None`` until :func:`enable` is
called, and every instrumentation site is::

    tel = telemetry.ACTIVE
    if tel is not None:
        tel.registry.counter("service_requests_total").inc()

so a disabled plane costs one module-attribute load per site and
records nothing.  Nothing in here ever touches simulation state:
telemetry rides out-of-band (worker registry snapshots travel in the
result ``meta`` dict next to ``LAST_RUN_META``, never inside cached
payloads or cache keys), which is what keeps every differential
harness bit-identical with telemetry on or off.

Pieces:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters /
  gauges / histograms, labeled, associatively mergeable across
  processes (:mod:`repro.telemetry.registry`).
* :class:`~repro.telemetry.events.EventLog` — bounded structured
  JSONL event buffer (:mod:`repro.telemetry.events`).
* Wall spans — reuses :class:`repro.obs.recorder.Span` with wall
  *seconds* for start/end; :mod:`repro.telemetry.export` merges them
  with sim-time FlightRecorder tracks into one Chrome/Perfetto file
  with two clock domains.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs.recorder import FlightRecorder, Span
from repro.telemetry.events import EventLog
from repro.telemetry.registry import (
    MetricsRegistry,
    merge_snapshots,
    top_counters,
)

#: Trace id used for wall spans that are not tied to a message trace.
WALL_TRACE = 0

#: Upper bound on retained wall spans (bounded post-mortem buffer,
#: like the event log).
WALL_SPAN_LIMIT = 32768


class Telemetry:
    """One process's telemetry state (registry + events + wall spans)."""

    def __init__(self, run_id: str = "") -> None:
        self.run_id = run_id
        self.t0 = time.monotonic()
        self.registry = MetricsRegistry()
        self.events = EventLog(t0=self.t0)
        #: Wall-clock spans; ``Span`` with start/end in *seconds since
        #: t0* (the exporter scales to microseconds).
        self.wall_spans: deque = deque(maxlen=WALL_SPAN_LIMIT)
        #: Wall-clock FlightRecorders registered by subsystems that
        #: already keep one (the router's "service" track).
        self.wall_recorders: Dict[str, FlightRecorder] = {}
        #: Latest cumulative registry snapshot per worker process,
        #: keyed by a stable worker key (fleet worker index).  Workers
        #: ship *cumulative* snapshots, so keeping only the newest per
        #: key never double-counts.
        self.worker_snapshots: Dict[str, Dict[str, dict]] = {}

    # -- clocks ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since the plane was enabled (monotonic)."""
        return time.monotonic() - self.t0

    # -- wall spans ------------------------------------------------------

    def wall_span(self, kind: str, name: str, track: str,
                  start: float, end: float) -> None:
        """Record one wall-clock span (start/end in seconds since t0)."""
        self.wall_spans.append(
            Span(WALL_TRACE, kind, name, track, start, end))

    def register_wall_recorder(self, name: str,
                               recorder: FlightRecorder) -> None:
        """Adopt a subsystem's wall-clock FlightRecorder for export."""
        self.wall_recorders[name] = recorder

    # -- cross-process merge ---------------------------------------------

    def absorb_worker(self, key: str,
                      snapshot: Dict[str, dict]) -> None:
        """Keep the newest cumulative snapshot from worker ``key``."""
        self.worker_snapshots[key] = snapshot

    def merged_snapshot(self) -> Dict[str, dict]:
        """This process's registry merged with all worker snapshots."""
        return merge_snapshots(
            [self.registry.snapshot(), *self.worker_snapshots.values()])


#: The process-global plane; ``None`` means telemetry is disabled and
#: every instrumentation site is a single attribute test.
ACTIVE: Optional[Telemetry] = None


def enable(run_id: str = "") -> Telemetry:
    """Turn the plane on (idempotent; returns the active plane)."""
    global ACTIVE
    if ACTIVE is None:
        ACTIVE = Telemetry(run_id=run_id)
    elif run_id and not ACTIVE.run_id:
        ACTIVE.run_id = run_id
    return ACTIVE


def disable() -> None:
    """Turn the plane off and drop all collected state."""
    global ACTIVE
    ACTIVE = None


def enabled() -> bool:
    return ACTIVE is not None


def hang_summary(top: int = 10, tail: int = 20) -> Optional[str]:
    """Telemetry section for hang reports: the ``top`` largest
    counters plus the last ``tail`` event-log records, or ``None``
    when the plane is disabled (hang reports then omit the section).
    """
    tel = ACTIVE
    if tel is None:
        return None
    lines: List[str] = ["telemetry:"]
    counters = top_counters(tel.merged_snapshot(), limit=top)
    if counters:
        lines.append(f"  top {len(counters)} counters:")
        for name, value in counters:
            lines.append(f"    {name} = {value}")
    else:
        lines.append("  no counters recorded")
    records = tel.events.tail(tail)
    if records:
        lines.append(f"  last {len(records)} events:")
        for record in records:
            lines.append("    " + json.dumps(record, sort_keys=True))
    else:
        lines.append("  no events recorded")
    return "\n".join(lines)


__all__ = [
    "ACTIVE",
    "Telemetry",
    "WALL_TRACE",
    "disable",
    "enable",
    "enabled",
    "hang_summary",
]
