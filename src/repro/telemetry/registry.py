"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the wall-clock sibling of the simulator's
:class:`~repro.obs.recorder.MetricsTimeline`: where the timeline
aggregates *simulated* quantities against simulated time, the registry
aggregates *operational* quantities (requests routed, windows run,
checkpoint bytes written) against wall time, across every process that
makes up a run.

Design constraints, in order:

* **Mergeable.**  A fleet worker keeps its own registry and ships
  snapshots to the supervisor over the existing duplex pipes; the
  supervisor merges them on read.  Every merge is associative and
  commutative — counters add, gauges take the max, histograms combine
  bucket counts plus Welford moments (Chan et al., the same formula as
  :meth:`repro.sim.monitor.SampleStats.merge`) — so it does not matter
  how many processes contributed or in what grouping the snapshots
  were folded.
* **Cheap.**  Instruments are plain attribute bumps; a snapshot is a
  walk over small dicts.  Nothing here ever touches simulation state,
  which is what keeps telemetry-on runs bit-identical to telemetry-off
  runs.
* **Snapshot = wire format.**  ``snapshot()`` returns plain JSON-able
  dicts; :func:`merge_snapshots` and :func:`to_prometheus` operate on
  snapshots, not live registries, so the same code path serves live
  introspection, cross-process merge, and the ``metrics`` service op.

Series are labeled: ``registry.counter("ckpt_bytes_total",
kind="window")`` names the ``kind="window"`` series of the
``ckpt_bytes_total`` family, rendered Prometheus-style as
``ckpt_bytes_total{kind="window"}``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: a latency ladder
#: from 0.1 ms to 2 minutes (an implicit +Inf bucket catches the rest).
DEFAULT_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def geometric_bounds(low: float, high: float,
                     per_decade: int = 3) -> Tuple[float, ...]:
    """A geometric bucket ladder from ``low`` to at least ``high``
    (``per_decade`` buckets per power of ten) — for series whose
    natural unit is not seconds (microseconds, frame counts, bytes)."""
    if low <= 0 or high <= low or per_decade < 1:
        raise ValueError("need 0 < low < high and per_decade >= 1")
    step = 10.0 ** (1.0 / per_decade)
    bounds: List[float] = []
    value = low
    while value < high * (1.0 + 1e-12):
        bounds.append(round(value, 12))
        value *= step
    return tuple(bounds)


def _label_key(labels: Dict[str, object]) -> str:
    """Canonical inner label string (``k="v"`` pairs, sorted)."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        value = str(labels[key]).replace("\\", r"\\").replace(
            '"', r"\"").replace("\n", r"\n")
        parts.append(f'{key}="{value}"')
    return ",".join(parts)


class Counter:
    """Monotonically increasing count (merge: sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-set instantaneous value (merge: max across processes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram plus streaming Welford moments.

    Percentiles come from the buckets (linear interpolation inside the
    containing bucket, clamped to the observed min/max), so accuracy is
    bounded by bucket resolution — the price of mergeability without
    keeping raw samples.
    """

    __slots__ = ("bounds", "buckets", "count", "mean", "m2",
                 "minimum", "maximum", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        #: One count per bound, plus the trailing +Inf bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def state(self) -> Dict[str, object]:
        return {
            "count": self.count, "mean": self.mean, "m2": self.m2,
            "min": self.minimum, "max": self.maximum, "sum": self.sum,
            "bounds": list(self.bounds), "buckets": list(self.buckets),
        }


def histogram_percentile(state: Dict[str, object], q: float) -> float:
    """The ``q``-th percentile of a histogram *state* dict.

    Interpolates linearly inside the bucket containing the target rank;
    the first bucket's lower edge is the observed minimum and the +Inf
    bucket is clamped to the observed maximum, so the estimate always
    lies within the sample range.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    count = int(state["count"])
    if count == 0:
        raise ValueError("no observations in histogram")
    bounds = list(state["bounds"])
    buckets = list(state["buckets"])
    target = q / 100.0 * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            cumulative += bucket_count
            continue
        if cumulative + bucket_count >= target:
            lower = (float(state["min"]) if index == 0
                     else bounds[index - 1])
            upper = (float(state["max"]) if index >= len(bounds)
                     else bounds[index])
            lower = max(lower, float(state["min"]))
            upper = min(upper, float(state["max"]))
            if upper < lower:
                upper = lower
            fraction = (target - cumulative) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += bucket_count
    return float(state["max"])


class MetricsRegistry:
    """Named, labeled instrument families for one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[str, Counter]] = {}
        self._gauges: Dict[str, Dict[str, Gauge]] = {}
        self._histograms: Dict[str, Dict[str, Histogram]] = {}

    @staticmethod
    def _series(table: dict, name: str, labels: dict, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = table.get(name)
        if family is None:
            family = table[name] = {}
        key = _label_key(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = factory()
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._series(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._series(self._gauges, name, labels, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS,
                  **labels) -> Histogram:
        return self._series(self._histograms, name, labels,
                            lambda: Histogram(bounds))

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """The registry as plain JSON-able dicts (the wire format)."""
        return {
            "counters": {
                name: {key: c.value for key, c in family.items()}
                for name, family in self._counters.items()
            },
            "gauges": {
                name: {key: g.value for key, g in family.items()}
                for name, family in self._gauges.items()
            },
            "histograms": {
                name: {key: h.state() for key, h in family.items()}
                for name, family in self._histograms.items()
            },
        }


def _merge_histogram_states(a: Dict[str, object],
                            b: Dict[str, object]) -> Dict[str, object]:
    if list(a["bounds"]) != list(b["bounds"]):
        raise ValueError("cannot merge histograms with different bounds")
    count_a, count_b = int(a["count"]), int(b["count"])
    if count_a == 0:
        return {k: (list(v) if isinstance(v, list) else v)
                for k, v in b.items()}
    if count_b == 0:
        return {k: (list(v) if isinstance(v, list) else v)
                for k, v in a.items()}
    total = count_a + count_b
    mean_a, mean_b = float(a["mean"]), float(b["mean"])
    delta = mean_b - mean_a
    return {
        "count": total,
        "mean": mean_a + delta * count_b / total,
        "m2": (float(a["m2"]) + float(b["m2"])
               + delta * delta * count_a * count_b / total),
        "min": min(float(a["min"]), float(b["min"])),
        "max": max(float(a["max"]), float(b["max"])),
        "sum": float(a["sum"]) + float(b["sum"]),
        "bounds": list(a["bounds"]),
        "buckets": [x + y for x, y in zip(a["buckets"], b["buckets"])],
    }


def merge_snapshots(snapshots: Iterable[Dict[str, dict]]) -> Dict[str, dict]:
    """Fold any number of registry snapshots into one.

    Associative and commutative by construction (counters sum, gauges
    take the max, histograms combine moments and bucket counts), so
    the fleet can merge per-worker snapshots in any grouping and get
    the same fleet-wide view.
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {},
                               "histograms": {}}
    for snapshot in snapshots:
        for name, family in snapshot.get("counters", {}).items():
            target = merged["counters"].setdefault(name, {})
            for key, value in family.items():
                target[key] = target.get(key, 0) + value
        for name, family in snapshot.get("gauges", {}).items():
            target = merged["gauges"].setdefault(name, {})
            for key, value in family.items():
                target[key] = (value if key not in target
                               else max(target[key], value))
        for name, family in snapshot.get("histograms", {}).items():
            target = merged["histograms"].setdefault(name, {})
            for key, state in family.items():
                if key in target:
                    target[key] = _merge_histogram_states(
                        target[key], state)
                else:
                    target[key] = {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in state.items()
                    }
    return merged


def snapshot_counter(snapshot: Dict[str, dict], name: str,
                     **labels) -> int:
    """One counter series' value from a snapshot (0 when absent)."""
    return snapshot.get("counters", {}).get(name, {}).get(
        _label_key(labels), 0)


def top_counters(snapshot: Dict[str, dict],
                 limit: int = 10) -> List[Tuple[str, int]]:
    """The ``limit`` largest counter series, ``(rendered_name, value)``
    pairs sorted by value descending then name (hang-report food)."""
    flat: List[Tuple[str, int]] = []
    for name, family in snapshot.get("counters", {}).items():
        for key, value in family.items():
            flat.append((f"{name}{{{key}}}" if key else name, value))
    flat.sort(key=lambda pair: (-pair[1], pair[0]))
    return flat[:limit]


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _series_name(name: str, key: str, extra: str = "") -> str:
    inner = ",".join(part for part in (key, extra) if part)
    return f"{name}{{{inner}}}" if inner else name


def to_prometheus(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        lines.append(f"# TYPE {name} counter")
        family = snapshot["counters"][name]
        for key in sorted(family):
            lines.append(
                f"{_series_name(name, key)} {_format_value(family[key])}")
    for name in sorted(snapshot.get("gauges", {})):
        lines.append(f"# TYPE {name} gauge")
        family = snapshot["gauges"][name]
        for key in sorted(family):
            lines.append(
                f"{_series_name(name, key)} {_format_value(family[key])}")
    for name in sorted(snapshot.get("histograms", {})):
        lines.append(f"# TYPE {name} histogram")
        family = snapshot["histograms"][name]
        for key in sorted(family):
            state = family[key]
            cumulative = 0
            for bound, bucket in zip(state["bounds"], state["buckets"]):
                cumulative += bucket
                le = 'le="%s"' % _format_value(float(bound))
                lines.append(
                    f"{_series_name(name + '_bucket', key, le)} "
                    f"{cumulative}")
            le_inf = 'le="+Inf"'
            lines.append(
                f"{_series_name(name + '_bucket', key, le_inf)} "
                f"{int(state['count'])}")
            lines.append(
                f"{_series_name(name + '_sum', key)} "
                f"{_format_value(float(state['sum']))}")
            lines.append(
                f"{_series_name(name + '_count', key)} "
                f"{int(state['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_bounds",
    "histogram_percentile",
    "merge_snapshots",
    "snapshot_counter",
    "to_prometheus",
    "top_counters",
]
