"""Utilization reporting for simulated clusters.

Turns the per-component statistics every model keeps (link frame/byte
counters, memory-bus transfer totals, CPU busy time, interrupt counts)
into a readable post-run report — the kind of visibility the paper's
authors needed when they diagnosed "difficulties of fully pipelining
the 6 GigE links in a single process".
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.builder import MeshCluster


@dataclass(frozen=True)
class LinkUtilization:
    """One link's traffic over an interval."""

    name: str
    bytes_forward: float
    bytes_reverse: float
    utilization_forward: float
    utilization_reverse: float


@dataclass(frozen=True)
class NodeUtilization:
    """One node's resource usage over an interval."""

    rank: int
    cpu_fraction: float
    copy_bytes: float
    dma_bytes: float
    interrupts: int
    irq_entries: int


def link_utilization(cluster: MeshCluster, elapsed_us: float,
                     payload_rate: float = 110.0,
                     ) -> List[LinkUtilization]:
    """Per-link payload utilization relative to the sustained rate."""
    out = []
    for link in cluster.links:
        fwd, rev = link.stats["bytes"]
        out.append(LinkUtilization(
            name=link.name,
            bytes_forward=fwd,
            bytes_reverse=rev,
            utilization_forward=fwd / (payload_rate * elapsed_us),
            utilization_reverse=rev / (payload_rate * elapsed_us),
        ))
    return out


def node_utilization(cluster: MeshCluster,
                     elapsed_us: float) -> List[NodeUtilization]:
    """Per-node CPU/memory/interrupt accounting."""
    out = []
    for node in cluster.nodes:
        host = node.host
        interrupts = sum(
            port.stats["interrupts"] for port in node.ports.values()
        )
        out.append(NodeUtilization(
            rank=node.rank,
            cpu_fraction=host.stats["cpu_us"] / elapsed_us,
            copy_bytes=host.stats["copy_bytes"],
            dma_bytes=host.stats["dma_bytes"],
            interrupts=interrupts,
            irq_entries=host.irq.stats["entries"],
        ))
    return out


def _bar(fraction: float, width: int = 30) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def utilization_report(cluster: MeshCluster, elapsed_us: float,
                       top: Optional[int] = 10) -> str:
    """Human-readable utilization summary (busiest items first)."""
    out = io.StringIO()
    out.write(f"utilization over {elapsed_us:.1f} us\n")
    out.write("\nlinks (payload fraction of ~110 MB/s per direction):\n")
    links = sorted(
        link_utilization(cluster, elapsed_us),
        key=lambda l: -(l.utilization_forward + l.utilization_reverse),
    )
    for link in links[:top]:
        out.write(
            f"  {link.name:26s} "
            f"fwd {_bar(link.utilization_forward)} "
            f"{100 * link.utilization_forward:5.1f}%  "
            f"rev {100 * link.utilization_reverse:5.1f}%\n"
        )
    out.write("\nnodes:\n")
    nodes = sorted(node_utilization(cluster, elapsed_us),
                   key=lambda n: -n.cpu_fraction)
    for node in nodes[:top]:
        out.write(
            f"  rank {node.rank:4d}  cpu {_bar(node.cpu_fraction)} "
            f"{100 * node.cpu_fraction:5.1f}%  "
            f"irqs {node.interrupts:6d} "
            f"(entries {node.irq_entries:6d})  "
            f"copies {node.copy_bytes / 1e6:8.2f} MB\n"
        )
    return out.getvalue()
