"""Analysis helpers: the cost model behind Table 1 and statistics."""

from repro.analysis.costmodel import ClusterCosts, dollars_per_mflops
from repro.analysis.logp import LogGPParams, measure_via_loggp
from repro.analysis.stats import geometric_mean, linear_fit, percentile
from repro.analysis.timeline import (
    link_utilization,
    node_utilization,
    utilization_report,
)

__all__ = [
    "ClusterCosts",
    "dollars_per_mflops",
    "LogGPParams",
    "measure_via_loggp",
    "geometric_mean",
    "linear_fit",
    "percentile",
    "link_utilization",
    "node_utilization",
    "utilization_report",
]
