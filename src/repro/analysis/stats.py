"""Small statistics helpers used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import BenchmarkError


def geometric_mean(values: Sequence[float]) -> float:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise BenchmarkError("geometric mean of no values")
    if np.any(arr <= 0):
        raise BenchmarkError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile(values: Sequence[float], q: float) -> float:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise BenchmarkError("percentile of no values")
    return float(np.percentile(arr, q))


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept (e.g. latency-vs-size fits)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size or xa.size < 2:
        raise BenchmarkError("linear fit needs >= 2 paired samples")
    slope, intercept = np.polyfit(xa, ya, 1)
    return float(slope), float(intercept)
