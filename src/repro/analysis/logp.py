"""LogP/LogGP characterization of the simulated interconnects.

The paper grounds its latency/bandwidth methodology in Culler et al.'s
LogP assessment of fast network interfaces (its reference [9]).  This
module extracts the LogGP parameters from the same micro-benchmarks the
figures use, so the simulated machine can be compared against
published LogP tables of the era:

* ``L`` — wire/NIC latency: one-way time minus both host overheads;
* ``o_s`` / ``o_r`` — send/receive host overheads (from the calibrated
  protocol parameters, cross-checked against an overhead-removal run);
* ``g`` — gap between small messages (inverse small-message rate);
* ``G`` — per-byte gap (inverse asymptotic bandwidth).

The fitted model then *predicts* point-to-point times, and
:func:`validate_model` reports prediction error against fresh
simulation measurements — a consistency check that the simulator's
behavior is as decomposable as the real hardware's was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import linear_fit
from repro.bench import microbench as mb
from repro.hw.params import ViaParams


@dataclass(frozen=True)
class LogGPParams:
    """Fitted LogGP parameters (microseconds / bytes)."""

    L: float          # latency
    o_send: float     # send overhead
    o_recv: float     # receive overhead
    g: float          # per-message gap
    G: float          # per-byte gap

    @property
    def o(self) -> float:
        return self.o_send + self.o_recv

    def one_way_time(self, nbytes: float) -> float:
        """Predicted one-way small/large message time."""
        return self.o_send + self.L + self.G * nbytes + self.o_recv

    def bandwidth(self, nbytes: float) -> float:
        """Predicted sustained bandwidth at ``nbytes`` messages."""
        return nbytes / max(self.g + self.G * nbytes, 1e-12)


def measure_via_loggp(small: int = 4,
                      large_sizes: Sequence[int] = (262144, 1048576),
                      ) -> LogGPParams:
    """Fit LogGP to the simulated M-VIA stack.

    Overheads come from the calibrated VIA parameters (the paper's
    ~6 us split); L is the small-message one-way time minus both
    overheads; G is fitted from large-message bandwidth; g from the
    streaming rate of back-to-back small messages.
    """
    params = ViaParams()
    o_send = params.send_overhead
    o_recv = params.recv_overhead
    one_way_small = mb.via_latency(small)
    L = one_way_small - o_send - o_recv
    # Per-byte gap from the large-message bandwidth asymptote.
    sizes: List[float] = []
    times: List[float] = []
    for nbytes in large_sizes:
        bandwidth = mb.via_simultaneous_bandwidth(nbytes)
        sizes.append(float(nbytes))
        times.append(nbytes / bandwidth)
    G, intercept = linear_fit(sizes, times)
    g = max(intercept, 0.0)
    return LogGPParams(L=L, o_send=o_send, o_recv=o_recv, g=g, G=G)


def validate_model(model: LogGPParams,
                   sizes: Sequence[int] = (4, 256, 1024, 4096),
                   ) -> Dict[int, Tuple[float, float]]:
    """Measured vs predicted one-way time per size.

    Returns {size: (measured, predicted)}.  Small/medium messages only
    — the linear LogGP form does not model the eager/rendezvous switch.
    """
    out: Dict[int, Tuple[float, float]] = {}
    for nbytes in sizes:
        measured = mb.via_latency(nbytes)
        predicted = model.one_way_time(nbytes)
        out[nbytes] = (measured, predicted)
    return out


def prediction_error(model: LogGPParams,
                     sizes: Sequence[int] = (4, 256, 1024, 4096),
                     ) -> float:
    """Worst relative prediction error over ``sizes``."""
    worst = 0.0
    for measured, predicted in validate_model(model, sizes).values():
        worst = max(worst, abs(measured - predicted) / measured)
    return worst
